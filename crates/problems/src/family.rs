//! First-class problem families: a static registry that owns, per
//! family, instance *generation* (penalty-sweep corpora at three tiers),
//! *featurization* (a fixed 24-wide recipe so one surrogate can serve a
//! mixed-family request stream) and a compact *instance encoding*
//! ([`InstanceData`]) that travels over the wire and into `.qross`
//! artifacts without dense matrices.
//!
//! Adding a family means implementing [`FamilyProblem`] for the
//! instance type, [`ProblemFamily`] for a unit struct, and appending
//! one line to [`FAMILIES`]. Every other layer — store, serving engine,
//! wire protocols, train/predict CLI — routes through [`lookup_family`]
//! and never pattern-matches on family names.

use serde::Serialize;

use mathkit::rng::derive_seed;
use mathkit::stats;
use mathkit::Matrix;

use crate::knapsack::KnapsackInstance;
use crate::maxcut::MaxCutInstance;
use crate::mvc::MvcInstance;
use crate::qap::QapInstance;
use crate::tsp::features::{statistical_features, STAT_DIM};
use crate::tsp::generator::{generate_instance, GeneratorConfig};
use crate::tsp::TspEncoding;
use crate::{ProblemError, RelaxableProblem, TspInstance};

/// Width of every family's feature vector.
///
/// Families with fewer natural statistics zero-pad to this width; the
/// uniform shape is what lets a single surrogate (and its scalers)
/// serve a mixed-family request stream.
pub const FAMILY_FEATURE_DIM: usize = STAT_DIM;

/// The penalty-sweep default domain for `A`, matching the pipeline's
/// `A_DOMAIN` (paper §4.2 sweeps this log-spaced).
pub const DEFAULT_PENALTY_DOMAIN: (f64, f64) = (0.02, 20.0);

/// Compact, family-agnostic instance payload.
///
/// The family name travels *next to* this struct (wire op field,
/// store section tag), never inside it. Each family documents its
/// mapping onto the four slots:
///
/// | family     | `dims`  | `scalars`    | `vecs`                      | `edges`              |
/// |------------|---------|--------------|-----------------------------|----------------------|
/// | `tsp`      | `[n]`   | —            | `[xs, ys]` (coords form)    | — (coords form)      |
/// | `tsp`      | `[n]`   | —            | —                           | upper-tri `(i,j,d)`  |
/// | `mvc`      | `[n]`   | —            | `[weights]`                 | `(u,v,1.0)`          |
/// | `qap`      | `[n]`   | —            | `[flow n², dist n²]` row-major | —                 |
/// | `maxcut`   | `[n]`   | —            | —                           | weighted `(u,v,w)`   |
/// | `knapsack` | `[n]`   | `[capacity]` | `[values, weights]`         | —                    |
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct InstanceData {
    /// instance identifier
    pub name: String,
    /// integer dimensions (vertex/city/item counts)
    pub dims: Vec<u64>,
    /// scalar parameters (e.g. knapsack capacity)
    pub scalars: Vec<f64>,
    /// dense float payloads (coordinates, weights, flattened matrices)
    pub vecs: Vec<Vec<f64>>,
    /// weighted edge list `(u, v, w)`
    pub edges: Vec<(u32, u32, f64)>,
}

// Hand-written (the vendored derive has no `#[serde(default)]`): each
// family uses only a subset of the slots, so wire payloads may omit the
// rest — a missing field deserialises to its empty default, exactly
// mirroring the `..InstanceData::default()` idiom `to_data` impls use.
impl serde::Deserialize for InstanceData {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        fn slot<T: serde::Deserialize + Default>(
            value: &serde::Value,
            name: &str,
        ) -> Result<T, serde::DeError> {
            match value.get(name) {
                Some(v) => T::from_value(v)
                    .map_err(|e| serde::DeError::new(format!("field `{name}`: {}", e.message))),
                None => Ok(T::default()),
            }
        }
        Ok(InstanceData {
            name: slot(value, "name")?,
            dims: slot(value, "dims")?,
            scalars: slot(value, "scalars")?,
            vecs: slot(value, "vecs")?,
            edges: slot(value, "edges")?,
        })
    }
}

/// A problem instance that knows which family it belongs to.
///
/// Extends [`RelaxableProblem`] with the three family-level hooks the
/// pipeline, store and serving engine need: the family name, the
/// fixed-width feature vector, and the compact wire/store encoding.
pub trait FamilyProblem: RelaxableProblem {
    /// Registered family name (`lookup_family(p.family())` resolves).
    fn family(&self) -> &'static str;

    /// Feature vector of width [`FAMILY_FEATURE_DIM`].
    fn features(&self) -> Vec<f64>;

    /// Compact encoding; `family().decode(&p.to_data())` rebuilds an
    /// equivalent instance (bit-identical QUBO/features for the
    /// canonical forms each family persists).
    fn to_data(&self) -> InstanceData;
}

/// Corpus size tier, mirroring the pipeline's micro/quick/paper scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusTier {
    /// smoke-test sizes (seconds)
    Micro,
    /// development sizes (tens of seconds)
    Quick,
    /// paper-scale sizes
    Paper,
}

/// A registered problem family: generation, featurization recipe and
/// instance codec in one object.
pub trait ProblemFamily: Send + Sync {
    /// Registry name (lowercase, stable — appears on wires and in
    /// artifacts).
    fn name(&self) -> &'static str;

    /// Feature width of [`FamilyProblem::features`] for this family.
    fn feature_dim(&self) -> usize {
        FAMILY_FEATURE_DIM
    }

    /// Inclusive domain the penalty parameter `A` is swept over.
    fn penalty_domain(&self) -> (f64, f64) {
        DEFAULT_PENALTY_DOMAIN
    }

    /// Deterministic penalty-sweep corpus at `tier`, derived from
    /// `seed`.
    fn corpus(&self, tier: CorpusTier, seed: u64) -> Vec<Box<dyn FamilyProblem>>;

    /// Decodes a compact instance payload.
    ///
    /// Total on hostile input: every structural defect returns
    /// [`ProblemError`], never a panic — this runs on uploaded bytes in
    /// a serving process.
    fn decode(&self, data: &InstanceData) -> Result<Box<dyn FamilyProblem>, ProblemError>;
}

impl std::fmt::Debug for dyn ProblemFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProblemFamily({})", self.name())
    }
}

/// The static registry — the one registration line per family.
static FAMILIES: [&dyn ProblemFamily; 5] = [
    &TspFamily,
    &MvcFamily,
    &QapFamily,
    &MaxCutFamily,
    &KnapsackFamily,
];

/// All registered families, in registration order.
pub fn registry() -> &'static [&'static dyn ProblemFamily] {
    &FAMILIES
}

/// ` | `-joined registered family names (error messages, usage text).
pub fn known_families() -> String {
    registry()
        .iter()
        .map(|f| f.name())
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Resolves a family by name, case-insensitively.
///
/// # Errors
///
/// Returns [`ProblemError::UnknownFamily`] naming the known families.
pub fn lookup_family(name: &str) -> Result<&'static dyn ProblemFamily, ProblemError> {
    let lowered = name.to_ascii_lowercase();
    registry()
        .iter()
        .copied()
        .find(|f| f.name() == lowered)
        .ok_or_else(|| ProblemError::UnknownFamily {
            name: name.to_string(),
            known: known_families(),
        })
}

// ---------------------------------------------------------------------------
// decode helpers (shared validation, always Err — never panic)
// ---------------------------------------------------------------------------

fn invalid(message: String) -> ProblemError {
    ProblemError::InvalidInstance { message }
}

/// The single entry of `dims`, as usize.
fn dim0(data: &InstanceData) -> Result<usize, ProblemError> {
    if data.dims.len() != 1 {
        return Err(invalid(format!(
            "expected dims = [n], got {} entries",
            data.dims.len()
        )));
    }
    usize::try_from(data.dims[0]).map_err(|_| invalid("dimension overflows usize".to_string()))
}

fn expect_vecs(data: &InstanceData, count: usize) -> Result<(), ProblemError> {
    if data.vecs.len() != count {
        return Err(invalid(format!(
            "expected {count} float vectors, got {}",
            data.vecs.len()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// per-family feature recipes (all FAMILY_FEATURE_DIM wide)
// ---------------------------------------------------------------------------

/// Zero-pads (or truncates) a feature list to [`FAMILY_FEATURE_DIM`].
fn pad_features(mut v: Vec<f64>) -> Vec<f64> {
    v.truncate(FAMILY_FEATURE_DIM);
    v.resize(FAMILY_FEATURE_DIM, 0.0);
    v
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo.is_finite() {
        (lo, hi)
    } else {
        (0.0, 0.0)
    }
}

/// MVC features: size, density, weight and degree statistics, greedy
/// cover summary.
pub fn mvc_features(g: &MvcInstance) -> Vec<f64> {
    let n = g.num_vertices();
    let m = g.edges().len();
    let possible = (n * n.saturating_sub(1) / 2).max(1) as f64;
    let mut deg = vec![0.0_f64; n];
    for &(u, v) in g.edges() {
        deg[u as usize] += 1.0;
        deg[v as usize] += 1.0;
    }
    let (w_min, w_max) = min_max(g.weights());
    let (d_min, d_max) = min_max(&deg);
    let cover = g.greedy_cover();
    let cover_size = cover.iter().filter(|&&b| b == 1).count();
    pad_features(vec![
        n as f64,
        (n.max(1) as f64).ln(),
        m as f64,
        m as f64 / possible,
        stats::mean(g.weights()),
        stats::std_population(g.weights()),
        w_min,
        w_max,
        stats::mean(&deg),
        stats::std_population(&deg),
        d_min,
        d_max,
        g.cover_weight(&cover),
        cover_size as f64,
        m as f64 / n.max(1) as f64,
    ])
}

/// QAP features: size plus off-diagonal flow/distance statistics.
pub fn qap_features(q: &QapInstance) -> Vec<f64> {
    let n = q.size();
    let mut flows = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    let mut dists = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            flows.push(q.flow()[(i, j)]);
            dists.push(q.dist()[(i, j)]);
        }
    }
    let (f_min, f_max) = min_max(&flows);
    let (d_min, d_max) = min_max(&dists);
    let nonzero_flow = flows.iter().filter(|&&f| f != 0.0).count();
    pad_features(vec![
        n as f64,
        (n.max(1) as f64).ln(),
        stats::mean(&flows),
        stats::std_population(&flows),
        f_min,
        f_max,
        stats::mean(&dists),
        stats::std_population(&dists),
        d_min,
        d_max,
        flows.iter().sum(),
        dists.iter().sum(),
        nonzero_flow as f64 / flows.len().max(1) as f64,
        stats::mean(&flows) * stats::mean(&dists),
    ])
}

/// Max-Cut features: size, density, weight and degree statistics, the
/// balance target.
pub fn maxcut_features(g: &MaxCutInstance) -> Vec<f64> {
    let n = g.num_vertices();
    let m = g.edges().len();
    let possible = (n * n.saturating_sub(1) / 2).max(1) as f64;
    let weights: Vec<f64> = g.edges().iter().map(|&(_, _, w)| w).collect();
    let mut deg = vec![0.0_f64; n];
    for &(u, v, _) in g.edges() {
        deg[u as usize] += 1.0;
        deg[v as usize] += 1.0;
    }
    let (w_min, w_max) = min_max(&weights);
    pad_features(vec![
        n as f64,
        (n.max(1) as f64).ln(),
        m as f64,
        m as f64 / possible,
        stats::mean(&weights),
        stats::std_population(&weights),
        w_min,
        w_max,
        weights.iter().sum(),
        stats::mean(&deg),
        stats::std_population(&deg),
        g.balance_target() as f64,
        g.balance_target() as f64 / n.max(1) as f64,
    ])
}

/// Knapsack features: value/weight statistics, capacity tightness,
/// slack-bit count, value-density statistics.
pub fn knapsack_features(k: &KnapsackInstance) -> Vec<f64> {
    let n = k.num_items();
    let (v_min, v_max) = min_max(k.values());
    let (w_min, w_max) = min_max(k.weights());
    let total_w: f64 = k.weights().iter().sum();
    let total_v: f64 = k.values().iter().sum();
    let ratios: Vec<f64> = k
        .values()
        .iter()
        .zip(k.weights())
        .map(|(&v, &w)| v / w)
        .collect();
    pad_features(vec![
        n as f64,
        (n.max(1) as f64).ln(),
        stats::mean(k.values()),
        stats::std_population(k.values()),
        v_min,
        v_max,
        stats::mean(k.weights()),
        stats::std_population(k.weights()),
        w_min,
        w_max,
        total_v,
        total_w,
        k.capacity(),
        k.capacity() / total_w.max(1.0),
        k.slack_bits() as f64,
        stats::mean(&ratios),
        stats::std_population(&ratios),
    ])
}

// ---------------------------------------------------------------------------
// FamilyProblem impls
// ---------------------------------------------------------------------------

/// Encodes a TSP instance compactly: its generating coordinates when it
/// has them (2n floats), the upper-triangle distances otherwise.
pub fn tsp_instance_data(inst: &TspInstance) -> InstanceData {
    let n = inst.num_cities();
    match inst.coords() {
        Some(coords) => InstanceData {
            name: inst.name().to_string(),
            dims: vec![n as u64],
            vecs: vec![
                coords.iter().map(|&(x, _)| x).collect(),
                coords.iter().map(|&(_, y)| y).collect(),
            ],
            ..InstanceData::default()
        },
        None => {
            let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
            for i in 0..n {
                for j in (i + 1)..n {
                    edges.push((i as u32, j as u32, inst.distance(i, j)));
                }
            }
            InstanceData {
                name: inst.name().to_string(),
                dims: vec![n as u64],
                edges,
                ..InstanceData::default()
            }
        }
    }
}

impl FamilyProblem for TspEncoding {
    fn family(&self) -> &'static str {
        "tsp"
    }

    fn features(&self) -> Vec<f64> {
        statistical_features(self.qubo_instance())
    }

    fn to_data(&self) -> InstanceData {
        tsp_instance_data(self.fitness_instance())
    }
}

impl FamilyProblem for MvcInstance {
    fn family(&self) -> &'static str {
        "mvc"
    }

    fn features(&self) -> Vec<f64> {
        mvc_features(self)
    }

    fn to_data(&self) -> InstanceData {
        InstanceData {
            name: RelaxableProblem::name(self).to_string(),
            dims: vec![self.num_vertices() as u64],
            vecs: vec![self.weights().to_vec()],
            edges: self.edges().iter().map(|&(u, v)| (u, v, 1.0)).collect(),
            ..InstanceData::default()
        }
    }
}

impl FamilyProblem for QapInstance {
    fn family(&self) -> &'static str {
        "qap"
    }

    fn features(&self) -> Vec<f64> {
        qap_features(self)
    }

    fn to_data(&self) -> InstanceData {
        InstanceData {
            name: RelaxableProblem::name(self).to_string(),
            dims: vec![self.size() as u64],
            vecs: vec![
                self.flow().as_slice().to_vec(),
                self.dist().as_slice().to_vec(),
            ],
            ..InstanceData::default()
        }
    }
}

impl FamilyProblem for MaxCutInstance {
    fn family(&self) -> &'static str {
        "maxcut"
    }

    fn features(&self) -> Vec<f64> {
        maxcut_features(self)
    }

    fn to_data(&self) -> InstanceData {
        InstanceData {
            name: RelaxableProblem::name(self).to_string(),
            dims: vec![self.num_vertices() as u64],
            edges: self.edges().to_vec(),
            ..InstanceData::default()
        }
    }
}

impl FamilyProblem for KnapsackInstance {
    fn family(&self) -> &'static str {
        "knapsack"
    }

    fn features(&self) -> Vec<f64> {
        knapsack_features(self)
    }

    fn to_data(&self) -> InstanceData {
        InstanceData {
            name: RelaxableProblem::name(self).to_string(),
            dims: vec![self.num_items() as u64],
            scalars: vec![self.capacity()],
            vecs: vec![self.values().to_vec(), self.weights().to_vec()],
            ..InstanceData::default()
        }
    }
}

// ---------------------------------------------------------------------------
// ProblemFamily impls
// ---------------------------------------------------------------------------

/// The TSP family (paper §4): synthetic uniform/exponential instances,
/// statistical features, coordinate or upper-triangle storage.
pub struct TspFamily;

/// Largest city count accepted from an explicit-matrix payload (the
/// decoder allocates the dense n×n matrix; coordinate payloads are O(n)
/// and get a larger cap).
const TSP_DENSE_MAX: usize = 2_048;
const TSP_COORDS_MAX: usize = 65_536;
/// Largest vertex/item count accepted from a sparse payload.
const SPARSE_VARS_MAX: usize = 1 << 20;

impl ProblemFamily for TspFamily {
    fn name(&self) -> &'static str {
        "tsp"
    }

    fn corpus(&self, tier: CorpusTier, seed: u64) -> Vec<Box<dyn FamilyProblem>> {
        // Sizes mirror PipelineConfig::{micro, quick, paper} so a
        // family-driven corpus matches the TSP pipeline's train set.
        let (config, count) = match tier {
            CorpusTier::Micro => (
                GeneratorConfig {
                    min_cities: 9,
                    max_cities: 10,
                    ..GeneratorConfig::default()
                },
                20,
            ),
            CorpusTier::Quick => (
                GeneratorConfig {
                    min_cities: 8,
                    max_cities: 12,
                    ..GeneratorConfig::default()
                },
                36,
            ),
            CorpusTier::Paper => (GeneratorConfig::default(), 270),
        };
        (0..count)
            .map(|i| {
                Box::new(TspEncoding::preprocessed(generate_instance(
                    &config, seed, i,
                ))) as Box<dyn FamilyProblem>
            })
            .collect()
    }

    fn decode(&self, data: &InstanceData) -> Result<Box<dyn FamilyProblem>, ProblemError> {
        let n = dim0(data)?;
        if !data.vecs.is_empty() {
            // Coordinate form: vecs = [xs, ys].
            if n > TSP_COORDS_MAX {
                return Err(invalid(format!("{n} cities exceeds the decode limit")));
            }
            expect_vecs(data, 2)?;
            if data.vecs[0].len() != n || data.vecs[1].len() != n {
                return Err(invalid(format!(
                    "coordinate vectors must each have {n} entries"
                )));
            }
            let coords: Vec<(f64, f64)> = data.vecs[0]
                .iter()
                .zip(&data.vecs[1])
                .map(|(&x, &y)| (x, y))
                .collect();
            for (i, &(x, y)) in coords.iter().enumerate() {
                if !x.is_finite() || !y.is_finite() {
                    return Err(invalid(format!("non-finite coordinate at city {i}")));
                }
            }
            Ok(Box::new(TspEncoding::preprocessed(
                TspInstance::from_coords(&data.name, &coords),
            )))
        } else {
            // Explicit form: upper-triangle distance entries.
            if n > TSP_DENSE_MAX {
                return Err(invalid(format!(
                    "{n} cities exceeds the explicit-matrix decode limit"
                )));
            }
            let mut dist = Matrix::zeros(n, n);
            for &(i, j, d) in &data.edges {
                let (i, j) = (i as usize, j as usize);
                if i >= j || j >= n {
                    return Err(invalid(format!(
                        "distance entry ({i},{j}) is not upper-triangle for {n} cities"
                    )));
                }
                dist[(i, j)] = d;
                dist[(j, i)] = d;
            }
            Ok(Box::new(TspEncoding::preprocessed(
                TspInstance::from_matrix(&data.name, dist)?,
            )))
        }
    }
}

/// The weighted Minimum Vertex Cover family (paper appendix B).
pub struct MvcFamily;

impl ProblemFamily for MvcFamily {
    fn name(&self) -> &'static str {
        "mvc"
    }

    fn corpus(&self, tier: CorpusTier, seed: u64) -> Vec<Box<dyn FamilyProblem>> {
        let (count, n, p) = match tier {
            CorpusTier::Micro => (10, 12, 0.4),
            CorpusTier::Quick => (20, 20, 0.4),
            CorpusTier::Paper => (60, 30, 0.5),
        };
        (0..count)
            .map(|i| {
                Box::new(MvcInstance::random_gnp(
                    &format!("mvc{n}_{i}"),
                    n,
                    p,
                    derive_seed(seed, 40_000 + i),
                )) as Box<dyn FamilyProblem>
            })
            .collect()
    }

    fn decode(&self, data: &InstanceData) -> Result<Box<dyn FamilyProblem>, ProblemError> {
        let n = dim0(data)?;
        if n > SPARSE_VARS_MAX {
            return Err(invalid(format!("{n} vertices exceeds the decode limit")));
        }
        expect_vecs(data, 1)?;
        if data.vecs[0].len() != n {
            return Err(invalid(format!("weight vector must have {n} entries")));
        }
        // Edge weights are carried as 1.0 by convention and ignored.
        let edges: Vec<(u32, u32)> = data.edges.iter().map(|&(u, v, _)| (u, v)).collect();
        Ok(Box::new(MvcInstance::new(
            &data.name,
            data.vecs[0].clone(),
            edges,
        )?))
    }
}

/// The Quadratic Assignment family (paper §3.1 fn. 2).
pub struct QapFamily;

impl ProblemFamily for QapFamily {
    fn name(&self) -> &'static str {
        "qap"
    }

    fn corpus(&self, tier: CorpusTier, seed: u64) -> Vec<Box<dyn FamilyProblem>> {
        let (count, n) = match tier {
            CorpusTier::Micro => (8, 5),
            CorpusTier::Quick => (14, 6),
            CorpusTier::Paper => (30, 8),
        };
        (0..count)
            .map(|i| {
                Box::new(QapInstance::random(
                    &format!("qap{n}_{i}"),
                    n,
                    derive_seed(seed, 50_000 + i),
                )) as Box<dyn FamilyProblem>
            })
            .collect()
    }

    fn decode(&self, data: &InstanceData) -> Result<Box<dyn FamilyProblem>, ProblemError> {
        let n = dim0(data)?;
        expect_vecs(data, 2)?;
        let cells = n
            .checked_mul(n)
            .ok_or_else(|| invalid("matrix size overflows".to_string()))?;
        if data.vecs[0].len() != cells || data.vecs[1].len() != cells {
            return Err(invalid(format!(
                "flow and distance vectors must each have {cells} entries"
            )));
        }
        let flow = Matrix::from_vec(n, n, data.vecs[0].clone());
        let dist = Matrix::from_vec(n, n, data.vecs[1].clone());
        Ok(Box::new(QapInstance::new(&data.name, flow, dist)?))
    }
}

/// The balanced Max-Cut family.
pub struct MaxCutFamily;

impl ProblemFamily for MaxCutFamily {
    fn name(&self) -> &'static str {
        "maxcut"
    }

    fn corpus(&self, tier: CorpusTier, seed: u64) -> Vec<Box<dyn FamilyProblem>> {
        let (count, n, p) = match tier {
            CorpusTier::Micro => (10, 12, 0.4),
            CorpusTier::Quick => (20, 20, 0.4),
            CorpusTier::Paper => (60, 30, 0.5),
        };
        (0..count)
            .map(|i| {
                Box::new(MaxCutInstance::random_gnp(
                    &format!("maxcut{n}_{i}"),
                    n,
                    p,
                    derive_seed(seed, 60_000 + i),
                )) as Box<dyn FamilyProblem>
            })
            .collect()
    }

    fn decode(&self, data: &InstanceData) -> Result<Box<dyn FamilyProblem>, ProblemError> {
        let n = dim0(data)?;
        if n > SPARSE_VARS_MAX {
            return Err(invalid(format!("{n} vertices exceeds the decode limit")));
        }
        Ok(Box::new(MaxCutInstance::new(
            &data.name,
            n,
            data.edges.clone(),
        )?))
    }
}

/// The 0/1 knapsack family.
pub struct KnapsackFamily;

impl ProblemFamily for KnapsackFamily {
    fn name(&self) -> &'static str {
        "knapsack"
    }

    fn corpus(&self, tier: CorpusTier, seed: u64) -> Vec<Box<dyn FamilyProblem>> {
        let (count, n) = match tier {
            CorpusTier::Micro => (10, 12),
            CorpusTier::Quick => (20, 18),
            CorpusTier::Paper => (60, 30),
        };
        (0..count)
            .map(|i| {
                Box::new(KnapsackInstance::random(
                    &format!("knap{n}_{i}"),
                    n,
                    derive_seed(seed, 70_000 + i),
                )) as Box<dyn FamilyProblem>
            })
            .collect()
    }

    fn decode(&self, data: &InstanceData) -> Result<Box<dyn FamilyProblem>, ProblemError> {
        let n = dim0(data)?;
        expect_vecs(data, 2)?;
        if data.vecs[0].len() != n || data.vecs[1].len() != n {
            return Err(invalid(format!(
                "value and weight vectors must each have {n} entries"
            )));
        }
        if data.scalars.len() != 1 {
            return Err(invalid("expected scalars = [capacity]".to_string()));
        }
        Ok(Box::new(KnapsackInstance::new(
            &data.name,
            data.vecs[0].clone(),
            data.vecs[1].clone(),
            data.scalars[0],
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert_eq!(lookup_family("tsp").unwrap().name(), "tsp");
        assert_eq!(lookup_family("MaxCut").unwrap().name(), "maxcut");
        assert_eq!(lookup_family("KNAPSACK").unwrap().name(), "knapsack");
        let err = lookup_family("tps").expect_err("typo must not resolve");
        let msg = err.to_string();
        assert!(msg.contains("unknown problem family `tps`"), "{msg}");
        for family in registry() {
            assert!(
                msg.contains(family.name()),
                "{msg} missing {}",
                family.name()
            );
        }
    }

    #[test]
    fn instance_data_json_defaults_missing_slots() {
        // Wire payloads name only the slots their family uses; the rest
        // deserialise to empty defaults.
        let data: InstanceData = serde_json::from_str(
            r#"{"name":"mc","dims":[4],"edges":[[0,1,1.0],[1,2,2.0],[2,3,1.5]]}"#,
        )
        .expect("partial payload must parse");
        assert_eq!(data.name, "mc");
        assert_eq!(data.dims, vec![4]);
        assert!(data.scalars.is_empty() && data.vecs.is_empty());
        assert_eq!(data.edges.len(), 3);
        let decoded = lookup_family("maxcut").unwrap().decode(&data);
        assert!(decoded.is_ok(), "{:?}", decoded.err());

        // A present-but-wrong slot still errors with the field name.
        let err = serde_json::from_str::<InstanceData>(r#"{"dims":"four"}"#)
            .expect_err("bad dims must not parse");
        assert!(err.to_string().contains("dims"), "{err}");
    }

    #[test]
    fn every_family_round_trips_its_corpus() {
        for family in registry() {
            let corpus = family.corpus(CorpusTier::Micro, 11);
            assert!(!corpus.is_empty(), "{}: empty corpus", family.name());
            for problem in &corpus {
                assert_eq!(problem.family(), family.name());
                let features = problem.features();
                assert_eq!(features.len(), family.feature_dim(), "{}", family.name());
                assert!(
                    features.iter().all(|f| f.is_finite()),
                    "{}: non-finite feature",
                    family.name()
                );
                let decoded = family
                    .decode(&problem.to_data())
                    .unwrap_or_else(|e| panic!("{}: decode failed: {e}", family.name()));
                assert_eq!(
                    RelaxableProblem::name(&decoded),
                    RelaxableProblem::name(problem),
                    "{}",
                    family.name()
                );
                assert_eq!(decoded.num_vars(), problem.num_vars(), "{}", family.name());
                // Features and the QUBO at a probe penalty must be
                // bit-identical: the compact encoding loses nothing the
                // surrogate or solver sees.
                assert_eq!(decoded.features(), features, "{}", family.name());
                let a = 1.37;
                let q1 = problem.to_qubo(a);
                let q2 = decoded.to_qubo(a);
                let x = vec![1u8, 0]
                    .into_iter()
                    .cycle()
                    .take(problem.num_vars())
                    .collect::<Vec<_>>();
                assert_eq!(
                    q1.energy(&x).to_bits(),
                    q2.energy(&x).to_bits(),
                    "{}",
                    family.name()
                );
            }
        }
    }

    #[test]
    fn corpora_are_seed_deterministic() {
        for family in registry() {
            let a = family.corpus(CorpusTier::Micro, 5);
            let b = family.corpus(CorpusTier::Micro, 5);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_data(), y.to_data(), "{}", family.name());
            }
        }
    }

    #[test]
    fn tsp_decode_accepts_both_forms() {
        let family = lookup_family("tsp").unwrap();
        // Coordinate form.
        let inst = TspInstance::from_coords("c", &[(0.0, 0.0), (3.0, 4.0), (1.0, 1.0)]);
        let decoded = family.decode(&tsp_instance_data(&inst)).unwrap();
        assert_eq!(decoded.num_vars(), 9);
        // Explicit form (coords dropped by scaling).
        let explicit = inst.scaled(2.0);
        assert!(explicit.coords().is_none());
        let data = tsp_instance_data(&explicit);
        assert!(data.vecs.is_empty() && !data.edges.is_empty());
        let decoded = family.decode(&data).unwrap();
        assert_eq!(decoded.num_vars(), 9);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let tsp = lookup_family("tsp").unwrap();
        // NaN coordinate.
        let bad = InstanceData {
            name: "nan".to_string(),
            dims: vec![2],
            vecs: vec![vec![0.0, f64::NAN], vec![0.0, 1.0]],
            ..InstanceData::default()
        };
        assert!(tsp.decode(&bad).is_err());
        // Lower-triangle distance entry.
        let bad = InstanceData {
            name: "lower".to_string(),
            dims: vec![3],
            edges: vec![(1, 0, 2.0)],
            ..InstanceData::default()
        };
        assert!(tsp.decode(&bad).is_err());
        // Mismatched knapsack vectors.
        let knap = lookup_family("knapsack").unwrap();
        let bad = InstanceData {
            name: "short".to_string(),
            dims: vec![3],
            scalars: vec![4.0],
            vecs: vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0]],
            ..InstanceData::default()
        };
        assert!(knap.decode(&bad).is_err());
        // MVC edge out of range.
        let mvc = lookup_family("mvc").unwrap();
        let bad = InstanceData {
            name: "range".to_string(),
            dims: vec![2],
            vecs: vec![vec![1.0, 1.0]],
            edges: vec![(0, 5, 1.0)],
            ..InstanceData::default()
        };
        assert!(mvc.decode(&bad).is_err());
    }

    #[test]
    fn tsp_coords_decode_is_bit_identical() {
        // Re-deriving distances from persisted coordinates must match
        // the original matrix bit for bit.
        let inst = TspInstance::from_coords(
            "bits",
            &[(0.13, 7.7), (2.25, -1.5), (9.0, 3.125), (4.5, 4.5)],
        );
        let family = lookup_family("tsp").unwrap();
        let decoded = family.decode(&tsp_instance_data(&inst)).unwrap();
        let original = TspEncoding::preprocessed(inst.clone());
        assert_eq!(
            decoded.features(),
            FamilyProblem::features(&original),
            "features diverged"
        );
    }
}
