//! Prices the observability layer against its budget: marginal
//! per-request instrumentation (span mint, decode/encode stopwatches,
//! six histogram records, trace-log offer, counter bump, plus the
//! worker's per-*batch* stopwatches amortized over the serving
//! regime's micro-batch width) must cost **≤ 3% of the p50 serve
//! round-trip** — the regression budget ARTIFACTS.md documents.
//! The setup measures both sides and asserts the ratio before any
//! Criterion timing runs, so an instrumentation regression fails the
//! bench smoke step (`cargo bench -p bench --benches -- --test`)
//! instead of silently taxing every request.
//!
//! The Criterion groups exist to be *diffed across builds*: run once
//! normally and once with `--features obs-off` — `serve_roundtrip`
//! prices the whole stack's instrumentation (decode/queue/batch/
//! forward/cache/encode stopwatches included), `obs_primitives` prices
//! each primitive in isolation (compiled to no-ops under `obs-off`).

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use neural::network::MlpBuilder;
use qross::dataset::Scalers;
use qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross::surrogate::{Surrogate, SurrogateState};

/// The documented budget: instrumentation may cost at most this
/// fraction of the p50 engine round-trip.
const P50_BUDGET: f64 = 0.03;

/// Paper-architecture surrogate (24 features + ln A, 64-wide heads),
/// seed-built — the round-trip denominator is real inference work.
fn sample_surrogate() -> Surrogate {
    let feat_dim = 24;
    let zscore = |m: f64, s: f64| mathkit::stats::ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(feat_dim + 1)
            .dense(64)
            .relu()
            .dense(64)
            .relu()
            .dense(1)
            .sigmoid()
            .build(7)
            .to_state(),
        e_net: MlpBuilder::new(feat_dim + 1)
            .dense(64)
            .relu()
            .dense(64)
            .relu()
            .dense(2)
            .build(8)
            .to_state(),
        scalers: Scalers {
            features: (0..feat_dim).map(|c| zscore(c as f64 * 0.1, 1.5)).collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(10.0, 4.0),
            e_std: zscore(1.0, 0.3),
        },
    };
    Surrogate::from_state(state).expect("consistent state")
}

fn sample_query() -> (Vec<f64>, f64) {
    let features: Vec<f64> = (0..24).map(|c| (c * 17 % 97) as f64 / 97.0 - 0.5).collect();
    (features, 0.85)
}

/// The same query as an NDJSON request line — the denominator round
/// trip goes through the full protocol path (parse → engine → render),
/// because that is the request the instrumentation taxes.
fn sample_line() -> String {
    let (features, a) = sample_query();
    let features: Vec<String> = features.iter().map(|f| format!("{f:.6}")).collect();
    format!(
        "{{\"id\": 1, \"op\": \"predict\", \"features\": [{}], \"a\": {a}}}",
        features.join(", ")
    )
}

/// One full request round trip: decode the line, run it through the
/// engine, serialize the response. Returns the response length so the
/// optimizer can't elide the work.
fn roundtrip(engine: &ServeEngine, line: &str) -> usize {
    let staged = bench::protocol::stage(engine, line).expect("request line stages");
    bench::protocol::render(staged)
        .expect("response renders")
        .len()
}

/// Median of a timed closure over `n` iterations, in nanoseconds.
fn median_ns(n: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[n / 2]
}

/// The micro-batch width the budget is priced at: concurrent serving is
/// the system's operating regime (the whole point of the micro-batcher),
/// and the worker's batch-stage stopwatches (assembly lap, forward,
/// cache) are read once per *batch*, so their clock reads amortize
/// across this many requests.
const BATCH_AMORTIZATION: usize = 16;

/// One request's worth of instrumentation, as the serve path actually
/// performs it per request: mint a span, stopwatch the decode and
/// encode boundaries (2 clock reads each — the queue/latency stages
/// reuse the pre-existing `submitted` timestamp, costing only records),
/// feed every stage histogram, offer the span to the trace log, bump a
/// counter. Under `obs-off` this whole body folds to (almost) nothing.
fn instrument_request(
    hists: &[Arc<obs::Histogram>],
    trace: &obs::TraceLog,
    requests: &obs::Counter,
) {
    let mut span = obs::Span::begin();
    let sw = obs::Stopwatch::start();
    span.record(obs::Stage::Decode, sw.elapsed_ns());
    let sw = obs::Stopwatch::start();
    span.record(obs::Stage::Encode, sw.elapsed_ns());
    span.record(obs::Stage::Queue, 1);
    span.record(obs::Stage::Batch, 1);
    span.record(obs::Stage::Forward, 1);
    span.record(obs::Stage::Cache, 1);
    for (stage, hist) in obs::Stage::ALL.into_iter().zip(hists) {
        hist.record(span.stage_ns(stage));
    }
    trace.observe(&span, "bench", "tenant");
    requests.inc();
}

/// One batch's worth of instrumentation: the worker's assembly lap plus
/// the forward and cache stopwatches — five clock reads shared by every
/// request in the batch.
fn instrument_batch() -> u64 {
    let mut assembly = obs::Stopwatch::start();
    let assembly_ns = assembly.lap();
    let fwd = obs::Stopwatch::start();
    let forward_ns = fwd.elapsed_ns();
    let cache = obs::Stopwatch::start();
    let cache_ns = cache.elapsed_ns();
    assembly_ns + forward_ns + cache_ns
}

fn bench_obs_overhead(c: &mut Criterion) {
    let engine = ServeEngine::new(
        ServeModel::Surrogate(Arc::new(sample_surrogate())),
        ServeConfig {
            workers: 1,
            cache_capacity: 0, // measure compute, not cache hits
            ..Default::default()
        },
    );
    let line = sample_line();

    let registry = obs::Registry::new();
    let hists: Vec<Arc<obs::Histogram>> =
        ["decode", "queue", "batch", "forward", "cache", "encode"]
            .iter()
            .map(|s| {
                registry.histogram(
                    obs::labeled("bench_stage_ns", "stage", s),
                    "per-stage latency (bench copy)",
                )
            })
            .collect();
    let trace = obs::TraceLog::new(64);
    let requests = registry.counter("bench_requests_total", "requests (bench copy)");

    // Budget gate: marginal per-request instrumentation vs p50
    // round-trip, asserted before any timing runs. The numerator is the
    // per-request work plus the per-batch work amortized over the
    // serving regime's micro-batch width. Warm both paths first.
    for _ in 0..64 {
        black_box(roundtrip(&engine, &line));
        instrument_request(&hists, &trace, &requests);
        black_box(instrument_batch());
    }
    let p50_roundtrip = median_ns(301, || {
        black_box(roundtrip(&engine, &line));
    });
    // Batch the numerator: one instrumentation pass is near the clock's
    // resolution, so time 64 per sample and divide.
    let per_request = median_ns(301, || {
        for _ in 0..64 {
            instrument_request(&hists, &trace, &requests);
        }
    }) / 64;
    let per_batch = median_ns(301, || {
        for _ in 0..64 {
            black_box(instrument_batch());
        }
    }) / 64;
    let p50_instrument = per_request + per_batch / BATCH_AMORTIZATION as u64;
    let ratio = p50_instrument as f64 / p50_roundtrip as f64;
    eprintln!(
        "obs_overhead budget: {p50_instrument} ns instrumentation \
         ({per_request} ns/request + {per_batch} ns/batch ÷ {BATCH_AMORTIZATION}) \
         vs {p50_roundtrip} ns p50 round-trip — ratio {ratio:.4}"
    );
    assert!(
        ratio <= P50_BUDGET,
        "per-request instrumentation ({p50_instrument} ns) exceeds {:.0}% of the \
         p50 serve round-trip ({p50_roundtrip} ns): ratio {ratio:.4}",
        P50_BUDGET * 100.0,
    );

    // Diff this group across obs-on / obs-off builds: the delta is the
    // whole stack's instrumentation cost in situ.
    let mut group = c.benchmark_group("obs_overhead");
    group.bench_function("serve_roundtrip", |b| {
        b.iter(|| black_box(roundtrip(&engine, &line)))
    });
    group.bench_function("per_request_instrumentation", |b| {
        b.iter(|| instrument_request(&hists, &trace, &requests))
    });
    group.bench_function("per_batch_instrumentation", |b| {
        b.iter(|| black_box(instrument_batch()))
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2654435761);
            hists[0].record(black_box(v));
        })
    });
    group.bench_function("counter_inc", |b| b.iter(|| requests.inc()));
    group.bench_function("prom_render", |b| {
        b.iter(|| obs::prom::render(&[&registry]).len())
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
