//! Micro-benchmarks of the solver substrates: one solver call on a small
//! TSP QUBO for each backend, plus the incremental-evaluation primitive.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bench::experiments::micro_encoding;
use problems::RelaxableProblem;
use qubo::LocalFieldState;
use solvers::da::{DaConfig, DigitalAnnealer};
use solvers::qbsolv::{Qbsolv, QbsolvConfig};
use solvers::sa::{SaConfig, SimulatedAnnealer};
use solvers::tabu::{TabuConfig, TabuSearch};
use solvers::Solver;

fn bench_solvers(c: &mut Criterion) {
    let encoding = micro_encoding(8, 42);
    let qubo = encoding.to_qubo(2.0);
    let mut group = c.benchmark_group("solver_call_64vars_batch8");

    let sa = SimulatedAnnealer::new(SaConfig {
        sweeps: 64,
        ..Default::default()
    });
    group.bench_function("sa", |b| b.iter(|| sa.sample(&qubo, 8, 1)));

    let da = DigitalAnnealer::new(DaConfig {
        steps: 500,
        ..Default::default()
    });
    group.bench_function("da", |b| b.iter(|| da.sample(&qubo, 8, 1)));

    let tabu = TabuSearch::new(TabuConfig {
        max_iters: 200,
        stall_limit: 60,
        tenure: None,
    });
    group.bench_function("tabu", |b| b.iter(|| tabu.sample(&qubo, 8, 1)));

    let qbsolv = Qbsolv::new(QbsolvConfig {
        subproblem_size: 24,
        max_passes: 4,
        ..Default::default()
    });
    group.bench_function("qbsolv", |b| b.iter(|| qbsolv.sample(&qubo, 8, 1)));
    group.finish();
}

fn bench_local_fields(c: &mut Criterion) {
    let encoding = micro_encoding(10, 7);
    let qubo = encoding.to_qubo(2.0);
    let n = qubo.num_vars();
    c.bench_function("local_field_flip_100vars", |b| {
        b.iter_batched(
            || LocalFieldState::new(&qubo, vec![0; n]),
            |mut state| {
                for i in 0..n {
                    state.flip(i % n);
                }
                state.energy()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_solvers, bench_local_fields
}
criterion_main!(benches);
