//! # bench — the experiment harness regenerating every table and figure
//!
//! One binary per paper artefact (see DESIGN.md §4 for the index):
//!
//! | binary   | paper artefact | content |
//! |----------|----------------|---------|
//! | `fig1`   | Fig. 1         | Pf and min-energy vs `A` for DA and SA |
//! | `fig3`   | Fig. 3         | gap vs trials, 4 methods, synthetic test set |
//! | `fig4`   | Fig. 4         | gap vs trials, 4 methods, out-of-distribution set |
//! | `fig5`   | Fig. 5         | cross-solver ablation (train DA, test Qbsolv) |
//! | `fig6`   | Fig. 6         | MVC penalty sweep, analog-noise QA-sim vs SA |
//! | `table1` | Table 1        | gap at trials #3/#20, 2 solvers × 2 datasets × 4 methods |
//!
//! Every experiment binary accepts `--scale micro|quick|paper` (default
//! `quick`) and `--seed N`, prints a text rendition of the artefact
//! through [`run_experiment`], and writes JSON to `results/` via the
//! artifact store's JSON writer.
//!
//! Two further binaries exercise the **train-once / serve-many** split
//! end to end (see `ARTIFACTS.md`):
//!
//! | binary          | content |
//! |-----------------|---------|
//! | `qross-train`   | collect + train on a generated corpus of any registered problem family, write a `.qross` model and a predictions manifest |
//! | `qross-predict` | reload the model in a fresh process, recompute the manifest for a byte-exact diff |
//! | `qross-serve`   | load a model once, serve NDJSON prediction/upload requests over stdio or TCP ([`protocol`]) |

pub mod experiments;
pub mod net;
pub mod protocol;
pub mod serve;

use experiments::ComparisonResult;
use serde::Serialize;

/// Experiment scale: `quick` preserves the paper's qualitative shape at
/// laptop cost; `paper` uses the publication settings; `micro` is the
/// CI/test scale (seconds end to end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// seconds-scale configuration used by tests and CI smoke steps
    Micro,
    /// minutes-scale reproduction (default)
    Quick,
    /// the paper's full settings
    Paper,
}

impl Scale {
    /// Parses `micro` / `quick` / `paper` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "micro" => Some(Scale::Micro),
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// experiment scale
    pub scale: Scale,
    /// root seed
    pub seed: u64,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Quick,
            seed: 2021,
        }
    }
}

impl Cli {
    /// Parses `--scale` and `--seed` from `std::env::args`, exiting with a
    /// usage message on malformed input.
    pub fn from_args() -> Cli {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    let v = args.get(i).map(String::as_str).unwrap_or("");
                    match Scale::parse(v) {
                        Some(s) => cli.scale = s,
                        None => usage_exit(&format!("bad --scale value `{v}`")),
                    }
                }
                "--seed" => {
                    i += 1;
                    let v = args.get(i).map(String::as_str).unwrap_or("");
                    match v.parse::<u64>() {
                        Ok(s) => cli.seed = s,
                        Err(_) => usage_exit(&format!("bad --seed value `{v}`")),
                    }
                }
                "--help" | "-h" => usage_exit(""),
                other => usage_exit(&format!("unknown argument `{other}`")),
            }
            i += 1;
        }
        cli
    }
}

fn usage_exit(message: &str) -> ! {
    serve::usage_exit(
        "<experiment> [--scale micro|quick|paper] [--seed N]",
        message,
    )
}

/// The shared experiment-runner skeleton every figure binary follows:
/// parse the common CLI, compute the result, render it as text, persist
/// it as JSON under `results/` through the artifact store's JSON writer,
/// and report the path written.
///
/// `compute` is fallible: a pipeline error (e.g. surrogate training
/// diverged) exits with a message instead of aborting through a panic.
/// Exits with a non-zero status when the result cannot be computed or
/// written.
pub fn run_experiment<T: Serialize>(
    name: &str,
    compute: impl FnOnce(Scale, u64) -> Result<T, qross::QrossError>,
    render: impl FnOnce(&T),
) {
    let cli = Cli::from_args();
    let result = match compute(cli.scale, cli.seed) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {name} failed: {e}");
            std::process::exit(1);
        }
    };
    render(&result);
    match write_json(name, &result) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: failed to write results: {e}");
            std::process::exit(1);
        }
    }
}

/// Writes a JSON artefact under `results/` through the artifact store's
/// JSON writer, creating the directory on demand. Returns the path
/// written.
///
/// # Errors
///
/// Propagates [`qross_store::StoreError`] for filesystem or
/// serialisation failures.
pub fn write_json<T: Serialize>(
    name: &str,
    value: &T,
) -> Result<std::path::PathBuf, qross_store::StoreError> {
    let path = std::path::Path::new("results").join(format!("{name}.json"));
    qross_store::json::write_json_file(&path, value)?;
    Ok(path)
}

/// Renders a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Renders the shared Fig. 3/4 text artefact: the per-trial gap table for
/// every method plus best/worst extremes at trials #1, #3 and #20.
pub fn render_comparison(result: &ComparisonResult) {
    let widths = [6, 18, 18, 18, 18];
    let header: Vec<String> = std::iter::once("trial".to_string())
        .chain(result.curves.iter().map(|c| c.method.clone()))
        .collect();
    println!("{}", row(&header, &widths));
    // Curves can legitimately differ in length (an all-empty strategy run
    // aggregates to an *empty* curve), so index defensively.
    let trials = result
        .curves
        .iter()
        .map(|c| c.mean.len())
        .max()
        .unwrap_or(0);
    for t in 0..trials {
        let cells: Vec<String> = std::iter::once(format!("{}", t + 1))
            .chain(
                result
                    .curves
                    .iter()
                    .map(|c| match (c.mean.get(t), c.ci95.get(t)) {
                        (Some(m), Some(h)) => format!("{m:.4} ±{h:.4}"),
                        _ => "—".to_string(),
                    }),
            )
            .collect();
        println!("{}", row(&cells, &widths));
    }
    for trial in [1, 3, 20] {
        let mut at: Vec<(String, f64)> = result
            .curves
            .iter()
            .map(|c| (c.method.clone(), c.gap_at_trial(trial)))
            .collect();
        at.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let (Some(best), Some(worst)) = (at.first(), at.last()) else {
            continue;
        };
        println!(
            "trial #{trial}: best = {} ({:.4}); worst = {} ({:.4})",
            best.0, best.1, worst.0, worst.1
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("Micro"), Some(Scale::Micro));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn row_renders_fixed_width() {
        let r = row(&["a".to_string(), "bb".to_string()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
