//! Dual-protocol serving contract: the committed serve-smoke request
//! mix, replayed over QBIN and over NDJSON against identically
//! configured engines, must decode to **f64-bit-identical** responses —
//! across worker counts (4 vs 1) and with the prediction cache on and
//! off. Also exercises both protocols side by side on one event-loop
//! TCP port (the sniffing contract) and QBIN's hostile-input behavior
//! through the full blocking driver.

use std::io::{Cursor, Read, Write};
use std::net::Shutdown;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bench::net::{serve_event_loop, EventLoopConfig};
use bench::protocol::{bin, serve_connection, Request, Response};
use qross_repro::mathkit::stats::ZScore;
use qross_repro::neural::network::MlpBuilder;
use qross_repro::qross::dataset::Scalers;
use qross_repro::qross::pipeline::{PipelineConfig, TrainedQross};
use qross_repro::qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross_repro::qross::surrogate::{Surrogate, SurrogateState, TrainReport};
use qross_repro::qross::StatisticalFeaturizer;

/// Feature width of [`StatisticalFeaturizer`].
const FEAT_DIM: usize = 24;

/// Seed-derived serve-ready bundle (same shape as the serving
/// integration suite: real code paths, no training time).
fn test_model() -> ServeModel {
    let zscore = |m: f64, s: f64| ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(1)
            .sigmoid()
            .build(41)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(2)
            .build(42)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM)
                .map(|c| zscore(0.2 * c as f64, 1.0 + 0.05 * c as f64))
                .collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(8.0, 3.0),
            e_std: zscore(1.0, 0.4),
        },
    };
    let surrogate = Surrogate::from_state(state).expect("consistent state");
    ServeModel::Bundle(Arc::new(TrainedQross {
        surrogate,
        featurizer: Box::new(StatisticalFeaturizer::new()),
        train_encodings: Vec::new(),
        test_encodings: Vec::new(),
        dataset_len: 0,
        report: TrainReport::default(),
        config: PipelineConfig::micro(),
    }))
}

/// The engine configurations the CI smoke step contrasts: batched and
/// cached vs fully sequential with the cache off.
fn contrast_configs() -> [ServeConfig; 2] {
    [
        ServeConfig {
            workers: 4,
            max_batch_rows: 32,
            ..Default::default()
        },
        ServeConfig {
            workers: 1,
            max_batch_rows: 1,
            cache_capacity: 0,
            ..Default::default()
        },
    ]
}

/// The QBIN-expressible slice of the committed serve-smoke mix: every
/// `predict` (including the width/finiteness rejects), plus `info`,
/// kept in fixture order. `tsp` uploads are NDJSON-only by design.
fn expressible_requests() -> Vec<Request> {
    let fixture = std::fs::read_to_string("tests/fixtures/serve_smoke_requests.ndjson")
        .expect("committed fixture");
    // Non-finite values (the fixture's `1e999` hostile predict) are
    // excluded: they are not round-trippable through JSON
    // re-serialization, so the two renditions would no longer encode
    // the same request.
    let finite = |xs: &Option<Vec<f64>>| xs.iter().flatten().all(|x| x.is_finite());
    let mut requests: Vec<Request> = fixture
        .lines()
        .filter_map(|line| serde_json::from_str::<Request>(line).ok())
        .filter(|r| {
            (matches!(r.op.as_deref(), Some("predict"))
                && r.features.is_some()
                && finite(&r.features)
                && finite(&r.a_values)
                && r.a.is_none_or(f64::is_finite))
                || matches!(r.op.as_deref(), Some("info") | Some("model-info"))
        })
        .collect();
    assert!(
        requests.iter().filter(|r| r.features.is_some()).count() >= 8,
        "the fixture lost its predict mix"
    );
    requests.push(Request {
        id: Some(90),
        op: Some("info".to_string()),
        ..Default::default()
    });
    requests
}

/// Renders the mix as NDJSON request bytes.
fn ndjson_stream(requests: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    for request in requests {
        let line = serde_json::to_string(request).expect("serializable request");
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Renders the same mix as QBIN frames.
fn qbin_stream(requests: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    for request in requests {
        match request.op.as_deref() {
            Some("predict") => {
                let a_values = match (&request.a_values, request.a) {
                    (Some(grid), _) => grid.clone(),
                    (None, Some(a)) => vec![a],
                    (None, None) => Vec::new(),
                };
                bin::encode_predict(
                    &mut out,
                    request.id,
                    request.tenant.as_deref().unwrap_or(""),
                    &a_values,
                    request.features.as_deref().unwrap_or(&[]),
                );
            }
            Some("info") | Some("model-info") => bin::encode_info(&mut out, request.id),
            other => panic!("not QBIN-expressible: {other:?}"),
        }
    }
    out
}

/// Everything a response asserts bit-for-bit: ids, verdicts, error
/// strings, and every f64 as its exact bit pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ResponseBits {
    id: Option<u64>,
    ok: bool,
    error: Option<String>,
    predictions: Option<Vec<(u64, u64, u64, u64)>>,
    info_generation: Option<u64>,
}

impl ResponseBits {
    fn of(response: &Response) -> ResponseBits {
        ResponseBits {
            id: response.id,
            ok: response.ok,
            error: response.error.clone(),
            predictions: response.predictions.as_ref().map(|rows| {
                rows.iter()
                    .map(|row| {
                        assert_eq!(row.pf.to_bits(), row.pf_bits, "decimal/bits mirror drift");
                        assert_eq!(row.e_avg.to_bits(), row.e_avg_bits);
                        assert_eq!(row.e_std.to_bits(), row.e_std_bits);
                        (row.a.to_bits(), row.pf_bits, row.e_avg_bits, row.e_std_bits)
                    })
                    .collect()
            }),
            info_generation: response.info.as_ref().map(|info| info.generation),
        }
    }
}

/// Replays the NDJSON rendition through the blocking driver and parses
/// every response line.
fn replay_ndjson(engine: &ServeEngine, requests: &[u8]) -> Vec<ResponseBits> {
    let mut out = Vec::new();
    serve_connection(engine, Cursor::new(requests.to_vec()), &mut out).expect("ndjson session");
    String::from_utf8(out)
        .expect("utf-8 responses")
        .lines()
        .map(|line| ResponseBits::of(&serde_json::from_str(line).expect("response line")))
        .collect()
}

/// Replays the QBIN rendition through the same blocking driver and
/// decodes every response frame.
fn replay_qbin(engine: &ServeEngine, requests: &[u8]) -> Vec<ResponseBits> {
    let mut out = Vec::new();
    serve_connection(engine, Cursor::new(requests.to_vec()), &mut out).expect("qbin session");
    bin::decode_response_stream(&out)
        .expect("clean response frames")
        .iter()
        .map(ResponseBits::of)
        .collect()
}

/// The tentpole's correctness contract, end to end: same requests, same
/// engine configuration → the QBIN and NDJSON responses carry identical
/// f64 bit patterns, at 4 workers with the cache on AND at 1 worker with
/// it off — and the two configurations agree with each other.
#[test]
fn qbin_and_ndjson_responses_are_bit_identical() {
    let requests = expressible_requests();
    let ndjson = ndjson_stream(&requests);
    let qbin = qbin_stream(&requests);
    let mut per_config = Vec::new();
    for config in contrast_configs() {
        let engine = ServeEngine::new(test_model(), config);
        let from_ndjson = replay_ndjson(&engine, &ndjson);
        // Fresh engine for the binary replay so cache warm-up cannot
        // mask a divergence (both formats start cold).
        let engine = ServeEngine::new(test_model(), config);
        let from_qbin = replay_qbin(&engine, &qbin);
        assert_eq!(from_ndjson.len(), requests.len());
        assert_eq!(
            from_ndjson, from_qbin,
            "QBIN and NDJSON disagree under the same engine config"
        );
        per_config.push(from_ndjson);
    }
    assert_eq!(
        per_config[0], per_config[1],
        "worker count / cache setting changed response bits"
    );
}

/// Both protocols on one event-loop port at once: an NDJSON client and a
/// QBIN client replay the same predict mix concurrently; each gets
/// responses bit-identical to its own sequential stdio replay.
#[test]
fn mixed_protocol_clients_share_one_event_loop_port() {
    let requests = expressible_requests();
    let ndjson = ndjson_stream(&requests);
    let qbin = qbin_stream(&requests);

    let oracle_engine = ServeEngine::new(
        test_model(),
        ServeConfig {
            workers: 1,
            max_batch_rows: 1,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let expected_ndjson = replay_ndjson(&oracle_engine, &ndjson);
    let expected_qbin = replay_qbin(&oracle_engine, &qbin);
    assert_eq!(expected_ndjson, expected_qbin);

    let engine = Arc::new(ServeEngine::new(
        test_model(),
        ServeConfig {
            workers: 2,
            max_batch_rows: 16,
            ..Default::default()
        },
    ));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let loop_thread = {
        let engine = Arc::clone(&engine);
        let config = EventLoopConfig {
            shutdown: Some(Arc::clone(&shutdown)),
            ..Default::default()
        };
        std::thread::spawn(move || serve_event_loop(&engine, listener, config))
    };

    let fetch = |payload: &[u8]| -> Vec<u8> {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(payload).expect("send requests");
        stream.shutdown(Shutdown::Write).expect("half-close");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read responses");
        response
    };
    std::thread::scope(|scope| {
        let ndjson_client = scope.spawn(|| fetch(&ndjson));
        let qbin_client = scope.spawn(|| fetch(&qbin));
        let got_ndjson: Vec<ResponseBits> =
            String::from_utf8(ndjson_client.join().expect("client"))
                .expect("utf-8 responses")
                .lines()
                .map(|line| ResponseBits::of(&serde_json::from_str(line).expect("response line")))
                .collect();
        let got_qbin: Vec<ResponseBits> =
            bin::decode_response_stream(&qbin_client.join().expect("client"))
                .expect("clean response frames")
                .iter()
                .map(ResponseBits::of)
                .collect();
        assert_eq!(got_ndjson, expected_ndjson, "NDJSON client diverged");
        assert_eq!(got_qbin, expected_qbin, "QBIN client diverged");
    });

    shutdown.store(true, Ordering::SeqCst);
    loop_thread
        .join()
        .expect("loop thread")
        .expect("clean exit");
}

/// A corrupt frame mid-stream gets a typed `ok: false` response and the
/// session keeps serving — through the real blocking driver, exactly
/// like the NDJSON malformed-line contract.
#[test]
fn corrupt_qbin_frame_is_answered_and_survived() {
    let engine = ServeEngine::new(test_model(), ServeConfig::default());
    let mut stream = Vec::new();
    bin::encode_info(&mut stream, Some(1));
    let mut corrupt = Vec::new();
    bin::encode_info(&mut corrupt, Some(2));
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x40; // break the CRC
    stream.extend_from_slice(&corrupt);
    bin::encode_info(&mut stream, Some(3));

    let responses = replay_qbin(&engine, &stream);
    assert_eq!(responses.len(), 3, "one response per frame: {responses:?}");
    assert_eq!(responses[0].id, Some(1));
    assert!(responses[0].ok);
    assert!(!responses[1].ok, "the corrupt frame must be rejected");
    let error = responses[1].error.as_deref().unwrap_or_default();
    assert!(
        error.contains("checksum"),
        "expected a checksum reject, got {error:?}"
    );
    assert_eq!(
        (responses[2].id, responses[2].ok),
        (Some(3), true),
        "the session must survive a recoverable frame error"
    );
}

/// A stream opening with the wrong magic-adjacent bytes (a version this
/// endpoint does not speak) is answered with one typed error and the
/// connection closes — framing is unrecoverable, so no guessing.
#[test]
fn unsupported_qbin_version_is_answered_then_closed() {
    let engine = ServeEngine::new(test_model(), ServeConfig::default());
    let mut stream = Vec::new();
    bin::encode_info(&mut stream, Some(1));
    stream[4] = 99; // future protocol version
    let mut good = Vec::new();
    bin::encode_info(&mut good, Some(2));
    stream.extend_from_slice(&good); // never reached: framing is lost

    let mut out = Vec::new();
    serve_connection(&engine, Cursor::new(stream), &mut out).expect("session completes");
    let responses = bin::decode_response_stream(&out).expect("clean response frames");
    assert_eq!(responses.len(), 1, "exactly one reject: {responses:?}");
    assert!(!responses[0].ok);
    let error = responses[0].error.as_deref().unwrap_or_default();
    assert!(
        error.contains("version"),
        "expected a version reject, got {error:?}"
    );
}
