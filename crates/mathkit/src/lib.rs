//! # mathkit — numerical substrate for the QROSS reproduction
//!
//! Self-contained numerical routines used across the workspace:
//!
//! * [`matrix`] — dense row-major matrices with the small set of BLAS-like
//!   operations the neural network and Gaussian-process code need;
//! * [`kernel`] — register-tiled matmul kernels behind [`Matrix`], defining
//!   the two numeric tiers (bit-exact serve tier vs opt-in fast-math
//!   collection tier);
//! * [`linalg`] — Cholesky factorisation and triangular solves for symmetric
//!   positive-definite systems (Gaussian-process regression);
//! * [`stats`] — descriptive statistics, online (Welford) accumulators,
//!   confidence intervals;
//! * [`special`] — error function, Gaussian pdf/cdf and its inverse;
//! * [`integrate`] — adaptive Simpson and fixed-order Gauss–Legendre
//!   quadrature (used by the Minimum Fitness Strategy integral);
//! * [`optimize`] — bisection, golden-section, grid and Nelder–Mead
//!   optimisers (the stand-in for scipy's `shgo` in the paper);
//! * [`fit`] — damped Gauss–Newton sigmoid fitting (Online Fitting Strategy)
//!   and linear least squares;
//! * [`kde`] — 1-D truncated Parzen (Gaussian-mixture) estimators for the
//!   TPE baseline tuner;
//! * [`rng`] — deterministic seed-derivation helpers so every experiment is
//!   reproducible from a single root seed.
//!
//! # Examples
//!
//! ```
//! use mathkit::special::normal_cdf;
//! let p = normal_cdf(0.0, 0.0, 1.0);
//! assert!((p - 0.5).abs() < 1e-12);
//! ```

pub mod fit;
pub mod integrate;
pub mod kde;
pub mod kernel;
pub mod linalg;
pub mod matrix;
pub mod optimize;
pub mod rng;
pub mod special;
pub mod stats;

pub use matrix::Matrix;

/// Crate-wide error type for numerical failures.
///
/// # Examples
///
/// ```
/// use mathkit::MathError;
/// let err = MathError::NotPositiveDefinite;
/// assert_eq!(err.to_string(), "matrix is not positive definite");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MathError {
    /// A Cholesky factorisation encountered a non-positive pivot.
    NotPositiveDefinite,
    /// Matrix dimensions were incompatible for the requested operation.
    DimensionMismatch {
        /// textual description of the expected shape
        expected: String,
        /// textual description of the shape that was provided
        found: String,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// name of the routine that failed
        routine: &'static str,
    },
    /// The input was empty where at least one element is required.
    EmptyInput,
    /// An argument was outside its mathematical domain.
    Domain {
        /// explanation of the violated precondition
        message: String,
    },
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            MathError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MathError::NoConvergence { routine } => {
                write!(f, "routine `{routine}` failed to converge")
            }
            MathError::EmptyInput => write!(f, "empty input"),
            MathError::Domain { message } => write!(f, "domain error: {message}"),
        }
    }
}

impl std::error::Error for MathError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MathError>;
