//! Sans-IO halves of a serving session, protocol-agnostic.
//!
//! [`SessionCodec`] turns arbitrary byte chunks into framed requests —
//! the caller owns the socket/pipe/file; the codec only ever sees
//! `&[u8]`, so any chunking (1-byte reads, jumbo frames, whatever the
//! kernel hands a nonblocking read) decodes to the identical item
//! sequence. Each connection speaks **either** NDJSON or QBIN, decided
//! once by sniffing the first bytes: a stream opening with the exact
//! [`bin::QBIN_MAGIC`] is binary, anything else (JSON's `{`, leading
//! whitespace, blank lines) is NDJSON. The sniff survives pathological
//! chunking — a 1-byte first read, the magic split across two chunks, a
//! client that sends only the magic and stalls — because the decision
//! waits until the prefix either completes the magic or diverges from
//! it.
//!
//! [`ResponseEmitter`] is the matching output half: it holds staged
//! responses in request order and serializes each one as soon as it —
//! and everything before it — is complete, into a caller-owned byte
//! buffer, as NDJSON lines or QBIN frames to match the connection's
//! protocol. NDJSON serialization reuses one per-emitter scratch
//! `String` (bit-identical output, no per-response allocation); QBIN
//! frames are encoded directly into the output buffer.
//!
//! Both halves are driven by the blocking stdio/TCP path
//! ([`super::serve_connection`]) and the nonblocking event loop
//! (`bench::net`), which is what makes "byte-identical at any
//! connection count" a structural property rather than a test hope.

use std::collections::VecDeque;

use qross::serve::ServeObs;

use super::{bin, emit_metrics, emit_pending, emit_response, Staged};

/// Longest accepted request line (bytes, newline excluded). A client
/// streaming one endless line used to grow the read buffer without
/// bound — a reject-never-OOM violation; past this cap the line is
/// dropped (not buffered) and answered with a typed bad-request error.
/// 1 MiB comfortably fits every legitimate op, including TSPLIB uploads
/// of the sizes this repo trains on. QBIN frames get the same cap on
/// their declared payload length ([`bin::MAX_FRAME_BYTES`]).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Which wire protocol a connection speaks, decided once per connection
/// by sniffing its first bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// one JSON request/response per line
    Ndjson,
    /// length-framed binary ([`bin`])
    Qbin,
}

/// One decoded item from an NDJSON request byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecLine {
    /// a complete request line (newline stripped, CRLF-tolerant)
    Line(String),
    /// a line longer than the codec's cap; its bytes were discarded
    Oversized {
        /// the cap that was exceeded ([`MAX_LINE_BYTES`] by default)
        limit: usize,
    },
    /// a complete line that was not valid UTF-8
    InvalidUtf8,
}

/// One decoded item from the session byte stream, either protocol.
/// Frame payloads borrow the codec's buffer (zero-copy) and stay valid
/// until the next `feed`.
#[derive(Debug)]
pub enum WireItem<'a> {
    /// an NDJSON item
    Line(CodecLine),
    /// a complete, CRC-verified QBIN frame
    Frame(bin::Frame<'a>),
    /// a QBIN framing-level reject (oversized, corrupt, truncated…)
    FrameError(bin::BinError),
}

/// Incremental NDJSON request-line decoder.
///
/// Mirrors `BufRead::lines` for well-formed input: splits on `\n`,
/// strips one trailing `\r` from terminated lines, and yields a final
/// unterminated line at EOF. Unlike `lines()`, it is bounded
/// ([`MAX_LINE_BYTES`]) and survives invalid UTF-8 by reporting it as an
/// item instead of an error.
#[derive(Debug)]
struct LineCodec {
    buf: Vec<u8>,
    /// prefix of `buf` already scanned and known newline-free — feeds
    /// resume scanning where they left off, so a line arriving in many
    /// small chunks costs O(len), not O(len²)
    scanned: usize,
    /// inside an over-limit line: drop bytes until the next newline
    discarding: bool,
    limit: usize,
}

impl LineCodec {
    fn with_limit(limit: usize) -> Self {
        LineCodec {
            buf: Vec::new(),
            scanned: 0,
            discarding: false,
            limit: limit.max(1),
        }
    }

    fn feed(&mut self, bytes: &[u8]) {
        if self.discarding {
            // Drop oversized-line bytes instead of buffering them; keep
            // only what follows the terminating newline.
            if let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
                self.discarding = false;
                self.buf.extend_from_slice(&bytes[pos + 1..]);
            }
            return;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn next_line(&mut self) -> Option<CodecLine> {
        let pos = self.buf[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| p + self.scanned);
        match pos {
            Some(pos) => {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                self.scanned = 0;
                line.pop(); // the '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                Some(self.classify(line))
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > self.limit {
                    // The partial line is already over the cap: report it
                    // now and stop buffering its remainder.
                    self.buf.clear();
                    self.scanned = 0;
                    self.discarding = true;
                    return Some(CodecLine::Oversized { limit: self.limit });
                }
                None
            }
        }
    }

    /// EOF: yields the final unterminated line, if any. Mirrors
    /// `BufRead::lines`, which keeps a trailing `\r` when no `\n`
    /// follows it.
    fn finish(&mut self) -> Option<CodecLine> {
        if self.discarding || self.buf.is_empty() {
            self.buf.clear();
            self.scanned = 0;
            self.discarding = false;
            return None;
        }
        let line = std::mem::take(&mut self.buf);
        self.scanned = 0;
        Some(self.classify(line))
    }

    fn classify(&self, line: Vec<u8>) -> CodecLine {
        if line.len() > self.limit {
            return CodecLine::Oversized { limit: self.limit };
        }
        match String::from_utf8(line) {
            Ok(s) => CodecLine::Line(s),
            Err(_) => CodecLine::InvalidUtf8,
        }
    }
}

/// Per-protocol decoding state, entered once the sniff decides.
#[derive(Debug)]
enum ProtoState {
    /// fewer bytes than the magic so far, all matching its prefix
    Sniffing {
        pending: Vec<u8>,
    },
    Ndjson(LineCodec),
    Qbin(bin::FrameCodec),
}

/// Incremental request decoder for one connection, either protocol.
///
/// Feed arbitrary byte chunks; take decoded items with
/// [`SessionCodec::next_item`] and the EOF tail with
/// [`SessionCodec::finish`]. The protocol is sniffed from the first
/// bytes and fixed for the connection's lifetime
/// ([`SessionCodec::wire`]).
#[derive(Debug)]
pub struct SessionCodec {
    state: ProtoState,
    limit: usize,
}

impl Default for SessionCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionCodec {
    pub fn new() -> Self {
        Self::with_limit(MAX_LINE_BYTES)
    }

    /// A codec with a custom line/frame cap (tests; production uses
    /// [`MAX_LINE_BYTES`]).
    pub fn with_limit(limit: usize) -> Self {
        SessionCodec {
            state: ProtoState::Sniffing {
                pending: Vec::new(),
            },
            limit: limit.max(1),
        }
    }

    /// The sniffed protocol, `None` while fewer magic-prefix bytes than
    /// the full magic have arrived.
    pub fn wire(&self) -> Option<WireFormat> {
        match &self.state {
            ProtoState::Sniffing { .. } => None,
            ProtoState::Ndjson(_) => Some(WireFormat::Ndjson),
            ProtoState::Qbin(_) => Some(WireFormat::Qbin),
        }
    }

    /// Appends a chunk of request bytes. Any split boundary is fine —
    /// including inside the sniffed magic.
    pub fn feed(&mut self, bytes: &[u8]) {
        match &mut self.state {
            ProtoState::Sniffing { pending } => {
                pending.extend_from_slice(bytes);
                let seen = pending.len().min(bin::QBIN_MAGIC.len());
                if pending[..seen] != bin::QBIN_MAGIC[..seen] {
                    // Diverged from the magic: this is NDJSON, and the
                    // sniffed bytes are its first line's prefix.
                    let pending = std::mem::take(pending);
                    let mut codec = LineCodec::with_limit(self.limit);
                    codec.feed(&pending);
                    self.state = ProtoState::Ndjson(codec);
                } else if pending.len() >= bin::QBIN_MAGIC.len() {
                    // Full magic seen: binary. The magic bytes are part
                    // of the first frame, so the frame codec gets them
                    // too.
                    let pending = std::mem::take(pending);
                    let mut codec = bin::FrameCodec::with_limit(self.limit);
                    codec.feed(&pending);
                    self.state = ProtoState::Qbin(codec);
                }
                // else: still a strict prefix of the magic — keep
                // sniffing (a client may send one byte and stall).
            }
            ProtoState::Ndjson(codec) => codec.feed(bytes),
            ProtoState::Qbin(codec) => codec.feed(bytes),
        }
    }

    /// Bytes currently buffered (bounded by the line/frame cap plus one
    /// read chunk — the backpressure quantity an event loop may want).
    pub fn buffered(&self) -> usize {
        match &self.state {
            ProtoState::Sniffing { pending } => pending.len(),
            ProtoState::Ndjson(codec) => codec.buffered(),
            ProtoState::Qbin(codec) => codec.buffered(),
        }
    }

    /// The next complete item, or `None` when more bytes are needed.
    /// Frame payloads borrow this codec and stay valid until the next
    /// `feed`.
    pub fn next_item(&mut self) -> Option<WireItem<'_>> {
        match &mut self.state {
            ProtoState::Sniffing { .. } => None,
            ProtoState::Ndjson(codec) => codec.next_line().map(WireItem::Line),
            ProtoState::Qbin(codec) => codec.next_frame().map(|decoded| match decoded {
                Ok(frame) => WireItem::Frame(frame),
                Err(e) => WireItem::FrameError(e),
            }),
        }
    }

    /// EOF: yields the final item, if any — an unterminated NDJSON tail
    /// line, or a truncation error for a partial QBIN frame. A stream
    /// that ends mid-sniff (fewer bytes than the magic) is treated as
    /// NDJSON, mirroring `BufRead::lines` on a short trailing line.
    pub fn finish(&mut self) -> Option<WireItem<'_>> {
        if let ProtoState::Sniffing { pending } = &mut self.state {
            let pending = std::mem::take(pending);
            let mut codec = LineCodec::with_limit(self.limit);
            codec.feed(&pending);
            self.state = ProtoState::Ndjson(codec);
        }
        match &mut self.state {
            ProtoState::Sniffing { .. } => unreachable!("sniff resolved above"),
            ProtoState::Ndjson(codec) => codec.finish().map(WireItem::Line),
            ProtoState::Qbin(codec) => codec.finish().map(WireItem::FrameError),
        }
    }
}

/// Order-preserving response serializer.
///
/// Staged responses are pushed in request order; [`ResponseEmitter::pump`]
/// appends every response that is complete *and* at the head of the line
/// to an output buffer — one NDJSON line or one QBIN frame each, per the
/// connection's sniffed protocol. Responses never reorder: a slow
/// prediction holds back everything staged after it, exactly like the
/// blocking writer loop it replaces.
#[derive(Debug, Default)]
pub struct ResponseEmitter {
    queue: VecDeque<Staged>,
    /// per-connection NDJSON serialization scratch, reused across
    /// responses — the bytes are identical to a fresh `to_string`, the
    /// allocation is not repeated
    scratch: String,
}

impl ResponseEmitter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages the next response (in request order).
    pub fn push(&mut self, staged: Staged) {
        self.queue.push_back(staged);
    }

    /// Responses staged but not yet emitted — the connection's pipelining
    /// depth, which drivers bound to stop a flooding client.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Appends every head-of-line-complete response to `out` (one NDJSON
    /// line or QBIN frame each) without blocking; returns how many
    /// responses were emitted. `serve_obs` is the engine's observability
    /// handle (`engine.obs()`): emitting an engine-served response
    /// records its encode stage and offers the finished span to the
    /// slowest-request trace log.
    ///
    /// # Errors
    ///
    /// Serialization failure only (cannot happen for the fixed response
    /// schema).
    pub fn pump(
        &mut self,
        serve_obs: &ServeObs,
        wire: WireFormat,
        out: &mut Vec<u8>,
    ) -> std::io::Result<usize> {
        let mut emitted = 0usize;
        while let Some(front) = self.queue.front_mut() {
            match front {
                Staged::Pending { pending, .. } => match pending.try_wait_spanned() {
                    None => break,
                    Some((span, outcome)) => {
                        let Some(Staged::Pending {
                            head,
                            a_values,
                            op,
                            tenant,
                            ..
                        }) = self.queue.pop_front()
                        else {
                            unreachable!("front was Pending");
                        };
                        emit_pending(
                            serve_obs,
                            op,
                            &tenant,
                            span,
                            head,
                            a_values,
                            outcome,
                            wire,
                            &mut self.scratch,
                            out,
                        )?;
                    }
                },
                Staged::Ready(_) | Staged::Raw(_) | Staged::Metrics(_) => {
                    match self.queue.pop_front().expect("front exists") {
                        Staged::Ready(response) => {
                            emit_response(&response, wire, &mut self.scratch, out)?;
                        }
                        Staged::Raw(line) => {
                            // Pre-serialized NDJSON (`trace`) — the op
                            // is not reachable over QBIN.
                            out.extend_from_slice(line.as_bytes());
                            out.push(b'\n');
                        }
                        Staged::Metrics(payload) => {
                            emit_metrics(&payload, wire, &mut self.scratch, out)?;
                        }
                        Staged::Pending { .. } => unreachable!("front was not Pending"),
                    }
                }
            }
            emitted += 1;
        }
        Ok(emitted)
    }
}
