//! Curve fitting: the two-parameter logistic (sigmoid) fit used by the
//! Online Fitting Strategy, and ordinary linear least squares.
//!
//! The OFS ansatz (paper eq. 7) is
//! `S(A; θs, θo) = 1 / (1 + exp(−A·θs + θo))`.
//! Fitting proceeds by damped Gauss–Newton (Levenberg–Marquardt) on the
//! squared residuals, warm-started from a logit-space linear regression.

use serde::{Deserialize, Serialize};

use crate::special::{logit, sigmoid};
use crate::{MathError, Result};

/// Parameters of the OFS sigmoid ansatz `S(A) = σ(θs·A − θo)`.
///
/// `θs` (`scale`) controls the slope steepness; `θo` (`offset`) shifts the
/// transition along the `A` axis. The transition midpoint sits at
/// `A = θo / θs`.
///
/// # Examples
///
/// ```
/// use mathkit::fit::SigmoidParams;
/// let p = SigmoidParams { scale: 2.0, offset: 6.0 };
/// assert!((p.eval(3.0) - 0.5).abs() < 1e-12); // midpoint at A = 3
/// assert!(p.eval(10.0) > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmoidParams {
    /// slope parameter `θs`
    pub scale: f64,
    /// offset parameter `θo`
    pub offset: f64,
}

impl SigmoidParams {
    /// Evaluates the sigmoid at `a`.
    pub fn eval(&self, a: f64) -> f64 {
        sigmoid(self.scale * a - self.offset)
    }

    /// The `A` value where the sigmoid crosses probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Domain`] if `p` is outside `(0, 1)` or the
    /// slope is zero.
    pub fn inverse(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
            return Err(MathError::Domain {
                message: format!("sigmoid inverse requires 0 < p < 1, got {p}"),
            });
        }
        if self.scale == 0.0 {
            return Err(MathError::Domain {
                message: "sigmoid inverse undefined for zero slope".to_string(),
            });
        }
        Ok((logit(p, 1e-15) + self.offset) / self.scale)
    }

    /// The open interval of `A` where `eps < S(A) < 1 − eps` — the "slope"
    /// region the Online Fitting Strategy samples from (Algorithm 1,
    /// line 5).
    ///
    /// Returns `(lo, hi)` with `lo < hi` regardless of the sign of the
    /// slope.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Domain`] on zero slope or invalid `eps`.
    pub fn slope_interval(&self, eps: f64) -> Result<(f64, f64)> {
        if !(0.0..0.5).contains(&eps) || eps == 0.0 {
            return Err(MathError::Domain {
                message: format!("slope_interval requires 0 < eps < 0.5, got {eps}"),
            });
        }
        let a = self.inverse(eps)?;
        let b = self.inverse(1.0 - eps)?;
        Ok(if a < b { (a, b) } else { (b, a) })
    }
}

/// Outcome of a sigmoid fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmoidFit {
    /// fitted parameters
    pub params: SigmoidParams,
    /// final sum of squared residuals
    pub sse: f64,
    /// number of Levenberg–Marquardt iterations used
    pub iterations: usize,
}

/// Fits [`SigmoidParams`] to observations `(a_i, p_i)` with `p_i ∈ [0, 1]`.
///
/// Strategy: warm start from linear regression in logit space (clamping
/// saturated observations), then Levenberg–Marquardt refinement on the
/// untransformed squared error, which weights the slope region correctly.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] for unequal input lengths.
/// * [`MathError::Domain`] for fewer than two points or all-identical `a`.
///
/// # Examples
///
/// ```
/// use mathkit::fit::{fit_sigmoid, SigmoidParams};
/// let truth = SigmoidParams { scale: 1.4, offset: 42.0 };
/// let a: Vec<f64> = (20..45).map(|i| i as f64).collect();
/// let p: Vec<f64> = a.iter().map(|&x| truth.eval(x)).collect();
/// let fit = fit_sigmoid(&a, &p)?;
/// assert!((fit.params.scale - 1.4).abs() < 1e-3);
/// assert!((fit.params.offset - 42.0).abs() < 1e-2);
/// # Ok::<(), mathkit::MathError>(())
/// ```
pub fn fit_sigmoid(a: &[f64], p: &[f64]) -> Result<SigmoidFit> {
    if a.len() != p.len() {
        return Err(MathError::DimensionMismatch {
            expected: format!("length {}", a.len()),
            found: format!("length {}", p.len()),
        });
    }
    if a.len() < 2 {
        return Err(MathError::Domain {
            message: "sigmoid fit requires at least two observations".to_string(),
        });
    }
    let amin = a.iter().cloned().fold(f64::INFINITY, f64::min);
    let amax = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if amax - amin < 1e-12 {
        return Err(MathError::Domain {
            message: "sigmoid fit requires spread in the a values".to_string(),
        });
    }

    // --- Warm start: least squares in logit space. ---
    // logit(p) = θs·a − θo  →  regress y on a.
    let ys: Vec<f64> = p.iter().map(|&pi| logit(pi, 1e-3)).collect();
    let (slope, intercept) = linear_least_squares(a, &ys)?;
    let mut params = SigmoidParams {
        // Guard against a degenerate zero slope from saturated data.
        scale: if slope.abs() < 1e-9 { 1e-3 } else { slope },
        offset: -intercept,
    };

    // --- Levenberg–Marquardt on untransformed residuals. ---
    let sse = |prm: &SigmoidParams| -> f64 {
        a.iter()
            .zip(p.iter())
            .map(|(&ai, &pi)| {
                let r = prm.eval(ai) - pi;
                r * r
            })
            .sum()
    };
    let mut lambda = 1e-3;
    let mut current = sse(&params);
    let mut iterations = 0;
    for _ in 0..200 {
        iterations += 1;
        // Jacobian of residuals r_i = S(a_i) − p_i w.r.t. (θs, θo):
        // dS/dθs = S(1−S)·a, dS/dθo = −S(1−S).
        let mut jtj = [[0.0_f64; 2]; 2];
        let mut jtr = [0.0_f64; 2];
        for (&ai, &pi) in a.iter().zip(p.iter()) {
            let s = params.eval(ai);
            let w = s * (1.0 - s);
            let j0 = w * ai;
            let j1 = -w;
            let r = s - pi;
            jtj[0][0] += j0 * j0;
            jtj[0][1] += j0 * j1;
            jtj[1][0] += j1 * j0;
            jtj[1][1] += j1 * j1;
            jtr[0] += j0 * r;
            jtr[1] += j1 * r;
        }
        // Damped normal equations: (JᵀJ + λ·diag(JᵀJ)) δ = −Jᵀr.
        let d0 = jtj[0][0] * (1.0 + lambda) + 1e-12;
        let d1 = jtj[1][1] * (1.0 + lambda) + 1e-12;
        let det = d0 * d1 - jtj[0][1] * jtj[1][0];
        if det.abs() < 1e-300 {
            break;
        }
        let dx0 = (-jtr[0] * d1 + jtr[1] * jtj[0][1]) / det;
        let dx1 = (-jtr[1] * d0 + jtr[0] * jtj[1][0]) / det;
        let trial = SigmoidParams {
            scale: params.scale + dx0,
            offset: params.offset + dx1,
        };
        let trial_sse = sse(&trial);
        if trial_sse.is_finite() && trial_sse < current {
            let improvement = current - trial_sse;
            params = trial;
            current = trial_sse;
            lambda = (lambda * 0.5).max(1e-12);
            if improvement < 1e-14 {
                break;
            }
        } else {
            lambda *= 4.0;
            if lambda > 1e10 {
                break;
            }
        }
    }
    Ok(SigmoidFit {
        params,
        sse: current,
        iterations,
    })
}

/// Ordinary least squares for `y ≈ slope·x + intercept`.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] for unequal lengths.
/// * [`MathError::Domain`] for fewer than two points or zero variance in
///   `x`.
///
/// # Examples
///
/// ```
/// use mathkit::fit::linear_least_squares;
/// let (m, b) = linear_least_squares(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0])?;
/// assert!((m - 2.0).abs() < 1e-12);
/// assert!((b - 1.0).abs() < 1e-12);
/// # Ok::<(), mathkit::MathError>(())
/// ```
pub fn linear_least_squares(x: &[f64], y: &[f64]) -> Result<(f64, f64)> {
    if x.len() != y.len() {
        return Err(MathError::DimensionMismatch {
            expected: format!("length {}", x.len()),
            found: format!("length {}", y.len()),
        });
    }
    let n = x.len();
    if n < 2 {
        return Err(MathError::Domain {
            message: "linear regression requires at least two points".to_string(),
        });
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (xi, yi) in x.iter().zip(y.iter()) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
    }
    if sxx < 1e-300 {
        return Err(MathError::Domain {
            message: "zero variance in x".to_string(),
        });
    }
    let slope = sxy / sxx;
    Ok((slope, my - slope * mx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_exact() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|&v| -0.5 * v + 3.0).collect();
        let (m, b) = linear_least_squares(&x, &y).unwrap();
        assert!((m + 0.5).abs() < 1e-12);
        assert!((b - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_errors() {
        assert!(linear_least_squares(&[1.0], &[1.0]).is_err());
        assert!(linear_least_squares(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(linear_least_squares(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn sigmoid_fit_recovers_truth() {
        let truth = SigmoidParams {
            scale: 0.8,
            offset: 24.0,
        };
        let a: Vec<f64> = (10..55).map(|i| i as f64).collect();
        let p: Vec<f64> = a.iter().map(|&x| truth.eval(x)).collect();
        let fit = fit_sigmoid(&a, &p).unwrap();
        assert!((fit.params.scale - truth.scale).abs() < 1e-4, "{fit:?}");
        assert!((fit.params.offset - truth.offset).abs() < 1e-3, "{fit:?}");
        assert!(fit.sse < 1e-10);
    }

    #[test]
    fn sigmoid_fit_with_noise() {
        // Deterministic pseudo-noise; the fit should land near the truth.
        let truth = SigmoidParams {
            scale: 1.2,
            offset: 36.0,
        };
        let a: Vec<f64> = (20..45).map(|i| i as f64).collect();
        let p: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let noise = 0.02 * ((i as f64 * 2.399).sin());
                (truth.eval(x) + noise).clamp(0.0, 1.0)
            })
            .collect();
        let fit = fit_sigmoid(&a, &p).unwrap();
        let mid_truth = truth.offset / truth.scale;
        let mid_fit = fit.params.offset / fit.params.scale;
        assert!(
            (mid_fit - mid_truth).abs() < 0.5,
            "midpoints {mid_fit} vs {mid_truth}"
        );
    }

    #[test]
    fn sigmoid_fit_saturated_data() {
        // Only 0s and 1s — the transition location is ambiguous but a fit
        // must still be produced with the crossover inside the gap.
        let a = [1.0, 2.0, 3.0, 30.0, 40.0, 50.0];
        let p = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let fit = fit_sigmoid(&a, &p).unwrap();
        let mid = fit.params.offset / fit.params.scale;
        assert!(mid > 3.0 && mid < 30.0, "midpoint {mid}");
    }

    #[test]
    fn sigmoid_inverse_roundtrip() {
        let prm = SigmoidParams {
            scale: 0.7,
            offset: 14.0,
        };
        for &p in &[0.1, 0.3, 0.5, 0.8, 0.95] {
            let a = prm.inverse(p).unwrap();
            assert!((prm.eval(a) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn sigmoid_inverse_domain() {
        let prm = SigmoidParams {
            scale: 1.0,
            offset: 0.0,
        };
        assert!(prm.inverse(0.0).is_err());
        assert!(prm.inverse(1.0).is_err());
        let flat = SigmoidParams {
            scale: 0.0,
            offset: 0.0,
        };
        assert!(flat.inverse(0.5).is_err());
    }

    #[test]
    fn slope_interval_ordering() {
        let prm = SigmoidParams {
            scale: 2.0,
            offset: 10.0,
        };
        let (lo, hi) = prm.slope_interval(0.05).unwrap();
        assert!(lo < hi);
        assert!((prm.eval(lo) - 0.05).abs() < 1e-9);
        assert!((prm.eval(hi) - 0.95).abs() < 1e-9);
        // Negative slope still yields an ordered interval.
        let neg = SigmoidParams {
            scale: -2.0,
            offset: -10.0,
        };
        let (lo2, hi2) = neg.slope_interval(0.05).unwrap();
        assert!(lo2 < hi2);
    }

    #[test]
    fn fit_requires_spread() {
        assert!(fit_sigmoid(&[2.0, 2.0], &[0.2, 0.8]).is_err());
        assert!(fit_sigmoid(&[1.0], &[0.5]).is_err());
        assert!(fit_sigmoid(&[1.0, 2.0], &[0.5]).is_err());
    }
}
