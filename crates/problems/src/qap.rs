//! Quadratic Assignment Problem.
//!
//! The paper verifies its core hypothesis ("optimal solutions appear on the
//! sigmoid slope, 0 < Pf < 1") on QAPLIB instances solved with SA (§3.1
//! fn. 2); this module provides the QAP substrate for that check. Given an
//! `n×n` flow matrix `F` and distance matrix `D`, assign facilities to
//! locations (a permutation `p`) minimising `Σ_{a,b} F_ab · D_{p(a) p(b)}`.
//!
//! The QUBO encoding mirrors the TSP's permutation structure: indicator
//! `x_{f,l}` (facility `f` at location `l`, flat index `f·n + l`) with
//! objective `Σ_{f≠g, l≠m} F_fg D_lm x_{f,l} x_{g,m}` and one-hot row and
//! column constraints relaxed with parameter `A`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;
use mathkit::Matrix;
use qubo::{ConstrainedBinaryProgram, LinearConstraint, QuboBuilder, QuboModel};

use crate::RelaxableProblem;

/// A QAP instance and its QUBO encoding.
///
/// # Examples
///
/// ```
/// use problems::{QapInstance, RelaxableProblem};
/// let inst = QapInstance::random("q", 4, 42);
/// let x = inst.encode_assignment(&[2, 0, 3, 1]);
/// assert!(inst.is_feasible(&x));
/// assert!(inst.fitness(&x).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QapInstance {
    name: String,
    flow: Matrix,
    dist: Matrix,
    program: ConstrainedBinaryProgram,
}

impl QapInstance {
    /// Creates an instance from flow and distance matrices.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ProblemError::InvalidInstance`] when the matrices
    /// are not square, differ in size, or contain non-finite entries.
    pub fn new(name: &str, flow: Matrix, dist: Matrix) -> Result<Self, crate::ProblemError> {
        let (fr, fc) = flow.shape();
        let (dr, dc) = dist.shape();
        if fr != fc || dr != dc || fr != dr {
            return Err(crate::ProblemError::InvalidInstance {
                message: format!("flow {fr}x{fc} and distance {dr}x{dc} must be equal squares"),
            });
        }
        if flow.has_non_finite() || dist.has_non_finite() {
            return Err(crate::ProblemError::InvalidInstance {
                message: "non-finite matrix entry".to_string(),
            });
        }
        let program = build_program(&flow, &dist);
        Ok(QapInstance {
            name: name.to_string(),
            flow,
            dist,
            program,
        })
    }

    /// Random instance with integer-valued flows and distances in
    /// `[0, 10)` (QAPLIB-style magnitudes), symmetric with zero diagonal.
    pub fn random(name: &str, n: usize, seed: u64) -> Self {
        let mut rng = derive_rng(seed, 0x9A9);
        let mut flow = Matrix::zeros(n, n);
        let mut dist = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let f = rng.gen_range(0..10) as f64;
                let d = rng.gen_range(1..10) as f64;
                flow[(i, j)] = f;
                flow[(j, i)] = f;
                dist[(i, j)] = d;
                dist[(j, i)] = d;
            }
        }
        Self::new(name, flow, dist).expect("constructed matrices are valid")
    }

    /// Problem size (facilities = locations = `n`).
    pub fn size(&self) -> usize {
        self.flow.rows()
    }

    /// Flow matrix.
    pub fn flow(&self) -> &Matrix {
        &self.flow
    }

    /// Distance matrix.
    pub fn dist(&self) -> &Matrix {
        &self.dist
    }

    /// Objective of a permutation `assignment[f] = location of facility f`.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is not a permutation of `0..n`.
    pub fn assignment_cost(&self, assignment: &[usize]) -> f64 {
        let n = self.size();
        assert!(
            crate::tsp::is_permutation(assignment, n),
            "assignment must be a permutation"
        );
        let mut acc = 0.0;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    acc += self.flow[(a, b)] * self.dist[(assignment[a], assignment[b])];
                }
            }
        }
        acc
    }

    /// Encodes a permutation into the flat binary QUBO assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is not a permutation of `0..n`.
    pub fn encode_assignment(&self, assignment: &[usize]) -> Vec<u8> {
        let n = self.size();
        assert!(
            crate::tsp::is_permutation(assignment, n),
            "assignment must be a permutation"
        );
        let mut x = vec![0u8; n * n];
        for (f, &l) in assignment.iter().enumerate() {
            x[f * n + l] = 1;
        }
        x
    }

    /// Decodes an assignment, or `None` if it is not a permutation matrix.
    pub fn decode_assignment(&self, x: &[u8]) -> Option<Vec<usize>> {
        let n = self.size();
        if x.len() != n * n {
            return None;
        }
        let mut assignment = vec![usize::MAX; n];
        let mut used = vec![false; n];
        for f in 0..n {
            let mut loc = None;
            for l in 0..n {
                if x[f * n + l] != 0 {
                    if loc.is_some() {
                        return None;
                    }
                    loc = Some(l);
                }
            }
            let l = loc?;
            if used[l] {
                return None;
            }
            used[l] = true;
            assignment[f] = l;
        }
        Some(assignment)
    }
}

fn build_program(flow: &Matrix, dist: &Matrix) -> ConstrainedBinaryProgram {
    let n = flow.rows();
    let mut obj = QuboBuilder::new(n * n);
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let f = flow[(a, b)];
            if f == 0.0 {
                continue;
            }
            for l in 0..n {
                for m in 0..n {
                    if l == m {
                        continue;
                    }
                    let w = f * dist[(l, m)];
                    if w != 0.0 {
                        obj.add_quadratic(a * n + l, b * n + m, w / 2.0);
                        // halved because (a,b) and (b,a) each contribute;
                        // the symmetric pair restores the full weight
                        obj.add_quadratic(b * n + m, a * n + l, w / 2.0);
                    }
                }
            }
        }
    }
    let mut program = ConstrainedBinaryProgram::new(obj.build());
    for f in 0..n {
        program.add_constraint(LinearConstraint::one_hot((0..n).map(|l| f * n + l)));
    }
    for l in 0..n {
        program.add_constraint(LinearConstraint::one_hot((0..n).map(|f| f * n + l)));
    }
    program
}

impl RelaxableProblem for QapInstance {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_vars(&self) -> usize {
        let n = self.size();
        n * n
    }

    fn to_qubo(&self, relaxation: f64) -> QuboModel {
        self.program.to_qubo(relaxation)
    }

    fn is_feasible(&self, x: &[u8]) -> bool {
        self.decode_assignment(x).is_some()
    }

    fn fitness(&self, x: &[u8]) -> Option<f64> {
        self.decode_assignment(x).map(|a| self.assignment_cost(&a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> QapInstance {
        // 3 facilities; hand-checkable numbers.
        let flow = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[2.0, 0.0, 3.0], &[1.0, 3.0, 0.0]]);
        let dist = Matrix::from_rows(&[&[0.0, 5.0, 4.0], &[5.0, 0.0, 1.0], &[4.0, 1.0, 0.0]]);
        QapInstance::new("tiny", flow, dist).unwrap()
    }

    #[test]
    fn assignment_cost_identity_permutation() {
        let q = tiny();
        // identity: cost = Σ f_ab d_ab = 2*(2*5 + 1*4 + 3*1) = 34
        assert_eq!(q.assignment_cost(&[0, 1, 2]), 34.0);
    }

    #[test]
    fn qubo_energy_equals_cost_on_feasible() {
        let q = tiny();
        let a = 50.0;
        let model = q.to_qubo(a);
        let perms = [[0usize, 1, 2], [0, 2, 1], [1, 0, 2], [2, 1, 0], [1, 2, 0]];
        for p in &perms {
            let x = q.encode_assignment(p);
            assert!(
                (model.energy(&x) - q.assignment_cost(p)).abs() < 1e-9,
                "perm {p:?}"
            );
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = tiny();
        for p in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let x = q.encode_assignment(&p);
            assert_eq!(q.decode_assignment(&x).unwrap(), p.to_vec());
            assert!(q.is_feasible(&x));
            assert!(q.fitness(&x).is_some());
        }
    }

    #[test]
    fn infeasible_detection() {
        let q = tiny();
        let mut x = vec![0u8; 9];
        assert!(!q.is_feasible(&x));
        x[0] = 1;
        x[1] = 1; // facility 0 in two locations
        x[5] = 1;
        assert!(!q.is_feasible(&x));
        assert!(q.fitness(&x).is_none());
    }

    #[test]
    fn qubo_global_minimum_is_best_permutation() {
        let q = tiny();
        let model = q.to_qubo(100.0);
        // Exhaustive over all 2^9 assignments.
        let mut best_e = f64::INFINITY;
        let mut best_bits = 0u16;
        for bits in 0..512u16 {
            let x: Vec<u8> = (0..9).map(|k| ((bits >> k) & 1) as u8).collect();
            let e = model.energy(&x);
            if e < best_e {
                best_e = e;
                best_bits = bits;
            }
        }
        let best_x: Vec<u8> = (0..9).map(|k| ((best_bits >> k) & 1) as u8).collect();
        let decoded = q.decode_assignment(&best_x).expect("minimum is feasible");
        // Brute-force the best permutation.
        let mut best_cost = f64::INFINITY;
        let mut best_perm = vec![0, 1, 2];
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in &perms {
            let c = q.assignment_cost(p);
            if c < best_cost {
                best_cost = c;
                best_perm = p.to_vec();
            }
        }
        assert_eq!(q.assignment_cost(&decoded), best_cost, "perm {best_perm:?}");
        assert!((best_e - best_cost).abs() < 1e-9);
    }

    #[test]
    fn random_is_deterministic_and_valid() {
        let a = QapInstance::random("r", 5, 3);
        let b = QapInstance::random("r", 5, 3);
        assert_eq!(a, b);
        assert_eq!(a.size(), 5);
        for i in 0..5 {
            assert_eq!(a.flow()[(i, i)], 0.0);
            assert_eq!(a.dist()[(i, i)], 0.0);
        }
    }

    #[test]
    fn validation() {
        let ok = Matrix::zeros(3, 3);
        assert!(QapInstance::new("m", Matrix::zeros(2, 3), ok.clone()).is_err());
        assert!(QapInstance::new("m", Matrix::zeros(2, 2), ok.clone()).is_err());
        let mut nan = Matrix::zeros(3, 3);
        nan[(0, 1)] = f64::NAN;
        assert!(QapInstance::new("m", nan, ok).is_err());
    }
}
