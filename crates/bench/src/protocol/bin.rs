//! QBIN — the length-framed binary wire protocol (version 1).
//!
//! NDJSON puts a JSON parse and a text float round-trip on every hot
//! request; QBIN replaces both with fixed-offset little-endian reads.
//! It reuses the `.qross` codec discipline end to end: every read is
//! bounds-checked, length prefixes are validated against the remaining
//! bytes *before* any allocation, hostile input yields a typed
//! [`BinError`] (never a panic), and every `f64` travels as its exact
//! IEEE-754 bit pattern — a QBIN predict response carries the same bits
//! as the NDJSON response for the same request.
//!
//! # Frame grammar
//!
//! ```text
//! frame   := magic version op length payload crc
//! magic   := "QBIN"                      (4 bytes; doubles as the
//!                                         protocol-sniffing token)
//! version := u8                          (1)
//! op      := u8                          (request/response tag below)
//! length  := u32 LE                      (payload bytes; capped at
//!                                         MAX_FRAME_BYTES)
//! payload := length bytes                (op-specific grammar)
//! crc     := u32 LE                      (CRC-32/IEEE of version, op,
//!                                         length and payload — every
//!                                         byte after the magic)
//! ```
//!
//! The CRC covers the header fields as well as the payload, so any
//! single-bit corruption anywhere in a frame is detected: a flipped
//! magic byte is a [`BinError::BadMagic`], everything else fails the
//! checksum. After a CRC mismatch the decoder resyncs at the next frame
//! boundary (the declared length is still the best guess); after a bad
//! magic or unknown version it declares the stream unrecoverable —
//! framing itself is lost.
//!
//! # Payload grammars
//!
//! Shared primitives (all little-endian): `opt_u64` is a presence byte
//! (`0`/`1`) followed by a `u64` when present; `str` is a `u32` byte
//! count followed by UTF-8 bytes; `f64s` is a `u32` element count
//! followed by raw `f64` bit patterns, decoded as a **borrowed**
//! [`F64View`] over the frame payload — no per-request `Vec<f64>`.
//!
//! Request ops:
//!
//! | op | name | payload |
//! |----|------|---------|
//! | `0x01` | predict  | `id: opt_u64, tenant: str, a_values: f64s, features: f64s` |
//! | `0x02` | info     | `id: opt_u64` |
//! | `0x03` | feedback | `id: opt_u64, a pf e_avg e_std: f64×4, seed: u64, tag: str, features: f64s` |
//! | `0x04` | refresh  | `id: opt_u64` |
//! | `0x05` | instance | `id: opt_u64, tenant: str, family: str, name: str, dims: u64s, scalars: f64s, vec_count: u32, vec_count × f64s, edge_count: u32, edge_count × (u v: u32×2, w: f64), a_values: f64s` |
//! | `0x06` | metrics  | `id: opt_u64` |
//!
//! `u64s` is a `u32` element count followed by raw `u64`s, the integer
//! sibling of `f64s`. The `instance` payload is the wire form of
//! `problems::InstanceData` — the same compact encoding the registry's
//! family codecs validate, so a hostile payload is rejected by the
//! family layer with a typed error, never a panic.
//!
//! Response ops:
//!
//! | op | name | payload |
//! |----|------|---------|
//! | `0x81` | predict | `id: opt_u64, count: u32, count × (a pf e_avg e_std: f64×4)` |
//! | `0x82` | info    | `id: opt_u64, bundle: u8, feature_dim: u32, generation: u64, online: u8, dataset_len train_instances feedback_count buffer_len refresh_after: opt_u64×5` |
//! | `0x83` | ack     | `id: opt_u64, generation feedback_count buffer_len: opt_u64×3, refreshed: opt_bool` (feedback / refresh) |
//! | `0x84` | metrics | `id: opt_u64, ok: u8, uptime_secs qps: f64×2, latency_p50_us latency_p99_us: opt_f64×2, batch_occupancy cache_hit_rate: f64×2, generation queue_depth rejected rejected_quota rejected_capacity: u64×5, tenant_count: u32, tenant_count × (tenant: str, weight quota_rows requests rows rejected rejected_quota rejected_capacity pending_rows: u64×8)` |
//! | `0x7F` | error   | `id: opt_u64, message: str` |
//!
//! `opt_f64` is a presence byte followed by the raw `f64` bit pattern
//! when present — the binary form of a nullable latency quantile.
//!
//! `tsp` TSPLIB uploads and the `trace` diagnostic dump stay NDJSON-only
//! (one is a text format, the other a debugging aid) — TSP instances
//! travel over QBIN through the `instance` op's compact coordinate/edge
//! encoding instead, and the wall-clock `metrics` snapshot gets its own
//! frame pair (`0x06`/`0x84`; like its NDJSON sibling it is excluded
//! from every byte-diff). A QBIN frame carrying an unknown op gets an
//! error frame back and the session keeps serving, exactly like an
//! unknown NDJSON op.

use problems::InstanceData;
use qross_store::codec::crc32;

/// The 4-byte frame magic — also the token the per-connection sniffer
/// matches to pick QBIN over NDJSON on a shared port.
pub const QBIN_MAGIC: [u8; 4] = *b"QBIN";

/// Protocol version this decoder speaks.
pub const QBIN_VERSION: u8 = 1;

/// Frame header bytes: magic (4) + version (1) + op (1) + length (4).
pub const HEADER_LEN: usize = 10;

/// Trailing CRC-32 bytes.
pub const CRC_LEN: usize = 4;

/// Largest accepted frame payload, mirroring the NDJSON line cap
/// ([`super::MAX_LINE_BYTES`]): a client streaming an absurd declared
/// length gets a typed reject and its payload bytes are *discarded*,
/// never buffered — the reject-never-OOM rule.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Request op tags.
pub const OP_PREDICT: u8 = 0x01;
pub const OP_INFO: u8 = 0x02;
pub const OP_FEEDBACK: u8 = 0x03;
pub const OP_REFRESH: u8 = 0x04;
pub const OP_INSTANCE: u8 = 0x05;
pub const OP_METRICS: u8 = 0x06;

/// Response op tags.
pub const OP_RESP_PREDICT: u8 = 0x81;
pub const OP_RESP_INFO: u8 = 0x82;
pub const OP_RESP_ACK: u8 = 0x83;
pub const OP_RESP_METRICS: u8 = 0x84;
pub const OP_RESP_ERROR: u8 = 0x7F;

/// Typed QBIN protocol error. Decoding hostile, truncated or corrupted
/// frames yields one of these — never a panic, never an allocation
/// proportional to an attacker-declared length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// frame does not start with [`QBIN_MAGIC`] — framing is lost
    BadMagic {
        /// the four bytes found instead
        found: [u8; 4],
    },
    /// version byte this decoder does not speak — later layouts may
    /// differ, so framing cannot be trusted either
    UnsupportedVersion {
        /// the version byte found
        found: u8,
    },
    /// declared payload length exceeds [`MAX_FRAME_BYTES`]; the payload
    /// is skipped without buffering and the session survives
    Oversized {
        /// the cap that was exceeded
        limit: usize,
        /// the declared payload length
        declared: u64,
    },
    /// checksum mismatch — the frame is dropped, the stream resyncs at
    /// the next frame boundary
    CrcMismatch {
        /// CRC-32 carried by the frame
        expected: u32,
        /// CRC-32 of the received bytes
        actual: u32,
    },
    /// the stream ended (or the payload ran out) before a complete value
    Truncated {
        /// bytes needed
        needed: usize,
        /// bytes available
        available: usize,
    },
    /// structurally invalid payload (bad presence tag, non-UTF-8 string,
    /// count that outruns the payload…)
    Malformed {
        /// explanation
        message: String,
    },
    /// op tag this endpoint does not serve
    UnknownOp {
        /// the tag found
        op: u8,
    },
}

impl BinError {
    /// Whether the session can keep decoding after this error. A bad
    /// magic or unknown version means frame boundaries themselves are
    /// untrustworthy; everything else resyncs at the next frame.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            BinError::BadMagic { .. } | BinError::UnsupportedVersion { .. }
        )
    }
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::BadMagic { found } => {
                write!(f, "qbin: bad frame magic {found:02x?}")
            }
            BinError::UnsupportedVersion { found } => {
                write!(f, "qbin: unsupported protocol version {found}")
            }
            BinError::Oversized { limit, declared } => write!(
                f,
                "qbin: frame payload of {declared} bytes exceeds the {limit}-byte limit"
            ),
            BinError::CrcMismatch { expected, actual } => write!(
                f,
                "qbin: frame checksum mismatch (expected {expected:#010x}, got {actual:#010x})"
            ),
            BinError::Truncated { needed, available } => write!(
                f,
                "qbin: truncated frame ({needed} bytes needed, {available} available)"
            ),
            BinError::Malformed { message } => write!(f, "qbin: malformed payload: {message}"),
            BinError::UnknownOp { op } => write!(
                f,
                "qbin: unknown op {op:#04x} (expected predict {OP_PREDICT:#04x} | info \
                 {OP_INFO:#04x} | feedback {OP_FEEDBACK:#04x} | refresh {OP_REFRESH:#04x} | \
                 instance {OP_INSTANCE:#04x} | metrics {OP_METRICS:#04x})"
            ),
        }
    }
}

impl std::error::Error for BinError {}

// ---------------------------------------------------------------------------
// Zero-copy payload primitives
// ---------------------------------------------------------------------------

/// A borrowed view over `8 × len` raw little-endian `f64` bytes inside a
/// frame payload — the zero-copy half of the decode path. Reading is a
/// fixed-offset `u64` load per element (alignment-safe); nothing is
/// allocated until the caller decides it needs ownership
/// ([`F64View::to_vec`], one pass, one allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F64View<'a> {
    bytes: &'a [u8],
}

impl<'a> F64View<'a> {
    /// Wraps raw LE f64 bytes; `bytes.len()` must be a multiple of 8
    /// (the decoder guarantees it).
    fn new(bytes: &'a [u8]) -> Self {
        debug_assert_eq!(bytes.len() % 8, 0);
        F64View { bytes }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The `i`-th element, decoded in place from its bit pattern.
    pub fn get(&self, i: usize) -> Option<f64> {
        let start = i.checked_mul(8)?;
        let chunk = self.bytes.get(start..start + 8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        Some(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// Iterates the elements without allocating.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        self.bytes.chunks_exact(8).map(|chunk| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(chunk);
            f64::from_bits(u64::from_le_bytes(raw))
        })
    }

    /// Materialises the elements — the single copy a request pays, at
    /// the moment it enters the engine's owned queue.
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }
}

/// Bounds-checked cursor over one frame payload, yielding **borrowed**
/// slices — the wire-side sibling of `qross_store`'s `ByteReader`, with
/// `u32` length prefixes (a frame payload is capped at
/// [`MAX_FRAME_BYTES`], so 32 bits always suffice).
struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn get_u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32, BinError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64(&mut self) -> Result<u64, BinError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn get_f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    fn get_opt_u64(&mut self) -> Result<Option<u64>, BinError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            other => Err(BinError::Malformed {
                message: format!("invalid Option tag {other:#04x}"),
            }),
        }
    }

    fn get_opt_f64(&mut self) -> Result<Option<f64>, BinError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_f64()?)),
            other => Err(BinError::Malformed {
                message: format!("invalid Option tag {other:#04x}"),
            }),
        }
    }

    fn get_opt_bool(&mut self) -> Result<Option<bool>, BinError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            other => Err(BinError::Malformed {
                message: format!("invalid bool tag {other:#04x}"),
            }),
        }
    }

    /// A `u32`-count-prefixed element run, validated against the
    /// remaining payload *before* anything is read or allocated.
    fn get_counted(&mut self, elem_size: usize) -> Result<&'a [u8], BinError> {
        let n = self.get_u32()? as usize;
        let bytes = n
            .checked_mul(elem_size)
            .ok_or_else(|| BinError::Malformed {
                message: format!("element count {n} overflows"),
            })?;
        self.take(bytes)
    }

    fn get_str(&mut self) -> Result<&'a str, BinError> {
        let bytes = self.get_counted(1)?;
        std::str::from_utf8(bytes).map_err(|e| BinError::Malformed {
            message: format!("invalid UTF-8 string: {e}"),
        })
    }

    fn get_f64s(&mut self) -> Result<F64View<'a>, BinError> {
        Ok(F64View::new(self.get_counted(8)?))
    }

    /// A `u32`-count-prefixed run of raw `u64`s, materialised (the
    /// `instance` payload's `dims` are a handful of entries, not a hot
    /// path). Validated against the remaining payload before allocating.
    fn get_u64s(&mut self) -> Result<Vec<u64>, BinError> {
        let bytes = self.get_counted(8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|chunk| {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(chunk);
                u64::from_le_bytes(raw)
            })
            .collect())
    }

    /// A `u32`-count-prefixed run of `(u32, u32, f64)` edges, validated
    /// against the remaining payload (16 bytes each) before allocating.
    fn get_edges(&mut self) -> Result<Vec<(u32, u32, f64)>, BinError> {
        let bytes = self.get_counted(16)?;
        Ok(bytes
            .chunks_exact(16)
            .map(|chunk| {
                let u = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                let v = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&chunk[8..16]);
                (u, v, f64::from_bits(u64::from_le_bytes(raw)))
            })
            .collect())
    }

    /// Rejects trailing bytes — same discipline as the store decoders.
    fn finish(&self) -> Result<(), BinError> {
        if self.remaining() != 0 {
            return Err(BinError::Malformed {
                message: format!("{} trailing bytes after payload", self.remaining()),
            });
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
    }
}

fn put_opt_bool(out: &mut Vec<u8>, v: Option<bool>) {
    out.push(match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    put_u32(out, xs.len() as u32);
    for &x in xs {
        put_f64(out, x);
    }
}

// ---------------------------------------------------------------------------
// Frame encode
// ---------------------------------------------------------------------------

/// Appends one complete frame to `out`: header, the payload `build`
/// writes, patched length, trailing CRC. Encoding goes **directly into
/// the caller's buffer** (the per-connection write buffer on the serve
/// path) — no intermediate allocation.
pub fn write_frame(out: &mut Vec<u8>, op: u8, build: impl FnOnce(&mut Vec<u8>)) {
    let start = out.len();
    out.extend_from_slice(&QBIN_MAGIC);
    out.push(QBIN_VERSION);
    out.push(op);
    out.extend_from_slice(&[0u8; 4]); // length, patched below
    let payload_start = out.len();
    build(out);
    let len = (out.len() - payload_start) as u32;
    out[start + 6..start + 10].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(&out[start + 4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Incremental frame decode
// ---------------------------------------------------------------------------

/// One complete, CRC-verified frame, its payload borrowed from the
/// codec's read buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// protocol version (always [`QBIN_VERSION`] once decoded)
    pub version: u8,
    /// op tag
    pub op: u8,
    /// raw payload bytes, zero-copy
    pub payload: &'a [u8],
}

/// Incremental QBIN frame decoder — the binary sibling of the NDJSON
/// line codec. Fed arbitrary byte chunks, yields complete CRC-verified
/// frames as borrowed views; any chunking (1-byte reads, jumbo frames)
/// decodes to the identical frame sequence.
///
/// Oversized declared payloads are *discarded in flight*, never
/// buffered; a fatal error (bad magic / unknown version) freezes the
/// codec — frame boundaries are no longer trustworthy, so the session
/// should answer once and close.
#[derive(Debug)]
pub struct FrameCodec {
    buf: Vec<u8>,
    /// consumed prefix of `buf`, compacted away on the next feed
    pos: usize,
    /// bytes of an oversized frame (payload + CRC) still to skip
    discard: u64,
    /// framing lost: no further frames will be yielded
    fatal: bool,
    limit: usize,
}

impl Default for FrameCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameCodec {
    pub fn new() -> Self {
        Self::with_limit(MAX_FRAME_BYTES)
    }

    /// A codec with a custom payload cap (tests; production uses
    /// [`MAX_FRAME_BYTES`]).
    pub fn with_limit(limit: usize) -> Self {
        FrameCodec {
            buf: Vec::new(),
            pos: 0,
            discard: 0,
            fatal: false,
            limit: limit.max(1),
        }
    }

    /// Whether a fatal framing error has been reported.
    pub fn is_fatal(&self) -> bool {
        self.fatal
    }

    /// Appends a chunk of wire bytes. Any split boundary is fine.
    pub fn feed(&mut self, mut bytes: &[u8]) {
        if self.fatal {
            return; // the stream is dead; don't buffer what we'll never parse
        }
        if self.discard > 0 {
            // Skip an oversized frame's payload without buffering it.
            let skip = (self.discard).min(bytes.len() as u64) as usize;
            self.discard -= skip as u64;
            bytes = &bytes[skip..];
        }
        // Compact the consumed prefix before growing the buffer; no
        // borrows are outstanding (feed takes &mut self).
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (bounded by the frame cap plus one read
    /// chunk).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The next complete frame (or frame-level error), or `None` when
    /// more bytes are needed. The returned payload borrows this codec's
    /// buffer and stays valid until the next `feed`.
    #[allow(clippy::type_complexity)]
    pub fn next_frame(&mut self) -> Option<Result<Frame<'_>, BinError>> {
        if self.fatal || self.discard > 0 {
            return None;
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return None;
        }
        if avail[..4] != QBIN_MAGIC {
            self.fatal = true;
            let mut found = [0u8; 4];
            found.copy_from_slice(&avail[..4]);
            return Some(Err(BinError::BadMagic { found }));
        }
        let version = avail[4];
        if version != QBIN_VERSION {
            self.fatal = true;
            return Some(Err(BinError::UnsupportedVersion { found: version }));
        }
        let op = avail[5];
        let len = u32::from_le_bytes([avail[6], avail[7], avail[8], avail[9]]) as usize;
        if len > self.limit {
            // Reject without buffering: drop what we have of the payload
            // and arrange for the rest (plus the CRC) to be skipped as
            // it arrives.
            let total_to_skip = len as u64 + CRC_LEN as u64;
            let already = (avail.len() - HEADER_LEN) as u64;
            let dropped = already.min(total_to_skip);
            self.discard = total_to_skip - dropped;
            self.pos += HEADER_LEN + dropped as usize;
            return Some(Err(BinError::Oversized {
                limit: self.limit,
                declared: len as u64,
            }));
        }
        let frame_len = HEADER_LEN + len + CRC_LEN;
        if avail.len() < frame_len {
            return None;
        }
        let crc_off = HEADER_LEN + len;
        let expected = u32::from_le_bytes([
            avail[crc_off],
            avail[crc_off + 1],
            avail[crc_off + 2],
            avail[crc_off + 3],
        ]);
        let actual = crc32(&avail[4..crc_off]);
        let start = self.pos;
        self.pos += frame_len;
        if expected != actual {
            // The declared length is still the best resync boundary.
            return Some(Err(BinError::CrcMismatch { expected, actual }));
        }
        Some(Ok(Frame {
            version,
            op,
            payload: &self.buf[start + HEADER_LEN..start + crc_off],
        }))
    }

    /// EOF: a partial frame (or an unfinished oversized skip) left in
    /// the buffer is a truncation error; clean streams yield `None`.
    pub fn finish(&mut self) -> Option<BinError> {
        if self.fatal {
            return None;
        }
        let leftover = self.buffered();
        self.buf.clear();
        self.pos = 0;
        if self.discard > 0 {
            self.discard = 0;
            return Some(BinError::Truncated {
                needed: CRC_LEN,
                available: 0,
            });
        }
        if leftover > 0 {
            return Some(BinError::Truncated {
                needed: HEADER_LEN,
                available: leftover,
            });
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A decoded request frame — the borrowed, zero-copy view the serving
/// path dispatches on. Feature and grid slices point into the
/// connection's read buffer; the single copy into owned memory happens
/// at engine submit.
#[derive(Debug, Clone, PartialEq)]
pub enum BinRequest<'a> {
    /// evaluate the surrogate at `features` for each of `a_values`
    Predict {
        /// client correlation id, echoed
        id: Option<u64>,
        /// tenant the work is accounted to; empty = default
        tenant: &'a str,
        /// relaxation-parameter grid
        a_values: F64View<'a>,
        /// feature vector
        features: F64View<'a>,
    },
    /// model metadata
    Info {
        /// client correlation id, echoed
        id: Option<u64>,
    },
    /// report an observed solver outcome (online engines)
    Feedback {
        /// client correlation id, echoed
        id: Option<u64>,
        /// relaxation parameter the outcome was measured at
        a: f64,
        /// observed probability of feasibility
        pf: f64,
        /// observed batch mean energy
        e_avg: f64,
        /// observed batch energy standard deviation
        e_std: f64,
        /// solver-run seed, lineage only
        seed: u64,
        /// instance label, lineage only
        tag: &'a str,
        /// feature vector
        features: F64View<'a>,
    },
    /// force a retrain/hot-swap now
    Refresh {
        /// client correlation id, echoed
        id: Option<u64>,
    },
    /// point-in-time engine metrics snapshot (wall-clock-dependent;
    /// answered with an [`OP_RESP_METRICS`] frame, never byte-diffed)
    Metrics {
        /// client correlation id, echoed
        id: Option<u64>,
    },
    /// upload a compact instance of a registered problem family and
    /// evaluate the surrogate on its features over `a_values`
    Instance {
        /// client correlation id, echoed
        id: Option<u64>,
        /// tenant the work is accounted to; empty = default
        tenant: &'a str,
        /// problem-family registry name
        family: &'a str,
        /// decoded instance payload, validated by the family's codec at
        /// dispatch
        data: InstanceData,
        /// relaxation-parameter grid
        a_values: F64View<'a>,
    },
}

/// Decodes one request frame's payload.
///
/// # Errors
///
/// [`BinError::UnknownOp`] for tags this endpoint does not serve,
/// [`BinError::Truncated`] / [`BinError::Malformed`] for payloads that
/// do not match their op's grammar.
pub fn decode_request<'a>(frame: &Frame<'a>) -> Result<BinRequest<'a>, BinError> {
    let mut r = PayloadReader::new(frame.payload);
    let request = match frame.op {
        OP_PREDICT => {
            let id = r.get_opt_u64()?;
            let tenant = r.get_str()?;
            let a_values = r.get_f64s()?;
            let features = r.get_f64s()?;
            BinRequest::Predict {
                id,
                tenant,
                a_values,
                features,
            }
        }
        OP_INFO => BinRequest::Info {
            id: r.get_opt_u64()?,
        },
        OP_FEEDBACK => {
            let id = r.get_opt_u64()?;
            let a = r.get_f64()?;
            let pf = r.get_f64()?;
            let e_avg = r.get_f64()?;
            let e_std = r.get_f64()?;
            let seed = r.get_u64()?;
            let tag = r.get_str()?;
            let features = r.get_f64s()?;
            BinRequest::Feedback {
                id,
                a,
                pf,
                e_avg,
                e_std,
                seed,
                tag,
                features,
            }
        }
        OP_REFRESH => BinRequest::Refresh {
            id: r.get_opt_u64()?,
        },
        OP_METRICS => BinRequest::Metrics {
            id: r.get_opt_u64()?,
        },
        OP_INSTANCE => {
            let id = r.get_opt_u64()?;
            let tenant = r.get_str()?;
            let family = r.get_str()?;
            let name = r.get_str()?.to_string();
            let dims = r.get_u64s()?;
            let scalars = r.get_f64s()?.to_vec();
            let vec_count = r.get_u32()? as usize;
            // Each vec needs at least its 4-byte count, so a hostile
            // count fails on Truncated before `vecs` grows past the
            // payload size.
            let mut vecs = Vec::new();
            for _ in 0..vec_count {
                vecs.push(r.get_f64s()?.to_vec());
            }
            let edges = r.get_edges()?;
            let a_values = r.get_f64s()?;
            BinRequest::Instance {
                id,
                tenant,
                family,
                data: InstanceData {
                    name,
                    dims,
                    scalars,
                    vecs,
                    edges,
                },
                a_values,
            }
        }
        op => return Err(BinError::UnknownOp { op }),
    };
    r.finish()?;
    Ok(request)
}

/// Encodes a predict request frame (client side; the server never sends
/// requests). `a_values` and `features` travel as raw bit patterns.
pub fn encode_predict(
    out: &mut Vec<u8>,
    id: Option<u64>,
    tenant: &str,
    a_values: &[f64],
    features: &[f64],
) {
    write_frame(out, OP_PREDICT, |p| {
        put_opt_u64(p, id);
        put_str(p, tenant);
        put_f64s(p, a_values);
        put_f64s(p, features);
    });
}

/// Encodes an info request frame.
pub fn encode_info(out: &mut Vec<u8>, id: Option<u64>) {
    write_frame(out, OP_INFO, |p| put_opt_u64(p, id));
}

/// Encodes a feedback request frame.
#[allow(clippy::too_many_arguments)]
pub fn encode_feedback(
    out: &mut Vec<u8>,
    id: Option<u64>,
    a: f64,
    pf: f64,
    e_avg: f64,
    e_std: f64,
    seed: u64,
    tag: &str,
    features: &[f64],
) {
    write_frame(out, OP_FEEDBACK, |p| {
        put_opt_u64(p, id);
        put_f64(p, a);
        put_f64(p, pf);
        put_f64(p, e_avg);
        put_f64(p, e_std);
        put_u64(p, seed);
        put_str(p, tag);
        put_f64s(p, features);
    });
}

/// Encodes a refresh request frame.
pub fn encode_refresh(out: &mut Vec<u8>, id: Option<u64>) {
    write_frame(out, OP_REFRESH, |p| put_opt_u64(p, id));
}

/// Encodes a metrics request frame.
pub fn encode_metrics_request(out: &mut Vec<u8>, id: Option<u64>) {
    write_frame(out, OP_METRICS, |p| put_opt_u64(p, id));
}

/// Encodes an instance request frame: the compact wire form of
/// [`InstanceData`] plus the grid to evaluate. Every `f64` travels as
/// its exact bit pattern, so a QBIN upload and the NDJSON `instance` op
/// for the same payload reach the family codec with identical bits.
pub fn encode_instance(
    out: &mut Vec<u8>,
    id: Option<u64>,
    tenant: &str,
    family: &str,
    data: &InstanceData,
    a_values: &[f64],
) {
    write_frame(out, OP_INSTANCE, |p| {
        put_opt_u64(p, id);
        put_str(p, tenant);
        put_str(p, family);
        put_str(p, &data.name);
        put_u32(p, data.dims.len() as u32);
        for &d in &data.dims {
            put_u64(p, d);
        }
        put_f64s(p, &data.scalars);
        put_u32(p, data.vecs.len() as u32);
        for vec in &data.vecs {
            put_f64s(p, vec);
        }
        put_u32(p, data.edges.len() as u32);
        for &(u, v, w) in &data.edges {
            put_u32(p, u);
            put_u32(p, v);
            put_f64(p, w);
        }
        put_f64s(p, a_values);
    });
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

use super::{MetricsOut, MetricsResponse, ModelInfo, PredictionOut, Response, TenantMetricsOut};

/// Encodes a [`Response`] as one QBIN frame appended to `out` — the
/// binary rendition of the NDJSON response line, carrying the identical
/// f64 bit patterns. Frame choice: errors (`ok: false`) become error
/// frames; otherwise predictions, info and feedback/refresh acks each
/// get their op. (The NDJSON-only response decorations — the instance
/// name echo and `tsp` strategy proposals — are dropped here by design;
/// the compact wire carries ids, predictions, info and errors.)
pub fn encode_response(out: &mut Vec<u8>, response: &Response) {
    if !response.ok {
        let message = response.error.as_deref().unwrap_or("request failed");
        write_frame(out, OP_RESP_ERROR, |p| {
            put_opt_u64(p, response.id);
            put_str(p, message);
        });
        return;
    }
    if let Some(predictions) = &response.predictions {
        write_frame(out, OP_RESP_PREDICT, |p| {
            put_opt_u64(p, response.id);
            put_u32(p, predictions.len() as u32);
            for row in predictions {
                put_f64(p, row.a);
                put_u64(p, row.pf_bits);
                put_u64(p, row.e_avg_bits);
                put_u64(p, row.e_std_bits);
            }
        });
        return;
    }
    if let Some(info) = &response.info {
        write_frame(out, OP_RESP_INFO, |p| {
            put_opt_u64(p, response.id);
            p.push(u8::from(info.kind == "bundle"));
            put_u32(p, info.feature_dim as u32);
            put_u64(p, info.generation);
            p.push(u8::from(info.online));
            put_opt_u64(p, info.dataset_len);
            put_opt_u64(p, info.train_instances);
            put_opt_u64(p, info.feedback_count);
            put_opt_u64(p, info.buffer_len);
            put_opt_u64(p, info.refresh_after);
        });
        return;
    }
    write_frame(out, OP_RESP_ACK, |p| {
        put_opt_u64(p, response.id);
        put_opt_u64(p, response.generation);
        put_opt_u64(p, response.feedback_count);
        put_opt_u64(p, response.buffer_len);
        put_opt_bool(p, response.refreshed);
    });
}

/// Encodes a [`MetricsResponse`] as one [`OP_RESP_METRICS`] frame — the
/// binary rendition of the NDJSON `metrics` line. Like that line it is
/// wall-clock-dependent and excluded from every byte-diff; the f64
/// fields travel as exact bit patterns regardless.
pub fn encode_metrics_response(out: &mut Vec<u8>, payload: &MetricsResponse) {
    let m = &payload.metrics;
    write_frame(out, OP_RESP_METRICS, |p| {
        put_opt_u64(p, payload.id);
        p.push(u8::from(payload.ok));
        put_f64(p, m.uptime_secs);
        put_f64(p, m.qps);
        put_opt_f64(p, m.latency_p50_us);
        put_opt_f64(p, m.latency_p99_us);
        put_f64(p, m.batch_occupancy);
        put_f64(p, m.cache_hit_rate);
        put_u64(p, m.generation);
        put_u64(p, m.queue_depth);
        put_u64(p, m.rejected);
        put_u64(p, m.rejected_quota);
        put_u64(p, m.rejected_capacity);
        put_u32(p, m.tenants.len() as u32);
        for t in &m.tenants {
            put_str(p, &t.tenant);
            put_u64(p, t.weight);
            put_u64(p, t.quota_rows);
            put_u64(p, t.requests);
            put_u64(p, t.rows);
            put_u64(p, t.rejected);
            put_u64(p, t.rejected_quota);
            put_u64(p, t.rejected_capacity);
            put_u64(p, t.pending_rows);
        }
    });
}

/// Decodes one [`OP_RESP_METRICS`] frame into the NDJSON-equivalent
/// [`MetricsResponse`] (client side: tests, the CI scrape check).
///
/// # Errors
///
/// [`BinError::UnknownOp`] for any other op tag,
/// [`BinError::Truncated`] / [`BinError::Malformed`] for payloads that
/// do not match the metrics grammar.
pub fn decode_metrics_response(frame: &Frame<'_>) -> Result<MetricsResponse, BinError> {
    if frame.op != OP_RESP_METRICS {
        return Err(BinError::UnknownOp { op: frame.op });
    }
    let mut r = PayloadReader::new(frame.payload);
    let id = r.get_opt_u64()?;
    let ok = r.get_u8()? != 0;
    let uptime_secs = r.get_f64()?;
    let qps = r.get_f64()?;
    let latency_p50_us = r.get_opt_f64()?;
    let latency_p99_us = r.get_opt_f64()?;
    let batch_occupancy = r.get_f64()?;
    let cache_hit_rate = r.get_f64()?;
    let generation = r.get_u64()?;
    let queue_depth = r.get_u64()?;
    let rejected = r.get_u64()?;
    let rejected_quota = r.get_u64()?;
    let rejected_capacity = r.get_u64()?;
    let count = r.get_u32()? as usize;
    // Each tenant row needs at least its 4-byte name count plus eight
    // u64s; validate before allocating.
    if count.saturating_mul(4 + 8 * 8) > r.remaining() {
        return Err(BinError::Truncated {
            needed: count.saturating_mul(4 + 8 * 8),
            available: r.remaining(),
        });
    }
    let mut tenants = Vec::with_capacity(count);
    for _ in 0..count {
        let tenant = r.get_str()?.to_string();
        tenants.push(TenantMetricsOut {
            tenant,
            weight: r.get_u64()?,
            quota_rows: r.get_u64()?,
            requests: r.get_u64()?,
            rows: r.get_u64()?,
            rejected: r.get_u64()?,
            rejected_quota: r.get_u64()?,
            rejected_capacity: r.get_u64()?,
            pending_rows: r.get_u64()?,
        });
    }
    r.finish()?;
    Ok(MetricsResponse {
        id,
        ok,
        metrics: MetricsOut {
            uptime_secs,
            qps,
            latency_p50_us,
            latency_p99_us,
            batch_occupancy,
            cache_hit_rate,
            generation,
            queue_depth,
            rejected,
            rejected_quota,
            rejected_capacity,
            tenants,
        },
    })
}

/// Decodes one response frame's payload into the NDJSON-equivalent
/// [`Response`] (client side: tests, benches, the dual-protocol CI
/// replay). Predictions rebuild both the decimal fields and the `_bits`
/// mirrors from the wire bit patterns, so comparing against a parsed
/// NDJSON response compares exact bits.
///
/// # Errors
///
/// [`BinError::UnknownOp`] / [`BinError::Truncated`] /
/// [`BinError::Malformed`] as for requests.
pub fn decode_response(frame: &Frame<'_>) -> Result<Response, BinError> {
    let mut r = PayloadReader::new(frame.payload);
    let response = match frame.op {
        OP_RESP_ERROR => {
            let id = r.get_opt_u64()?;
            let message = r.get_str()?.to_string();
            Response {
                id,
                ok: false,
                error: Some(message),
                ..Default::default()
            }
        }
        OP_RESP_PREDICT => {
            let id = r.get_opt_u64()?;
            let count = r.get_u32()? as usize;
            // 4 f64s per row; validate before allocating.
            if count.saturating_mul(32) > r.remaining() {
                return Err(BinError::Truncated {
                    needed: count.saturating_mul(32),
                    available: r.remaining(),
                });
            }
            let mut predictions = Vec::with_capacity(count);
            for _ in 0..count {
                let a = r.get_f64()?;
                let pf_bits = r.get_u64()?;
                let e_avg_bits = r.get_u64()?;
                let e_std_bits = r.get_u64()?;
                predictions.push(PredictionOut {
                    a,
                    pf: f64::from_bits(pf_bits),
                    e_avg: f64::from_bits(e_avg_bits),
                    e_std: f64::from_bits(e_std_bits),
                    pf_bits,
                    e_avg_bits,
                    e_std_bits,
                });
            }
            Response {
                id,
                ok: true,
                predictions: Some(predictions),
                ..Default::default()
            }
        }
        OP_RESP_INFO => {
            let id = r.get_opt_u64()?;
            let bundle = r.get_u8()?;
            let feature_dim = r.get_u32()? as usize;
            let generation = r.get_u64()?;
            let online = r.get_u8()?;
            let dataset_len = r.get_opt_u64()?;
            let train_instances = r.get_opt_u64()?;
            let feedback_count = r.get_opt_u64()?;
            let buffer_len = r.get_opt_u64()?;
            let refresh_after = r.get_opt_u64()?;
            Response {
                id,
                ok: true,
                info: Some(ModelInfo {
                    kind: if bundle != 0 { "bundle" } else { "surrogate" }.to_string(),
                    feature_dim,
                    dataset_len,
                    train_instances,
                    generation,
                    online: online != 0,
                    feedback_count,
                    buffer_len,
                    refresh_after,
                }),
                ..Default::default()
            }
        }
        OP_RESP_ACK => {
            let id = r.get_opt_u64()?;
            let generation = r.get_opt_u64()?;
            let feedback_count = r.get_opt_u64()?;
            let buffer_len = r.get_opt_u64()?;
            let refreshed = r.get_opt_bool()?;
            Response {
                id,
                ok: true,
                generation,
                feedback_count,
                buffer_len,
                refreshed,
                ..Default::default()
            }
        }
        op => return Err(BinError::UnknownOp { op }),
    };
    r.finish()?;
    Ok(response)
}

/// Decodes a buffer of complete response frames (client-side helper for
/// tests and the CI replay): every frame must decode cleanly.
///
/// # Errors
///
/// The first frame-level or payload-level error encountered.
pub fn decode_response_stream(bytes: &[u8]) -> Result<Vec<Response>, BinError> {
    let mut codec = FrameCodec::new();
    codec.feed(bytes);
    let mut responses = Vec::new();
    while let Some(item) = codec.next_frame() {
        let frame = item?;
        responses.push(decode_response(&frame)?);
    }
    if let Some(err) = codec.finish() {
        return Err(err);
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_frame(bytes: &[u8]) -> Result<(u8, Vec<u8>), BinError> {
        let mut codec = FrameCodec::new();
        codec.feed(bytes);
        let frame = codec.next_frame().expect("one frame")?;
        Ok((frame.op, frame.payload.to_vec()))
    }

    #[test]
    fn predict_request_roundtrip_is_bit_exact() {
        let features = [1.5, -0.0, f64::from_bits(0x7FF8_0000_DEAD_BEEF)];
        let a_values = [0.25, f64::INFINITY];
        let mut out = Vec::new();
        encode_predict(&mut out, Some(7), "team-a", &a_values, &features);
        let mut codec = FrameCodec::new();
        codec.feed(&out);
        let frame = codec.next_frame().expect("frame").expect("valid");
        let BinRequest::Predict {
            id,
            tenant,
            a_values: av,
            features: fv,
        } = decode_request(&frame).expect("decodes")
        else {
            panic!("wrong op");
        };
        assert_eq!(id, Some(7));
        assert_eq!(tenant, "team-a");
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&av.to_vec()), bits(&a_values));
        assert_eq!(bits(&fv.to_vec()), bits(&features));
        assert!(codec.next_frame().is_none());
        assert!(codec.finish().is_none());
    }

    #[test]
    fn instance_request_roundtrip_is_bit_exact() {
        let data = InstanceData {
            name: "kp9".to_string(),
            dims: vec![3],
            scalars: vec![7.0],
            vecs: vec![vec![6.0, 10.0, 12.0], vec![1.0, 2.0, 3.0]],
            edges: vec![(0, 1, 1.5), (1, 2, -0.0)],
        };
        let mut out = Vec::new();
        encode_instance(&mut out, Some(11), "team-b", "knapsack", &data, &[0.5, 2.0]);
        let mut codec = FrameCodec::new();
        codec.feed(&out);
        let frame = codec.next_frame().expect("frame").expect("valid");
        let BinRequest::Instance {
            id,
            tenant,
            family,
            data: decoded,
            a_values,
        } = decode_request(&frame).expect("decodes")
        else {
            panic!("wrong op");
        };
        assert_eq!(id, Some(11));
        assert_eq!(tenant, "team-b");
        assert_eq!(family, "knapsack");
        assert_eq!(decoded, data);
        // -0.0 == 0.0 under PartialEq; check the edge weight bits too.
        assert_eq!(decoded.edges[1].2.to_bits(), (-0.0f64).to_bits());
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a_values.to_vec()), bits(&[0.5, 2.0]));
    }

    #[test]
    fn instance_request_hostile_counts_reject_without_alloc() {
        // An outer vec_count far beyond the payload must fail Truncated,
        // not allocate.
        let mut out = Vec::new();
        write_frame(&mut out, OP_INSTANCE, |p| {
            put_opt_u64(p, None);
            put_str(p, "");
            put_str(p, "mvc");
            put_str(p, "g");
            put_u32(p, 0); // dims
            put_f64s(p, &[]); // scalars
            put_u32(p, u32::MAX); // hostile vec count
        });
        let mut codec = FrameCodec::new();
        codec.feed(&out);
        let frame = codec.next_frame().expect("frame").expect("CRC valid");
        assert!(matches!(
            decode_request(&frame),
            Err(BinError::Truncated { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut out = Vec::new();
        encode_predict(&mut out, Some(1), "", &[1.0], &[2.0, 3.0]);
        for byte in 0..out.len() {
            for bit in 0..8 {
                let mut corrupted = out.clone();
                corrupted[byte] ^= 1 << bit;
                let mut codec = FrameCodec::new();
                codec.feed(&corrupted);
                let mut saw_error = false;
                while let Some(item) = codec.next_frame() {
                    match item {
                        Ok(frame) => {
                            // A length flip can only shrink/grow the
                            // frame; the CRC over the header catches it,
                            // so a clean frame here is a test failure.
                            panic!("bit flip at {byte}:{bit} yielded a frame {frame:?}");
                        }
                        Err(_) => saw_error = true,
                    }
                }
                if codec.finish().is_some() {
                    saw_error = true;
                }
                assert!(saw_error, "bit flip at {byte}:{bit} went undetected");
            }
        }
    }

    #[test]
    fn oversized_frame_is_discarded_and_session_survives() {
        let mut codec = FrameCodec::with_limit(64);
        // Header declaring a 1000-byte payload, streamed in pieces.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&QBIN_MAGIC);
        bytes.push(QBIN_VERSION);
        bytes.push(OP_PREDICT);
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        codec.feed(&bytes);
        match codec.next_frame() {
            Some(Err(BinError::Oversized { limit: 64, .. })) => {}
            other => panic!("expected oversized reject, got {other:?}"),
        }
        // 1000 payload bytes + 4 CRC bytes arrive and are discarded…
        let junk = vec![0xABu8; 1004];
        codec.feed(&junk);
        assert_eq!(codec.buffered(), 0, "oversized payload must not buffer");
        // …and the next well-formed frame still decodes.
        let mut next = Vec::new();
        encode_info(&mut next, Some(9));
        codec.feed(&next);
        let frame = codec.next_frame().expect("frame").expect("valid");
        assert!(matches!(
            decode_request(&frame),
            Ok(BinRequest::Info { id: Some(9) })
        ));
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut codec = FrameCodec::new();
        codec.feed(b"NOPE\x01\x01\x00\x00\x00\x00");
        assert!(matches!(
            codec.next_frame(),
            Some(Err(BinError::BadMagic { .. }))
        ));
        assert!(codec.is_fatal());
        assert!(codec.next_frame().is_none());
        let mut more = Vec::new();
        encode_info(&mut more, None);
        codec.feed(&more);
        assert!(codec.next_frame().is_none(), "fatal codec yields nothing");
    }

    #[test]
    fn unknown_op_is_typed_not_fatal() {
        let mut out = Vec::new();
        write_frame(&mut out, 0x42, |p| put_opt_u64(p, None));
        let (op, payload) = single_frame(&out).expect("frame itself is well-formed");
        let frame = Frame {
            version: QBIN_VERSION,
            op,
            payload: &payload,
        };
        assert!(matches!(
            decode_request(&frame),
            Err(BinError::UnknownOp { op: 0x42 })
        ));
    }

    #[test]
    fn response_error_frame_roundtrips() {
        let response = Response::err(Some(3), "predict needs `features`");
        let mut out = Vec::new();
        encode_response(&mut out, &response);
        let decoded = decode_response_stream(&out).expect("decodes");
        assert_eq!(decoded.len(), 1);
        assert!(!decoded[0].ok);
        assert_eq!(decoded[0].id, Some(3));
        assert_eq!(
            decoded[0].error.as_deref(),
            Some("predict needs `features`")
        );
    }

    #[test]
    fn metrics_response_roundtrip_is_bit_exact() {
        let payload = MetricsResponse {
            id: Some(42),
            ok: true,
            metrics: MetricsOut {
                uptime_secs: 12.25,
                qps: f64::from_bits(0x3FF8_0000_0000_0001),
                latency_p50_us: Some(810.5),
                latency_p99_us: None,
                batch_occupancy: 3.5,
                cache_hit_rate: 0.25,
                generation: 7,
                queue_depth: 9,
                rejected: 5,
                rejected_quota: 2,
                rejected_capacity: 3,
                tenants: vec![TenantMetricsOut {
                    tenant: "team-a".to_string(),
                    weight: 4,
                    quota_rows: 128,
                    requests: 1000,
                    rows: 5000,
                    rejected: 5,
                    rejected_quota: 2,
                    rejected_capacity: 3,
                    pending_rows: 17,
                }],
            },
        };
        let mut out = Vec::new();
        encode_metrics_response(&mut out, &payload);
        let mut codec = FrameCodec::new();
        codec.feed(&out);
        let frame = codec.next_frame().expect("frame").expect("valid");
        assert_eq!(frame.op, OP_RESP_METRICS);
        let decoded = decode_metrics_response(&frame).expect("decodes");
        assert_eq!(decoded, payload);
        assert_eq!(
            decoded.metrics.qps.to_bits(),
            payload.metrics.qps.to_bits(),
            "f64 fields travel as exact bit patterns"
        );
    }

    #[test]
    fn metrics_request_roundtrips_and_hostile_tenant_count_rejects() {
        let mut out = Vec::new();
        encode_metrics_request(&mut out, Some(3));
        let mut codec = FrameCodec::new();
        codec.feed(&out);
        let frame = codec.next_frame().expect("frame").expect("valid");
        assert!(matches!(
            decode_request(&frame),
            Ok(BinRequest::Metrics { id: Some(3) })
        ));
        // A hostile tenant count far beyond the payload must fail
        // Truncated before allocating.
        let mut bad = Vec::new();
        write_frame(&mut bad, OP_RESP_METRICS, |p| {
            put_opt_u64(p, None);
            p.push(1);
            for _ in 0..4 {
                put_f64(p, 0.0);
            }
            p.push(0); // p50 absent
            p.push(0); // p99 absent
            for _ in 0..5 {
                put_u64(p, 0);
            }
            put_u32(p, u32::MAX); // hostile tenant count
        });
        let mut codec = FrameCodec::new();
        codec.feed(&bad);
        let frame = codec.next_frame().expect("frame").expect("CRC valid");
        assert!(matches!(
            decode_metrics_response(&frame),
            Err(BinError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut out = Vec::new();
        write_frame(&mut out, OP_INFO, |p| {
            put_opt_u64(p, None);
            p.push(0xEE); // trailing garbage inside a valid frame
        });
        let mut codec = FrameCodec::new();
        codec.feed(&out);
        let frame = codec.next_frame().expect("frame").expect("CRC is valid");
        assert!(matches!(
            decode_request(&frame),
            Err(BinError::Malformed { .. })
        ));
    }
}
