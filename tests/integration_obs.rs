//! Integration tests for the observability layer: a mid-run Prometheus
//! scrape over the `--metrics-listen` HTTP endpoint must return a valid
//! text exposition carrying the per-stage latency histograms,
//! per-solver sweep counters, and online-trainer metrics; the `metrics`
//! op must answer equivalently on both wires (QBIN op 0x06); the
//! `trace` op must dump the slowest-request ring with a per-stage
//! breakdown; and per-tenant rejections must split into typed
//! quota/capacity counters without disturbing the legacy total.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bench::net::{serve_event_loop, serve_metrics_http, EventLoopConfig};
use bench::protocol::{bin, MetricsResponse, Response, TraceResponse};
use qross_repro::mathkit::stats::ZScore;
use qross_repro::neural::network::MlpBuilder;
use qross_repro::qross::dataset::Scalers;
use qross_repro::qross::serve::{ServeConfig, ServeEngine, ServeModel, TenantClass, TenantPolicy};
use qross_repro::qross::surrogate::{Surrogate, SurrogateState};
use qross_repro::qubo::QuboBuilder;
use qross_repro::solvers::{self, Solver};

const FEAT_DIM: usize = 24;

/// Seed-built surrogate model (no training time, real serve paths).
fn test_model() -> ServeModel {
    let zscore = |m: f64, s: f64| ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(1)
            .sigmoid()
            .build(41)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(2)
            .build(42)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM)
                .map(|c| zscore(0.2 * c as f64, 1.0 + 0.05 * c as f64))
                .collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(8.0, 3.0),
            e_std: zscore(1.0, 0.4),
        },
    };
    let surrogate = Surrogate::from_state(state).expect("consistent state");
    ServeModel::Surrogate(Arc::new(surrogate))
}

fn predict_line(id: u64, k: usize, tenant: Option<&str>) -> String {
    let features: Vec<String> = (0..FEAT_DIM)
        .map(|c| format!("{:.6}", ((k * 13 + c * 7) % 29) as f64 / 7.0 - 2.0))
        .collect();
    let features = format!("[{}]", features.join(", "));
    let a = 0.1 + (k % 11) as f64 * 0.45;
    match tenant {
        Some(t) => format!(
            "{{\"id\": {id}, \"op\": \"predict\", \"tenant\": \"{t}\", \
             \"features\": {features}, \"a\": {a}}}\n"
        ),
        None => {
            format!("{{\"id\": {id}, \"op\": \"predict\", \"features\": {features}, \"a\": {a}}}\n")
        }
    }
}

/// Event loop + metrics endpoint on ephemeral ports; the loop joins on
/// drop (the metrics thread parks in `accept` and dies with the test
/// process — `serve_metrics_http` deliberately has no shutdown path).
struct ObsHarness {
    addr: std::net::SocketAddr,
    metrics_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ObsHarness {
    fn start(engine: ServeEngine) -> ObsHarness {
        let engine = Arc::new(engine);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let config = EventLoopConfig {
            shutdown: Some(Arc::clone(&shutdown)),
            ..Default::default()
        };
        let thread = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || serve_event_loop(&engine, listener, config))
        };
        let metrics_listener = std::net::TcpListener::bind("127.0.0.1:0").expect("metrics bind");
        let metrics_addr = metrics_listener.local_addr().expect("metrics addr");
        {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || serve_metrics_http(&engine, metrics_listener));
        }
        ObsHarness {
            addr,
            metrics_addr,
            shutdown,
            thread: Some(thread),
        }
    }

    /// One NDJSON session over TCP: write, half-close, read all lines.
    fn session(&self, requests: &str) -> Vec<String> {
        let mut stream = TcpStream::connect(self.addr).expect("connect");
        stream.write_all(requests.as_bytes()).expect("send");
        stream.shutdown(Shutdown::Write).expect("half-close");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out.lines().map(str::to_string).collect()
    }

    /// One `GET /metrics` scrape; returns the exposition body.
    fn scrape(&self) -> String {
        let mut stream = TcpStream::connect(self.metrics_addr).expect("metrics connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
            .expect("send scrape");
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).expect("status line");
        assert!(
            status.starts_with("HTTP/1.1 200 OK"),
            "scrape status: {status}"
        );
        let mut content_type = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            if line.trim().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-type:") {
                content_type = v.trim().to_string();
            }
        }
        assert_eq!(
            content_type, "text/plain; version=0.0.4",
            "exposition content type"
        );
        let mut body = String::new();
        reader.read_to_string(&mut body).expect("body");
        body
    }
}

impl Drop for ObsHarness {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.join().expect("loop thread").expect("loop result");
        }
    }
}

/// Structural exposition check plus a sample extractor: every line must
/// be a comment (`# HELP` / `# TYPE`) or `name[{labels}] value`, HELP
/// and TYPE must precede each family's samples, and values must parse.
fn parse_exposition(body: &str) -> std::collections::HashMap<String, f64> {
    let mut samples = std::collections::HashMap::new();
    let mut described: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let family = parts.next().unwrap_or_default();
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "unknown comment keyword: {line}"
            );
            assert!(!family.is_empty(), "comment without a family: {line}");
            described.insert(family);
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value: {line}"));
        let family = series.split(['{', ' ']).next().expect("series name");
        let family = family
            .strip_suffix("_bucket")
            .or_else(|| family.strip_suffix("_sum"))
            .or_else(|| family.strip_suffix("_count"))
            .unwrap_or(family);
        assert!(
            described.contains(family),
            "sample before its HELP/TYPE: {line}"
        );
        samples.insert(series.to_string(), value);
    }
    samples
}

#[test]
fn mid_run_scrape_is_valid_exposition_with_stage_solver_and_online_series() {
    let harness = ObsHarness::start(ServeEngine::new(test_model(), ServeConfig::default()));
    // Eager registration, as qross-serve performs at startup.
    bench::protocol::register_protocol_metrics();
    solvers::metrics::register_metrics();

    // Mid-run: traffic on the wire, a solver sweep in progress-ish.
    let requests: String = (0..8u64)
        .map(|id| predict_line(id, id as usize, None))
        .collect();
    let lines = harness.session(&requests);
    assert_eq!(lines.len(), 8, "every predict answered");
    let mut b = QuboBuilder::new(6);
    for i in 0..6 {
        b.add_linear(i, if i % 2 == 0 { -1.0 } else { 0.5 });
    }
    let model = b.build();
    let sa_set = solvers::SimulatedAnnealer::default().sample(&model, 4, 7);
    let tabu_set = solvers::TabuSearch::default().sample(&model, 2, 9);

    let body = harness.scrape();
    let samples = parse_exposition(&body);

    // Per-stage latency histograms from the serve pipeline.
    for stage in ["decode", "queue", "batch", "forward", "cache", "encode"] {
        let count = format!("qross_serve_stage_ns_count{{stage=\"{stage}\"}}");
        assert!(
            samples.contains_key(&count),
            "missing stage histogram {stage} in:\n{body}"
        );
    }
    assert!(samples[&"qross_serve_stage_ns_count{stage=\"forward\"}".to_string()] >= 8.0);
    assert_eq!(samples["qross_serve_requests_total"], 8.0);

    // Per-solver sweep counters (global registry, merged into the same
    // scrape). SA ran 4 replicas of `sweeps` sweeps; tabu's adaptive
    // count is at least one sweep per replica.
    assert!(samples["qross_solver_sweeps_total{solver=\"sa\"}"] > 0.0);
    assert!(samples["qross_solver_sweeps_total{solver=\"tabu\"}"] > 0.0);
    assert!(samples["qross_solver_energy_evals_total{solver=\"sa\"}"] > 0.0);
    assert!(samples["qross_solver_sample_ns_count{solver=\"sa\"}"] >= 1.0);
    // Eagerly registered but untouched solvers still expose series.
    assert_eq!(samples["qross_solver_sweeps_total{solver=\"da\"}"], 0.0);
    drop((sa_set, tabu_set));

    // Online-trainer metrics: present at zero on a non-online engine —
    // the series registers with the engine, not with first use.
    assert_eq!(samples["qross_online_feedback_total"], 0.0);
    assert!(samples.contains_key("qross_online_retrain_ns_count"));
    assert!(samples.contains_key("qross_online_swap_ns_count"));
    assert!(samples.contains_key("qross_serve_model_generation"));

    // Event-loop counters: one connection accepted, readiness events
    // flowed.
    assert!(samples["qross_net_accepted_total"] >= 1.0);
    assert!(samples["qross_net_readiness_events_total"] > 0.0);

    // Counters are monotone across scrapes under more traffic.
    let more: String = (0..5u64).map(|id| predict_line(id, 3, None)).collect();
    harness.session(&more);
    let second = parse_exposition(&harness.scrape());
    for (series, &value) in &samples {
        if series.contains("_total") || series.contains("_count") {
            let after = second.get(series).copied().unwrap_or_else(|| {
                panic!("series {series} vanished between scrapes");
            });
            assert!(
                after >= value,
                "counter {series} went backwards: {value} -> {after}"
            );
        }
    }
    assert_eq!(second["qross_serve_requests_total"], 13.0);
}

#[test]
fn metrics_op_answers_identically_on_both_wires() {
    let harness = ObsHarness::start(ServeEngine::new(test_model(), ServeConfig::default()));
    let requests: String = (0..4u64)
        .map(|id| predict_line(id, id as usize, None))
        .collect();
    harness.session(&requests);

    // NDJSON metrics op.
    let lines = harness.session("{\"id\": 9, \"op\": \"metrics\"}\n");
    let ndjson: MetricsResponse = serde_json::from_str(&lines[0]).expect("metrics schema");
    assert!(ndjson.ok);
    assert_eq!(ndjson.id, Some(9));
    let ndjson_default = ndjson
        .metrics
        .tenants
        .iter()
        .find(|t| t.tenant == "default")
        .expect("default tenant row");
    assert_eq!(ndjson_default.requests, 4);
    assert_eq!(ndjson.metrics.rejected_quota, 0);
    assert_eq!(ndjson.metrics.rejected_capacity, 0);

    // QBIN metrics op (0x06) over the same port.
    let mut frame = Vec::new();
    bin::encode_metrics_request(&mut frame, Some(9));
    let mut stream = TcpStream::connect(harness.addr).expect("connect");
    stream.write_all(&frame).expect("send frame");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read frames");
    let mut codec = bin::FrameCodec::new();
    codec.feed(&out);
    let response_frame = codec.next_frame().expect("one frame").expect("clean frame");
    let qbin = bin::decode_metrics_response(&response_frame).expect("metrics frame");
    assert!(qbin.ok);
    assert_eq!(qbin.id, Some(9));
    // Counter-valued fields agree across wires (latency/uptime/qps are
    // wall-clock-dependent and legitimately differ between the calls).
    assert_eq!(qbin.metrics.generation, ndjson.metrics.generation);
    assert_eq!(qbin.metrics.rejected, ndjson.metrics.rejected);
    assert_eq!(qbin.metrics.rejected_quota, ndjson.metrics.rejected_quota);
    assert_eq!(
        qbin.metrics.rejected_capacity,
        ndjson.metrics.rejected_capacity
    );
    assert_eq!(qbin.metrics.tenants.len(), ndjson.metrics.tenants.len());
    let qbin_default = qbin
        .metrics
        .tenants
        .iter()
        .find(|t| t.tenant == "default")
        .expect("default tenant row over qbin");
    assert_eq!(qbin_default.requests, ndjson_default.requests);
    assert_eq!(qbin_default.rows, ndjson_default.rows);
}

#[test]
fn trace_op_dumps_slowest_requests_with_stage_breakdown() {
    let harness = ObsHarness::start(ServeEngine::new(test_model(), ServeConfig::default()));
    let requests: String = (0..6u64)
        .map(|id| predict_line(id, id as usize, Some("team-a")))
        .collect();
    harness.session(&requests);
    let lines = harness.session("{\"id\": 42, \"op\": \"trace\"}\n");
    let trace: TraceResponse = serde_json::from_str(&lines[0]).expect("trace schema");
    assert!(trace.ok);
    assert_eq!(trace.id, Some(42));
    assert!(trace.capacity >= trace.entries.len() as u64);
    assert!(!trace.entries.is_empty(), "six predicts left no traces");
    let mut last_total = u64::MAX;
    let mut trace_ids = std::collections::HashSet::new();
    for entry in &trace.entries {
        assert_eq!(entry.op, "predict");
        assert_eq!(entry.tenant, "team-a");
        assert!(entry.total_ns > 0, "zero-duration trace entry");
        assert!(
            entry.total_ns <= last_total,
            "trace not sorted slowest-first"
        );
        last_total = entry.total_ns;
        let stage_sum = entry.decode_ns
            + entry.queue_ns
            + entry.batch_ns
            + entry.forward_ns
            + entry.cache_ns
            + entry.encode_ns;
        assert_eq!(
            stage_sum, entry.total_ns,
            "stage breakdown must sum to total"
        );
        assert!(entry.forward_ns > 0, "predict without forward time");
        assert!(
            trace_ids.insert(entry.trace_id),
            "duplicate trace id {}",
            entry.trace_id
        );
    }
}

#[test]
fn tenant_rejections_split_into_quota_and_capacity_counters() {
    let harness = ObsHarness::start(ServeEngine::with_tenants(
        test_model(),
        ServeConfig::default(),
        TenantPolicy {
            classes: vec![(
                "capped".to_string(),
                TenantClass {
                    weight: 1,
                    quota_rows: 1,
                },
            )],
            ..Default::default()
        },
    ));
    // A 3-row grid against a 1-row quota: one quota rejection.
    let features: Vec<String> = (0..FEAT_DIM).map(|c| format!("{c}.0")).collect();
    let grid = format!(
        "{{\"id\": 1, \"op\": \"predict\", \"tenant\": \"capped\", \
         \"features\": [{}], \"a_values\": [0.5, 1.0, 2.0]}}\n",
        features.join(", ")
    );
    let lines = harness.session(&format!("{grid}{}", "{\"id\": 2, \"op\": \"metrics\"}\n"));
    let rejected: Response = serde_json::from_str(&lines[0]).expect("rejection");
    assert!(!rejected.ok);
    let metrics: MetricsResponse = serde_json::from_str(&lines[1]).expect("metrics schema");
    let m = &metrics.metrics;
    assert_eq!(m.rejected, 1, "legacy total must keep counting");
    assert_eq!(m.rejected_quota, 1, "quota rejection not typed");
    assert_eq!(m.rejected_capacity, 0);
    let capped = m
        .tenants
        .iter()
        .find(|t| t.tenant == "capped")
        .expect("capped tenant row");
    assert_eq!(capped.rejected, 1);
    assert_eq!(capped.rejected_quota, 1);
    assert_eq!(capped.rejected_capacity, 0);
    // The reason split also lands on the scrape as labeled counters.
    let samples = parse_exposition(&harness.scrape());
    assert_eq!(samples["qross_serve_rejected_total{reason=\"quota\"}"], 1.0);
    assert_eq!(
        samples["qross_serve_rejected_total{reason=\"capacity\"}"],
        0.0
    );
}
