//! Descriptive statistics, online accumulators and confidence intervals.
//!
//! The experiment harness reports "normalised optimality gap averaged across
//! all test instances" with a 95% confidence band (paper Figs. 3–4); the
//! helpers here compute exactly those quantities.

use serde::{Deserialize, Serialize};

use crate::{MathError, Result};

/// Arithmetic mean; `0.0` for empty input.
///
/// # Examples
///
/// ```
/// use mathkit::stats::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (divisor `n`); `0.0` for fewer than one element.
pub fn variance_population(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divisor `n-1`); `0.0` for fewer than two elements.
pub fn variance_sample(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation (divisor `n`).
///
/// This is the `Estd` statistic the solver surrogate learns: the spread of
/// QUBO energies inside one solver batch.
pub fn std_population(xs: &[f64]) -> f64 {
    variance_population(xs).sqrt()
}

/// Sample standard deviation (divisor `n-1`).
pub fn std_sample(xs: &[f64]) -> f64 {
    variance_sample(xs).sqrt()
}

/// Minimum of a slice.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn min(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.min(x)))
        })
        .ok_or(MathError::EmptyInput)
}

/// Maximum of a slice.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn max(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.max(x)))
        })
        .ok_or(MathError::EmptyInput)
}

/// Linear-interpolated quantile (same convention as NumPy's default).
///
/// `q` is clamped to `[0, 1]`.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
///
/// # Examples
///
/// ```
/// use mathkit::stats::quantile;
/// let q = quantile(&[1.0, 2.0, 3.0, 4.0], 0.5)?;
/// assert_eq!(q, 2.5);
/// # Ok::<(), mathkit::MathError>(())
/// ```
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Ok(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted slice (ascending). See [`quantile`].
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let w = pos - lo as f64;
        xs[lo] * (1.0 - w) + xs[hi] * w
    }
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for an empty slice.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient of two equal-length slices.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] for unequal lengths.
/// * [`MathError::EmptyInput`] for empty input.
/// * [`MathError::Domain`] when either series is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            expected: format!("length {}", xs.len()),
            found: format!("length {}", ys.len()),
        });
    }
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(MathError::Domain {
            message: "correlation of a constant series".to_string(),
        });
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Mean together with a normal-approximation confidence half-width.
///
/// `half_width = z * s / sqrt(n)` with `z = 1.959964` for the default 95%
/// level — the same construction as the shaded bands in the paper's
/// Figs. 3–5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanCi {
    /// sample mean
    pub mean: f64,
    /// half-width of the confidence interval around the mean
    pub half_width: f64,
    /// number of observations
    pub n: usize,
}

impl MeanCi {
    /// Lower edge of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper edge of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }
}

/// 95% confidence interval for the mean of `xs` (normal approximation).
///
/// For `n < 2` the half-width is zero.
pub fn mean_ci95(xs: &[f64]) -> MeanCi {
    const Z95: f64 = 1.959963984540054;
    let n = xs.len();
    let m = mean(xs);
    let hw = if n < 2 {
        0.0
    } else {
        Z95 * std_sample(xs) / (n as f64).sqrt()
    };
    MeanCi {
        mean: m,
        half_width: hw,
        n,
    }
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use mathkit::stats::OnlineStats;
/// let mut acc = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` when empty.
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation; `0.0` when empty.
    pub fn std_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Sample variance; `0.0` for fewer than two observations.
    pub fn variance_sample(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Min-max normalisation of a slice to `[0, 1]`; a constant slice maps to
/// all zeros.
pub fn minmax_normalize(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let lo = min(xs).expect("non-empty");
    let hi = max(xs).expect("non-empty");
    let span = hi - lo;
    if span == 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / span).collect()
}

/// Z-score standardisation parameters learned from data.
///
/// Used by the dataset pipeline (paper §3.3: "Normalisation helps the
/// convergence of the training curve").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZScore {
    /// mean subtracted during transformation
    pub mean: f64,
    /// standard deviation divided during transformation (floored at `1e-12`)
    pub std: f64,
}

impl ZScore {
    /// Fits standardisation parameters on `xs`. A constant series yields
    /// `std = 1` so the transform degenerates gracefully to centring.
    pub fn fit(xs: &[f64]) -> Self {
        let s = std_population(xs);
        ZScore {
            mean: mean(xs),
            std: if s < 1e-12 { 1.0 } else { s },
        }
    }

    /// Applies the transform to one value.
    pub fn transform(&self, x: f64) -> f64 {
        (x - self.mean) / self.std
    }

    /// Inverts the transform.
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance_population(&xs), 4.0);
        assert_eq!(std_population(&xs), 2.0);
        assert!((variance_sample(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance_population(&[]), 0.0);
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median(&xs).unwrap(), 2.5);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_domain_error() {
        assert!(matches!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(MathError::Domain { .. })
        ));
    }

    #[test]
    fn ci95_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let ci_small = mean_ci95(&small);
        let ci_large = mean_ci95(&large);
        assert!(ci_large.half_width < ci_small.half_width);
        assert!(ci_small.lo() < ci_small.mean && ci_small.mean < ci_small.hi());
    }

    #[test]
    fn ci95_single_sample_zero_width() {
        let ci = mean_ci95(&[3.0]);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.mean, 3.0);
    }

    #[test]
    fn online_matches_batch() {
        let xs = [0.5, -1.0, 2.0, 3.5, 3.5, -2.25];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.variance_population() - variance_population(&xs)).abs() < 1e-12);
        assert_eq!(acc.min(), -2.25);
        assert_eq!(acc.max(), 3.5);
    }

    #[test]
    fn online_merge_matches_whole() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 50);
        assert!((a.mean() - mean(&xs)).abs() < 1e-12);
        assert!((a.variance_population() - variance_population(&xs)).abs() < 1e-12);
    }

    #[test]
    fn minmax_normalize_range() {
        let out = minmax_normalize(&[10.0, 20.0, 15.0]);
        assert_eq!(out, vec![0.0, 1.0, 0.5]);
        assert_eq!(minmax_normalize(&[7.0, 7.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn zscore_roundtrip() {
        let xs = [1.0, 5.0, 9.0, 13.0];
        let z = ZScore::fit(&xs);
        for &x in &xs {
            assert!((z.inverse(z.transform(x)) - x).abs() < 1e-12);
        }
        let t: Vec<f64> = xs.iter().map(|&x| z.transform(x)).collect();
        assert!(mean(&t).abs() < 1e-12);
        assert!((std_population(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_series() {
        let z = ZScore::fit(&[4.0, 4.0, 4.0]);
        assert_eq!(z.transform(4.0), 0.0);
        assert_eq!(z.std, 1.0);
    }
}
