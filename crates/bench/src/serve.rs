//! Shared machinery of the `qross-train` / `qross-predict` binaries —
//! the train-once / serve-many loop over generated TSP, MVC and QAP
//! corpora.
//!
//! The contract the pair demonstrates (and CI enforces byte-for-byte):
//! a model trained and saved by `qross-train` in one process, reloaded by
//! `qross-predict` in a *fresh* process, reproduces the training
//! process's surrogate predictions and offline strategy proposals
//! **bit-identically**. To make that diffable, the [`PredictionManifest`]
//! stores every `f64` as its exact IEEE-754 bit pattern (`u64`): two
//! manifests are equal iff every prediction matches to the last bit.

use serde::{Deserialize, Serialize};

use problems::{MvcInstance, QapInstance, RelaxableProblem};
use qross::pipeline::{train_on_problems, TrainedQross, A_DOMAIN};
use qross::strategy::ProposalStrategy;
use qross::surrogate::{Surrogate, TrainReport};
use solvers::Solver;

use crate::experiments::pipeline_config;
use crate::Scale;

/// Problem family a model is trained on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// synthetic TSP via the full pipeline (the paper's primary workload)
    Tsp,
    /// weighted minimum vertex cover on `G(n, p)` graphs
    Mvc,
    /// quadratic assignment problem instances
    Qap,
}

impl ProblemKind {
    /// Parses `tsp` / `mvc` / `qap` (case-insensitive).
    pub fn parse(s: &str) -> Option<ProblemKind> {
        match s.to_ascii_lowercase().as_str() {
            "tsp" => Some(ProblemKind::Tsp),
            "mvc" => Some(ProblemKind::Mvc),
            "qap" => Some(ProblemKind::Qap),
            _ => None,
        }
    }

    /// Canonical lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            ProblemKind::Tsp => "tsp",
            ProblemKind::Mvc => "mvc",
            ProblemKind::Qap => "qap",
        }
    }
}

/// Deterministic MVC training corpus for a scale and seed.
pub fn mvc_corpus(scale: Scale, seed: u64) -> Vec<MvcInstance> {
    let (count, n, p) = match scale {
        Scale::Micro => (10, 12, 0.4),
        Scale::Quick => (20, 20, 0.4),
        Scale::Paper => (60, 30, 0.5),
    };
    (0..count)
        .map(|i| {
            MvcInstance::random_gnp(
                &format!("mvc{n}_{i}"),
                n,
                p,
                mathkit::rng::derive_seed(seed, 40_000 + i as u64),
            )
        })
        .collect()
}

/// Deterministic QAP training corpus for a scale and seed.
pub fn qap_corpus(scale: Scale, seed: u64) -> Vec<QapInstance> {
    let (count, n) = match scale {
        Scale::Micro => (8, 5),
        Scale::Quick => (14, 6),
        Scale::Paper => (30, 8),
    };
    (0..count)
        .map(|i| {
            QapInstance::random(
                &format!("qap{n}_{i}"),
                n,
                mathkit::rng::derive_seed(seed, 50_000 + i as u64),
            )
        })
        .collect()
}

/// Graph-level MVC features (size, density, weight and degree moments).
pub fn mvc_features(g: &MvcInstance) -> Vec<f64> {
    let n = g.num_vertices();
    let m = g.edges().len();
    let possible = (n * (n - 1) / 2).max(1);
    let mut degree = vec![0.0f64; n];
    for &(u, v) in g.edges() {
        degree[u as usize] += 1.0;
        degree[v as usize] += 1.0;
    }
    vec![
        n as f64,
        m as f64,
        m as f64 / possible as f64,
        mathkit::stats::mean(g.weights()),
        mathkit::stats::std_population(g.weights()),
        mathkit::stats::mean(&degree),
        mathkit::stats::std_population(&degree),
    ]
}

/// QAP features (size plus flow/distance matrix moments).
pub fn qap_features(q: &QapInstance) -> Vec<f64> {
    let flow = q.flow().as_slice();
    let dist = q.dist().as_slice();
    vec![
        q.size() as f64,
        mathkit::stats::mean(flow),
        mathkit::stats::std_population(flow),
        mathkit::stats::mean(dist),
        mathkit::stats::std_population(dist),
    ]
}

/// Trains the generic (non-TSP) surrogate for a problem family.
///
/// # Errors
///
/// Propagates [`qross::QrossError`] from collection or training.
///
/// # Panics
///
/// Panics if called with [`ProblemKind::Tsp`] — the TSP path goes
/// through the staged [`qross::pipeline::Pipeline`].
pub fn train_generic<S: Solver + ?Sized>(
    kind: ProblemKind,
    scale: Scale,
    seed: u64,
    solver: &S,
) -> Result<(Surrogate, TrainReport), qross::QrossError> {
    let cfg = pipeline_config(scale, seed);
    match kind {
        ProblemKind::Tsp => panic!("TSP trains through the staged pipeline"),
        ProblemKind::Mvc => {
            let corpus = mvc_corpus(scale, seed);
            train_on_problems(
                &corpus,
                mvc_features,
                7,
                &cfg.collect,
                &cfg.surrogate,
                solver,
                seed,
            )
        }
        ProblemKind::Qap => {
            let corpus = qap_corpus(scale, seed);
            train_on_problems(
                &corpus,
                qap_features,
                5,
                &cfg.collect,
                &cfg.surrogate,
                solver,
                seed,
            )
        }
    }
}

/// The log-spaced relaxation-parameter grid every manifest evaluates.
pub fn manifest_a_grid() -> Vec<f64> {
    let points = 9;
    let (lo, hi) = A_DOMAIN;
    (0..points)
        .map(|k| (lo.ln() + (hi.ln() - lo.ln()) * k as f64 / (points - 1) as f64).exp())
        .collect()
}

/// One instance's predictions, bit-patterned for exact diffs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstancePredictions {
    /// instance identifier
    pub instance: String,
    /// `Pf` over the manifest grid, as `f64::to_bits`
    pub pf_bits: Vec<u64>,
    /// `Eavg` over the grid, as bits
    pub e_avg_bits: Vec<u64>,
    /// `Estd` over the grid, as bits
    pub e_std_bits: Vec<u64>,
    /// planned offline strategy proposals (MFS, PBS₈₀, PBS₂₀) as bits —
    /// empty for problem families served without the composed strategy
    pub proposal_bits: Vec<u64>,
}

/// The diffable serve-side output: every prediction the model makes on
/// its evaluation set, as exact bit patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionManifest {
    /// problem family (`tsp` / `mvc` / `qap`)
    pub problem: String,
    /// root seed the corpus and model derive from
    pub seed: u64,
    /// relaxation-parameter grid, as bits
    pub a_grid_bits: Vec<u64>,
    /// per-instance predictions
    pub entries: Vec<InstancePredictions>,
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Builds the manifest for a TSP bundle: surrogate grid predictions plus
/// the composed strategy's planned offline proposals on every held-out
/// test instance.
///
/// The strategy seed and batch size come from the bundle's own stored
/// [`qross::pipeline::PipelineConfig`], so the serve side needs *only*
/// the bundle — no command-line flags have to match the training run
/// for the manifests to agree.
pub fn tsp_manifest(trained: &TrainedQross) -> PredictionManifest {
    let seed = trained.config.seed;
    let batch = trained.config.collect.batch;
    let grid = manifest_a_grid();
    let entries = trained
        .test_encodings
        .iter()
        .map(|enc| {
            let features = trained.features_for(enc);
            let preds = trained.surrogate.predict_grid(&features, &grid);
            let strategy = trained.strategy_for(enc, batch, mathkit::rng::derive_seed(seed, 777));
            InstancePredictions {
                instance: enc.fitness_instance().name().to_string(),
                pf_bits: bits(&preds.iter().map(|p| p.pf).collect::<Vec<_>>()),
                e_avg_bits: bits(&preds.iter().map(|p| p.e_avg).collect::<Vec<_>>()),
                e_std_bits: bits(&preds.iter().map(|p| p.e_std).collect::<Vec<_>>()),
                proposal_bits: bits(strategy.planned_offline()),
            }
        })
        .collect();
    PredictionManifest {
        problem: "tsp".to_string(),
        seed,
        a_grid_bits: bits(&grid),
        entries,
    }
}

/// Builds the manifest for a generic (MVC/QAP) surrogate: grid
/// predictions over the regenerated corpus.
pub fn generic_manifest(
    kind: ProblemKind,
    surrogate: &Surrogate,
    scale: Scale,
    seed: u64,
) -> PredictionManifest {
    let grid = manifest_a_grid();
    let named_features: Vec<(String, Vec<f64>)> = match kind {
        ProblemKind::Tsp => panic!("TSP manifests come from tsp_manifest"),
        ProblemKind::Mvc => mvc_corpus(scale, seed)
            .iter()
            .map(|g| (g.name().to_string(), mvc_features(g)))
            .collect(),
        ProblemKind::Qap => qap_corpus(scale, seed)
            .iter()
            .map(|q| (q.name().to_string(), qap_features(q)))
            .collect(),
    };
    let entries = named_features
        .into_iter()
        .map(|(instance, features)| {
            let preds = surrogate.predict_grid(&features, &grid);
            InstancePredictions {
                instance,
                pf_bits: bits(&preds.iter().map(|p| p.pf).collect::<Vec<_>>()),
                e_avg_bits: bits(&preds.iter().map(|p| p.e_avg).collect::<Vec<_>>()),
                e_std_bits: bits(&preds.iter().map(|p| p.e_std).collect::<Vec<_>>()),
                proposal_bits: Vec::new(),
            }
        })
        .collect();
    PredictionManifest {
        problem: kind.name().to_string(),
        seed,
        a_grid_bits: bits(&grid),
        entries,
    }
}

/// Parsed command line shared by `qross-train` and `qross-predict`.
#[derive(Debug, Clone)]
pub struct ServeCli {
    /// problem family to train/serve
    pub problem: ProblemKind,
    /// corpus scale (MVC/QAP serve side regenerates the corpus from it)
    pub scale: Scale,
    /// root seed
    pub seed: u64,
    /// model path (empty = binary-specific default)
    pub model: String,
    /// manifest path (empty = binary-specific default)
    pub manifest: String,
    /// write the model through the JSON fallback instead of the binary
    /// container (`--format json`, `qross-train` only)
    pub json_model: bool,
}

/// Prints `usage` (prefixed by `message` when non-empty) and exits —
/// code 0 for an explicit `--help`, 2 for a malformed command line.
pub fn usage_exit(usage: &str, message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!("usage: {usage}");
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

/// Parses the serve-side flags shared by both binaries. Every flag
/// requires a value — a trailing `--model` with nothing after it is an
/// error, not a silent fall-through to the default path. `with_format`
/// additionally accepts `--format binary|json` (the train side).
pub fn parse_serve_cli(usage: &str, with_format: bool) -> ServeCli {
    let mut cli = ServeCli {
        problem: ProblemKind::Tsp,
        scale: Scale::Quick,
        seed: 2021,
        model: String::new(),
        manifest: String::new(),
        json_model: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--help" | "-h" => usage_exit(usage, ""),
            "--problem" | "--scale" | "--seed" | "--model" | "--manifest" => {}
            "--format" if with_format => {}
            other => usage_exit(usage, &format!("unknown argument `{other}`")),
        }
        i += 1;
        // A following `--flag` token is not a value — reject it so
        // `--model --seed` errors instead of writing a file named
        // `./--seed`.
        let Some(value) = argv
            .get(i)
            .filter(|v| !v.is_empty() && !v.starts_with("--"))
        else {
            usage_exit(usage, &format!("flag `{flag}` needs a value"));
        };
        match flag.as_str() {
            "--problem" => match ProblemKind::parse(value) {
                Some(p) => cli.problem = p,
                None => usage_exit(usage, &format!("bad --problem value `{value}`")),
            },
            "--scale" => match Scale::parse(value) {
                Some(s) => cli.scale = s,
                None => usage_exit(usage, &format!("bad --scale value `{value}`")),
            },
            "--seed" => match value.parse::<u64>() {
                Ok(s) => cli.seed = s,
                Err(_) => usage_exit(usage, &format!("bad --seed value `{value}`")),
            },
            "--model" => cli.model = value.clone(),
            "--manifest" => cli.manifest = value.clone(),
            "--format" => match value.as_str() {
                "binary" => cli.json_model = false,
                "json" => cli.json_model = true,
                other => usage_exit(usage, &format!("bad --format value `{other}`")),
            },
            _ => unreachable!("flag already screened"),
        }
        i += 1;
    }
    cli
}

/// Drives a freshly built strategy through `trials` proposals against a
/// synthetic observation loop (no solver), recording each proposal's bit
/// pattern — used by tests to check a reloaded bundle reproduces the
/// in-memory strategy's *full* proposal sequence, OFS refinement
/// included.
pub fn proposal_trace(strategy: &mut dyn ProposalStrategy, trials: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(trials);
    for t in 0..trials {
        let a = strategy.propose(t);
        out.push(a.to_bits());
        // Deterministic synthetic feedback: a sigmoid world in ln A.
        let pf = mathkit::special::sigmoid(2.0 * a.ln());
        strategy.observe(
            a,
            &qross::collect::SolverObservation {
                a,
                pf,
                e_avg: 1.0 + a.ln().abs(),
                e_std: 0.25,
                best_fitness: if pf > 0.5 { Some(1.0 + a) } else { None },
                min_energy: 0.5,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic() {
        let a = mvc_corpus(Scale::Micro, 7);
        let b = mvc_corpus(Scale::Micro, 7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].edges(), b[0].edges());
        let qa = qap_corpus(Scale::Micro, 7);
        let qb = qap_corpus(Scale::Micro, 7);
        assert_eq!(qa[0].flow().as_slice(), qb[0].flow().as_slice());
    }

    #[test]
    fn features_have_declared_width() {
        let g = &mvc_corpus(Scale::Micro, 3)[0];
        assert_eq!(mvc_features(g).len(), 7);
        assert!(mvc_features(g).iter().all(|v| v.is_finite()));
        let q = &qap_corpus(Scale::Micro, 3)[0];
        assert_eq!(qap_features(q).len(), 5);
        assert!(qap_features(q).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn problem_kind_parses() {
        assert_eq!(ProblemKind::parse("TSP"), Some(ProblemKind::Tsp));
        assert_eq!(ProblemKind::parse("mvc"), Some(ProblemKind::Mvc));
        assert_eq!(ProblemKind::parse("qap"), Some(ProblemKind::Qap));
        assert_eq!(ProblemKind::parse("sat"), None);
        assert_eq!(ProblemKind::Qap.name(), "qap");
    }
}
