//! Balanced Max-Cut.
//!
//! Given a weighted undirected graph, split the vertices into two sides
//! of equal size (the balance target is `⌊n/2⌋`) maximising the total
//! weight of edges crossing the cut. Plain Max-Cut is unconstrained —
//! every assignment is feasible, so the paper's feasibility-probability
//! machinery would have nothing to predict. The *balanced* variant adds
//! a cardinality constraint `Σ_i x_i = ⌊n/2⌋` relaxed with penalty `A`,
//! putting it in exactly the constrained-QUBO shape QROSS models:
//!
//! * objective: minimise `−Σ_{(i,j)∈E} w_ij (x_i + x_j − 2 x_i x_j)`
//!   (the negated cut weight, so lower fitness = larger cut);
//! * constraint: `Σ_i x_i = ⌊n/2⌋` via [`LinearConstraint`].

use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;
use qubo::{ConstrainedBinaryProgram, LinearConstraint, QuboBuilder, QuboModel};

use crate::{ProblemError, RelaxableProblem};

/// A balanced Max-Cut instance and its QUBO encoding.
///
/// # Examples
///
/// ```
/// use problems::{MaxCutInstance, RelaxableProblem};
/// // Square graph, unit weights: the balanced cut {0,2} | {1,3} cuts
/// // all four edges.
/// let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)];
/// let inst = MaxCutInstance::new("square", 4, edges).unwrap();
/// let x = [1, 0, 1, 0];
/// assert!(inst.is_feasible(&x));
/// assert_eq!(inst.fitness(&x), Some(-4.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxCutInstance {
    name: String,
    num_vertices: usize,
    edges: Vec<(u32, u32, f64)>,
    program: ConstrainedBinaryProgram,
}

impl MaxCutInstance {
    /// Creates an instance over `num_vertices` vertices with weighted
    /// edges `(u, v, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::InvalidInstance`] on self-loops,
    /// out-of-range endpoints, duplicate edges (in either orientation)
    /// or non-finite weights.
    pub fn new(
        name: &str,
        num_vertices: usize,
        edges: Vec<(u32, u32, f64)>,
    ) -> Result<Self, ProblemError> {
        let n = num_vertices;
        let mut seen = std::collections::HashSet::new();
        for &(u, v, w) in &edges {
            if u == v {
                return Err(ProblemError::InvalidInstance {
                    message: format!("self-loop at vertex {u}"),
                });
            }
            if u as usize >= n || v as usize >= n {
                return Err(ProblemError::InvalidInstance {
                    message: format!("edge ({u},{v}) out of range for {n} vertices"),
                });
            }
            if !w.is_finite() {
                return Err(ProblemError::InvalidInstance {
                    message: format!("non-finite weight on edge ({u},{v})"),
                });
            }
            if !seen.insert((u.min(v), u.max(v))) {
                return Err(ProblemError::InvalidInstance {
                    message: format!("duplicate edge ({u},{v})"),
                });
            }
        }
        let program = build_program(n, &edges);
        Ok(MaxCutInstance {
            name: name.to_string(),
            num_vertices: n,
            edges,
            program,
        })
    }

    /// Random G(n, p) instance with edge weights uniform in `[0.5, 1.5)`,
    /// deterministic in `(seed)`.
    pub fn random_gnp(name: &str, n: usize, p: f64, seed: u64) -> Self {
        let mut rng = derive_rng(seed, 0x6CA7);
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if rng.gen::<f64>() < p {
                    edges.push((i, j, rng.gen_range(0.5..1.5)));
                }
            }
        }
        Self::new(name, n, edges).expect("generated edges are valid")
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Weighted edge list `(u, v, w)`.
    pub fn edges(&self) -> &[(u32, u32, f64)] {
        &self.edges
    }

    /// Cardinality the feasible side must hit: `⌊n/2⌋`.
    pub fn balance_target(&self) -> usize {
        self.num_vertices / 2
    }

    /// Total weight of edges crossing the cut described by `x`
    /// (`x[i] = 1` puts vertex `i` on the selected side).
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the vertex count.
    pub fn cut_weight(&self, x: &[u8]) -> f64 {
        self.edges
            .iter()
            .map(|&(u, v, w)| {
                if x[u as usize] != x[v as usize] {
                    w
                } else {
                    0.0
                }
            })
            .sum()
    }
}

fn build_program(n: usize, edges: &[(u32, u32, f64)]) -> ConstrainedBinaryProgram {
    let mut builder = QuboBuilder::new(n);
    // Minimise −cut: −Σ w (x_u + x_v − 2 x_u x_v).
    for &(u, v, w) in edges {
        builder.add_linear(u as usize, -w);
        builder.add_linear(v as usize, -w);
        builder.add_quadratic(u as usize, v as usize, 2.0 * w);
    }
    let mut program = ConstrainedBinaryProgram::new(builder.build());
    program.add_constraint(LinearConstraint::new(
        (0..n).map(|i| (i, 1.0)).collect(),
        (n / 2) as f64,
    ));
    program
}

impl RelaxableProblem for MaxCutInstance {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_vars(&self) -> usize {
        self.num_vertices
    }

    fn to_qubo(&self, relaxation: f64) -> QuboModel {
        self.program.to_qubo(relaxation)
    }

    fn is_feasible(&self, x: &[u8]) -> bool {
        x.len() == self.num_vertices
            && x.iter().filter(|&&b| b == 1).count() == self.balance_target()
    }

    fn fitness(&self, x: &[u8]) -> Option<f64> {
        if !self.is_feasible(x) {
            return None;
        }
        Some(-self.cut_weight(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> MaxCutInstance {
        MaxCutInstance::new(
            "square",
            4,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_edges() {
        assert!(MaxCutInstance::new("loop", 3, vec![(1, 1, 1.0)]).is_err());
        assert!(MaxCutInstance::new("range", 3, vec![(0, 3, 1.0)]).is_err());
        assert!(MaxCutInstance::new("dup", 3, vec![(0, 1, 1.0), (1, 0, 2.0)]).is_err());
        assert!(MaxCutInstance::new("nan", 3, vec![(0, 1, f64::NAN)]).is_err());
    }

    #[test]
    fn balance_constraint_gates_feasibility() {
        let s = square();
        assert!(s.is_feasible(&[1, 0, 1, 0]));
        assert!(!s.is_feasible(&[1, 1, 1, 0]));
        assert!(!s.is_feasible(&[0, 0, 0, 0]));
        assert_eq!(s.fitness(&[1, 1, 1, 0]), None);
    }

    #[test]
    fn fitness_is_negated_cut() {
        let s = square();
        assert_eq!(s.fitness(&[1, 0, 1, 0]), Some(-4.0));
        assert_eq!(s.fitness(&[1, 1, 0, 0]), Some(-2.0));
    }

    #[test]
    fn qubo_matches_fitness_on_feasible_points() {
        let s = square();
        // At any feasible point the penalty term vanishes, so the QUBO
        // energy equals the (negated-cut) objective plus the penalty
        // offset contribution of the satisfied constraint (zero).
        let q = s.to_qubo(3.7);
        for x in [[1u8, 0, 1, 0], [1, 1, 0, 0], [0, 1, 0, 1]] {
            assert!((q.energy(&x) - s.fitness(&x).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn penalty_separates_infeasible_points() {
        let s = square();
        let q_lo = s.to_qubo(0.1);
        let q_hi = s.to_qubo(10.0);
        let infeasible = [1u8, 1, 1, 1];
        assert!(q_hi.energy(&infeasible) > q_lo.energy(&infeasible));
    }

    #[test]
    fn random_gnp_deterministic() {
        let a = MaxCutInstance::random_gnp("g", 12, 0.4, 7);
        let b = MaxCutInstance::random_gnp("g", 12, 0.4, 7);
        assert_eq!(a, b);
        let c = MaxCutInstance::random_gnp("g", 12, 0.4, 8);
        assert_ne!(a, c);
    }
}
