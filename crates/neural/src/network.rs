//! Sequential multi-layer perceptron with builder and persistence.

use mathkit::rng::seeded_rng;
use mathkit::Matrix;
use serde::{Deserialize, Serialize};

use crate::layers::{layer_from_spec, Dense, Layer, LayerSpec, Relu, Sigmoid, Tanh};
use crate::NeuralError;

/// A sequential stack of layers.
///
/// # Examples
///
/// ```
/// use mathkit::Matrix;
/// use neural::network::MlpBuilder;
/// let mut net = MlpBuilder::new(3).dense(8).relu().dense(1).build(42);
/// let out = net.forward(&Matrix::zeros(5, 3));
/// assert_eq!(out.shape(), (5, 1));
/// ```
pub struct Mlp {
    layers: Vec<Box<dyn Layer>>,
    input_dim: usize,
    output_dim: usize,
}

impl std::fmt::Debug for Mlp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Mlp({} -> {}, {} layers)",
            self.input_dim,
            self.output_dim,
            self.layers.len()
        )
    }
}

impl Mlp {
    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Number of layers (dense + activations).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable scalar parameters.
    pub fn num_parameters(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |v, _| count += v.rows() * v.cols());
        count
    }

    /// Forward pass over a batch (rows = samples). Caches intermediate
    /// activations for a subsequent [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from [`Mlp::input_dim`].
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_dim,
            "input width {} does not match network input {}",
            input.cols(),
            self.input_dim
        );
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Inference pass over a batch: numerically identical to
    /// [`Mlp::forward`] but immutable — no activation caches are written,
    /// so a trained network can be shared across threads (`&Mlp` is
    /// `Sync`) and queried concurrently with no locking. Cannot be
    /// followed by [`Mlp::backward`].
    ///
    /// **Multi-row bit-identity**: row `r` of the output is *bit-identical*
    /// to inferring row `r` alone. Dense layers accumulate each output
    /// element independently in ascending-`k` order regardless of blocking
    /// ([`mathkit::Matrix::matmul`], the serve tier of `mathkit::kernel`)
    /// and activations are element-wise, so stacking rows cannot change
    /// any bit of any row — the guarantee the serving engine's
    /// micro-batching relies on to keep batched responses exactly equal to
    /// per-request ones. [`Layer::set_fast_math`] never affects this path.
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from [`Mlp::input_dim`].
    pub fn infer(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_dim,
            "input width {} does not match network input {}",
            input.cols(),
            self.input_dim
        );
        // First layer reads the caller's matrix directly — no defensive
        // clone of the (possibly large) input batch.
        let mut layers = self.layers.iter();
        let mut x = match layers.next() {
            Some(first) => first.infer(input),
            None => input.clone(),
        };
        for layer in layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Checked forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] on wrong input width.
    pub fn try_forward(&mut self, input: &Matrix) -> Result<Matrix, NeuralError> {
        if input.cols() != self.input_dim {
            return Err(NeuralError::ShapeMismatch {
                expected: self.input_dim,
                found: input.cols(),
            });
        }
        Ok(self.forward(input))
    }

    /// Backward pass: propagates the loss gradient and accumulates
    /// parameter gradients. Must follow a `forward` on the same batch.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Visits every `(value, gradient)` parameter pair in stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Selects the numeric tier of the *training* path: when `on`, dense
    /// layers run [`Mlp::forward`] through the reassociated fast-math
    /// matmul (`mathkit::kernel::matmul_fastmath`). [`Mlp::infer`] — the
    /// serve path — is unaffected and stays bit-exact either way. The
    /// setting is runtime-only: it is not serialised with the model.
    pub fn set_fast_math(&mut self, on: bool) {
        for layer in &mut self.layers {
            layer.set_fast_math(on);
        }
    }

    /// Serialisable snapshot of the architecture and weights.
    pub fn to_state(&self) -> MlpState {
        MlpState {
            input_dim: self.input_dim,
            layers: self.layers.iter().map(|l| l.spec()).collect(),
        }
    }

    /// Restores a network from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidModel`] when consecutive layer shapes
    /// are inconsistent.
    pub fn from_state(state: &MlpState) -> Result<Self, NeuralError> {
        let mut width = state.input_dim;
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(state.layers.len());
        for (i, spec) in state.layers.iter().enumerate() {
            if let LayerSpec::Dense {
                input,
                output,
                weights,
                bias,
            } = spec
            {
                if *input != width {
                    return Err(NeuralError::InvalidModel {
                        message: format!(
                            "layer {i}: expects input {input}, but previous width is {width}"
                        ),
                    });
                }
                if weights.len() != input * output || bias.len() != *output {
                    return Err(NeuralError::InvalidModel {
                        message: format!("layer {i}: weight/bias length mismatch"),
                    });
                }
                width = *output;
            }
            layers.push(layer_from_spec(spec));
        }
        Ok(Mlp {
            layers,
            input_dim: state.input_dim,
            output_dim: width,
        })
    }

    /// Serialises the model to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_state()).expect("model state serialises")
    }

    /// Restores a model from [`Mlp::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidModel`] for malformed JSON or
    /// inconsistent shapes.
    pub fn from_json(json: &str) -> Result<Self, NeuralError> {
        let state: MlpState =
            serde_json::from_str(json).map_err(|e| NeuralError::InvalidModel {
                message: format!("json: {e}"),
            })?;
        Self::from_state(&state)
    }
}

/// Serialisable network snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpState {
    /// input feature width
    pub input_dim: usize,
    /// ordered layer descriptions
    pub layers: Vec<LayerSpec>,
}

/// Builder for [`Mlp`].
///
/// Dense layers are He-initialised from the seed passed to
/// [`MlpBuilder::build`]; the same seed reproduces the same network.
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_dim: usize,
    plan: Vec<PlanItem>,
}

#[derive(Debug, Clone, Copy)]
enum PlanItem {
    Dense(usize),
    Relu,
    Sigmoid,
    Tanh,
}

impl MlpBuilder {
    /// Starts a builder for networks consuming `input_dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` is zero.
    pub fn new(input_dim: usize) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        MlpBuilder {
            input_dim,
            plan: Vec::new(),
        }
    }

    /// Appends a dense layer with `width` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn dense(mut self, width: usize) -> Self {
        assert!(width > 0, "layer width must be positive");
        self.plan.push(PlanItem::Dense(width));
        self
    }

    /// Appends a ReLU activation.
    pub fn relu(mut self) -> Self {
        self.plan.push(PlanItem::Relu);
        self
    }

    /// Appends a sigmoid activation.
    pub fn sigmoid(mut self) -> Self {
        self.plan.push(PlanItem::Sigmoid);
        self
    }

    /// Appends a tanh activation.
    pub fn tanh(mut self) -> Self {
        self.plan.push(PlanItem::Tanh);
        self
    }

    /// Materialises the network with seed-derived initial weights.
    ///
    /// # Panics
    ///
    /// Panics if the plan contains no dense layer.
    pub fn build(self, seed: u64) -> Mlp {
        assert!(
            self.plan.iter().any(|p| matches!(p, PlanItem::Dense(_))),
            "network needs at least one dense layer"
        );
        let mut rng = seeded_rng(seed);
        let mut width = self.input_dim;
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(self.plan.len());
        for item in &self.plan {
            match item {
                PlanItem::Dense(out) => {
                    layers.push(Box::new(Dense::new(width, *out, &mut rng)));
                    width = *out;
                }
                PlanItem::Relu => layers.push(Box::new(Relu::new())),
                PlanItem::Sigmoid => layers.push(Box::new(Sigmoid::new())),
                PlanItem::Tanh => layers.push(Box::new(Tanh::new())),
            }
        }
        Mlp {
            layers,
            input_dim: self.input_dim,
            output_dim: width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;

    #[test]
    fn builder_shapes() {
        let mut net = MlpBuilder::new(4).dense(16).relu().dense(3).build(1);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.num_layers(), 3);
        // 4*16 + 16 + 16*3 + 3 = 131
        assert_eq!(net.num_parameters(), 131);
    }

    #[test]
    fn same_seed_same_network() {
        let mut a = MlpBuilder::new(2).dense(4).tanh().dense(1).build(9);
        let mut b = MlpBuilder::new(2).dense(4).tanh().dense(1).build(9);
        let x = Matrix::from_rows(&[&[0.3, -0.7]]);
        assert_eq!(a.forward(&x), b.forward(&x));
        let mut c = MlpBuilder::new(2).dense(4).tanh().dense(1).build(10);
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    /// End-to-end finite-difference gradient check through a two-layer
    /// network with nonlinearities — validates the full backprop chain.
    #[test]
    fn full_network_gradient_check() {
        let mut net = MlpBuilder::new(3)
            .dense(5)
            .tanh()
            .dense(2)
            .sigmoid()
            .build(4);
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.7], &[-0.1, 0.9, 0.3]]);
        let y = Matrix::from_rows(&[&[1.0, 0.0], &[0.3, 0.8]]);
        let loss = Loss::Bce;

        net.zero_grad();
        let pred = net.forward(&x);
        let g = loss.grad(&pred, &y);
        net.backward(&g);

        // Collect analytic gradients.
        let mut analytic: Vec<f64> = Vec::new();
        net.visit_params(&mut |_v, g| analytic.extend_from_slice(g.as_slice()));

        // Numeric gradients, parameter by parameter.
        let eps = 1e-6;
        let mut flat_idx = 0usize;
        let mut max_err = 0.0_f64;
        // Count parameters first.
        let total: usize = {
            let mut c = 0;
            net.visit_params(&mut |v, _| c += v.rows() * v.cols());
            c
        };
        #[allow(clippy::explicit_counter_loop)] // flat_idx advances only on gradient entries
        for target in 0..total {
            let perturb = |delta: f64, net: &mut Mlp| {
                let mut seen = 0usize;
                net.visit_params(&mut |v, _| {
                    let len = v.rows() * v.cols();
                    if target >= seen && target < seen + len {
                        v.as_mut_slice()[target - seen] += delta;
                    }
                    seen += len;
                });
            };
            perturb(eps, &mut net);
            let plus = loss.value(&net.forward(&x), &y);
            perturb(-2.0 * eps, &mut net);
            let minus = loss.value(&net.forward(&x), &y);
            perturb(eps, &mut net);
            let numeric = (plus - minus) / (2.0 * eps);
            max_err = max_err.max((numeric - analytic[flat_idx]).abs());
            flat_idx += 1;
        }
        assert!(max_err < 1e-5, "max gradient error {max_err}");
    }

    #[test]
    fn infer_matches_forward_and_is_shareable() {
        let mut net = MlpBuilder::new(3)
            .dense(8)
            .relu()
            .dense(4)
            .tanh()
            .dense(2)
            .sigmoid()
            .build(13);
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.7], &[-0.1, 0.9, 0.3]]);
        let want = net.forward(&x);
        assert_eq!(net.infer(&x), want);
        // Concurrent immutable inference from several threads.
        let (net, x, want) = (&net, &x, &want);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || assert_eq!(&net.infer(x), want));
            }
        });
    }

    #[test]
    fn multi_row_infer_is_bit_identical_per_row() {
        // The serving engine stacks concurrent requests into one matrix;
        // each row of a batched infer must equal the 1-row infer of that
        // row with *exact* f64 equality, for any batch size or ordering.
        let net = MlpBuilder::new(5)
            .dense(16)
            .relu()
            .dense(8)
            .tanh()
            .dense(3)
            .sigmoid()
            .build(77);
        let rows: Vec<Vec<f64>> = (0..13)
            .map(|r| {
                (0..5)
                    .map(|c| ((r * 7 + c * 3) % 11) as f64 / 3.0 - 1.5)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let batched = net.infer(&Matrix::from_rows(&refs));
        for (r, row) in rows.iter().enumerate() {
            let single = net.infer(&Matrix::row(row));
            for c in 0..3 {
                assert_eq!(
                    batched[(r, c)].to_bits(),
                    single[(0, c)].to_bits(),
                    "row {r} col {c} changed bits when batched"
                );
            }
        }
        // Row order must not matter either: reversed stacking, same bits.
        let mut rev = refs.clone();
        rev.reverse();
        let reversed = net.infer(&Matrix::from_rows(&rev));
        for r in 0..rows.len() {
            for c in 0..3 {
                assert_eq!(
                    reversed[(rows.len() - 1 - r, c)].to_bits(),
                    batched[(r, c)].to_bits()
                );
            }
        }
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let mut net = MlpBuilder::new(3).dense(6).relu().dense(2).build(21);
        let x = Matrix::from_rows(&[&[0.5, 0.1, -0.3]]);
        let want = net.forward(&x);
        let json = net.to_json();
        let mut back = Mlp::from_json(&json).unwrap();
        assert_eq!(back.forward(&x), want);
    }

    #[test]
    fn from_state_validates_shapes() {
        let net = MlpBuilder::new(2).dense(3).build(1);
        let mut state = net.to_state();
        state.input_dim = 5; // now inconsistent with the dense layer
        assert!(matches!(
            Mlp::from_state(&state),
            Err(NeuralError::InvalidModel { .. })
        ));
    }

    #[test]
    fn try_forward_checks_width() {
        let mut net = MlpBuilder::new(2).dense(1).build(1);
        assert!(matches!(
            net.try_forward(&Matrix::zeros(1, 3)),
            Err(NeuralError::ShapeMismatch { .. })
        ));
        assert!(net.try_forward(&Matrix::zeros(1, 2)).is_ok());
    }

    #[test]
    #[should_panic(expected = "dense layer")]
    fn builder_requires_dense() {
        let _ = MlpBuilder::new(2).relu().build(0);
    }
}
