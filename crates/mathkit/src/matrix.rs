//! Dense row-major matrices.
//!
//! [`Matrix`] is deliberately small: it provides exactly the operations the
//! neural-network ([`neural`](https://docs.rs)) and Gaussian-process code
//! paths need — construction, element access, matrix multiplication,
//! transposition, element-wise maps and reductions. It is not a general
//! linear-algebra library.

use serde::{Deserialize, Serialize};

use crate::{MathError, Result};

/// A dense, row-major `rows x cols` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use mathkit::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use mathkit::Matrix;
    /// let m = Matrix::zeros(2, 3);
    /// assert_eq!(m.shape(), (2, 3));
    /// assert_eq!(m[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows passed to from_rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_slice(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col_vec(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index {c} out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix multiplication `self * other` (**serve tier**: bit-exact).
    ///
    /// Dispatches to the register-tiled blocked kernel
    /// ([`crate::kernel::matmul_serve`]), which is bit-identical to the
    /// reference ikj loop ([`Matrix::matmul_reference`]): each output
    /// element is accumulated into a single `f64` in ascending-`k` order
    /// with the zero-skip on `self` preserved. Inference paths
    /// (`Dense::infer`, `Mlp::infer`, `Surrogate::predict*`) rely on this
    /// bit-exactness contract; see `mathkit::kernel` for the tier
    /// definitions.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernel::matmul_serve(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Reference ikj matrix multiply: the serve tier's bit-exactness
    /// oracle. Semantically and bit-wise identical to [`Matrix::matmul`]
    /// but unblocked; kept for property tests and benchmarks that pin the
    /// blocked kernel against it.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernel::matmul_reference(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Matrix multiplication `self * other` (**fast-math tier**).
    ///
    /// Branch-free, `k`-reassociated kernel: agrees with [`Matrix::matmul`]
    /// to normal rounding accuracy but is **not** bit-identical. Only
    /// collection/training paths without a cross-version
    /// bit-reproducibility contract may use it (see `TrainConfig::fast_math`
    /// and the `mathkit::kernel` tier docs). Deterministic within one
    /// binary.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_fastmath(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernel::matmul_fastmath(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Reshapes `self` in place to `rows x cols`, reusing the existing
    /// allocation, and fills it with zeros. The scratch-reuse counterpart
    /// of [`Matrix::zeros`] for per-worker buffers on hot paths.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `self^T * other` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn tmatmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "tmatmul: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &aki) in arow.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (j, &bkj) in brow.iter().enumerate() {
                    orow[j] += aki * bkj;
                }
            }
        }
        out
    }

    /// `self * other^T` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow.iter()) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise combination with an arbitrary binary function.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with<F: Fn(f64, f64) -> f64>(&self, other: &Matrix, f: F) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_with: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every element by `s` and returns the result.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Adds `row` (a 1 x cols matrix) to every row of `self`, returning a new
    /// matrix. This is the broadcast used to apply bias vectors.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or the column counts differ.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows(), 1, "broadcast operand must have exactly 1 row");
        assert_eq!(self.cols, row.cols(), "broadcast: column mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let dst = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (d, s) in dst.iter_mut().zip(row.data.iter()) {
                *d += s;
            }
        }
        out
    }

    /// In-place [`Matrix::add_row_broadcast`]: adds `row` to every row of
    /// `self` without allocating the output copy. Bit-identical to the
    /// allocating form (same additions in the same order) — the serving
    /// inference path uses it to cut per-batch allocations.
    ///
    /// # Panics
    ///
    /// Panics if `row.rows() != 1` or the column counts differ.
    pub fn add_row_broadcast_inplace(&mut self, row: &Matrix) {
        assert_eq!(row.rows(), 1, "broadcast operand must have exactly 1 row");
        assert_eq!(self.cols, row.cols(), "broadcast: column mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, s) in dst.iter_mut().zip(row.data.iter()) {
                *d += s;
            }
        }
    }

    /// Sums over rows, producing a `1 x cols` matrix (column totals).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            for (d, s) in out.data.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Extracts rows `indices` into a new matrix (used for mini-batching).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "row index {src} out of bounds");
            out.row_slice_mut(dst).copy_from_slice(self.row_slice(src));
        }
        out
    }

    /// Horizontally concatenates `self` and `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when the row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} rows", self.rows),
                found: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row_slice(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols]
                .copy_from_slice(other.row_slice(r));
        }
        Ok(out)
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn tmatmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-1.0, 2.0], &[0.0, 1.0]]);
        assert_eq!(a.tmatmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.5, -1.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn broadcast_bias() {
        let a = Matrix::zeros(3, 2);
        let bias = Matrix::row(&[1.0, -1.0]);
        let out = a.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out[(r, 0)], 1.0);
            assert_eq!(out[(r, 1)], -1.0);
        }
    }

    #[test]
    fn sum_rows_column_totals() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = a.sum_rows();
        assert_eq!(s, Matrix::row(&[9.0, 12.0]));
    }

    #[test]
    fn select_rows_batches() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn hcat_and_mismatch() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.hcat(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c[(1, 2)], 6.0);
        let bad = Matrix::zeros(3, 1);
        assert!(a.hcat(&bad).is_err());
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a[(0, 1)] = f64::NAN;
        assert!(a.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::filled(2, 2, 2.0));
    }
}
