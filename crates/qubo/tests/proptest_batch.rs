//! Property tests for the lockstep multi-replica batch engine.
//!
//! Contract: a `ReplicaBatch` advanced in lockstep (interleaving lanes in
//! any order) is bit-identical, per lane, to independent `QuboState`
//! replicas fed the same per-lane operation sequences.

use proptest::prelude::*;

use qubo::{QuboBuilder, QuboState, ReplicaBatch};

fn qubo_strategy() -> impl Strategy<Value = (usize, Vec<f64>, Vec<(usize, usize, f64)>)> {
    (2usize..12).prop_flat_map(|n| {
        let linear = proptest::collection::vec(-5.0..5.0f64, n);
        let couplings = proptest::collection::vec(
            (
                (0..n, 0..n).prop_filter("distinct", |(i, j)| i != j),
                -5.0..5.0f64,
            )
                .prop_map(|((i, j), w)| (i, j, w)),
            0..(n * 2),
        );
        (Just(n), linear, couplings)
    })
}

fn build_model(n: usize, linear: &[f64], couplings: &[(usize, usize, f64)]) -> qubo::QuboModel {
    let mut b = QuboBuilder::new(n);
    for (i, &l) in linear.iter().enumerate() {
        b.add_linear(i, l);
    }
    for &(i, j, w) in couplings {
        b.add_quadratic(i, j, w);
    }
    b.build()
}

proptest! {
    /// N lanes advanced in lockstep over one shared CSR == N sequential
    /// single-replica sweeps with the same per-replica flip sequences,
    /// exact f64 bits (energies, deltas, applied flip deltas,
    /// assignments).
    #[test]
    fn lockstep_equals_sequential_bitwise(
        (n, linear, couplings) in qubo_strategy(),
        lanes in 1usize..6,
        init_bits in proptest::collection::vec(0u8..2, 6 * 12),
        flips in proptest::collection::vec(0usize..144, 1..60),
    ) {
        let model = build_model(n, &linear, &couplings);

        // Per-lane initial assignments drawn from the shared bit pool.
        let inits: Vec<Vec<u8>> = (0..lanes)
            .map(|r| init_bits[r * n..(r + 1) * n].to_vec())
            .collect();
        // Per-lane flip sequences: distribute the shared flip list
        // round-robin, so lanes advance interleaved but each lane's own
        // sequence is fixed.
        let mut per_lane: Vec<Vec<usize>> = vec![Vec::new(); lanes];
        for (t, &f) in flips.iter().enumerate() {
            per_lane[t % lanes].push(f % n);
        }

        // Sequential reference: each lane runs to completion on its own
        // QuboState before the next lane starts.
        let mut reference: Vec<QuboState<'_>> = Vec::new();
        let mut ref_applied: Vec<Vec<u64>> = Vec::new();
        for r in 0..lanes {
            let mut s = QuboState::new(&model, inits[r].clone());
            let applied = per_lane[r].iter().map(|&i| s.flip(i).to_bits()).collect();
            reference.push(s);
            ref_applied.push(applied);
        }

        // Lockstep: all lanes share one batch, staged then rebuilt once,
        // flips interleaved in the original round-robin order.
        let mut batch = ReplicaBatch::new(&model, lanes);
        for (r, init) in inits.iter().enumerate() {
            batch.set_assignment(r, init);
        }
        batch.rebuild_all();

        // Initial caches: bit-identical to fresh single-replica states
        // (the `reference` states have already run their flips).
        for (r, init) in inits.iter().enumerate() {
            let fresh = QuboState::new(&model, init.clone());
            prop_assert_eq!(batch.energy(r).to_bits(), fresh.energy().to_bits());
        }

        // Interleaved advance, checking applied deltas as we go.
        let mut cursors = vec![0usize; lanes];
        for (t, _) in flips.iter().enumerate() {
            let r = t % lanes;
            let i = per_lane[r][cursors[r]];
            let applied = batch.flip(r, i).to_bits();
            prop_assert_eq!(applied, ref_applied[r][cursors[r]], "flip {} lane {}", t, r);
            cursors[r] += 1;
        }

        let mut buf = Vec::new();
        for (r, s) in reference.iter().enumerate() {
            prop_assert_eq!(batch.energy(r).to_bits(), s.energy().to_bits(), "energy lane {}", r);
            batch.copy_assignment(r, &mut buf);
            prop_assert_eq!(&buf[..], s.assignment(), "assignment lane {}", r);
            for i in 0..n {
                prop_assert_eq!(
                    batch.flip_delta(r, i).to_bits(),
                    s.flip_delta(i).to_bits(),
                    "delta lane {} var {}", r, i
                );
            }
        }
    }

    /// `rebuild_all` equals fresh per-lane construction bitwise after an
    /// arbitrary flip history (cache rebuild discards nothing it
    /// shouldn't).
    #[test]
    fn rebuild_all_matches_fresh_construction(
        (n, linear, couplings) in qubo_strategy(),
        lanes in 1usize..5,
        flips in proptest::collection::vec((0usize..5, 0usize..12), 0..30),
    ) {
        let model = build_model(n, &linear, &couplings);
        let mut batch = ReplicaBatch::new(&model, lanes);
        for &(r, i) in &flips {
            batch.flip(r % lanes, i % n);
        }
        batch.rebuild_all();
        let mut buf = Vec::new();
        for r in 0..lanes {
            batch.copy_assignment(r, &mut buf);
            let fresh = QuboState::new(&model, buf.clone());
            prop_assert_eq!(batch.energy(r).to_bits(), fresh.energy().to_bits());
            for i in 0..n {
                prop_assert_eq!(
                    batch.flip_delta(r, i).to_bits(),
                    fresh.flip_delta(i).to_bits()
                );
            }
        }
    }
}
