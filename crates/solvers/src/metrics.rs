//! Sweep instrumentation for the solver substrates.
//!
//! Each solver's `sample()` records its wall-clock duration into a
//! per-solver histogram and bumps sweep / energy-evaluation counters on
//! the process-global [`obs::global`] registry — the "dark path" a
//! serving process otherwise can't see (solver work happens inside
//! `tsp`/`instance` uploads and offline sweeps, not per `predict`).
//!
//! Everything here is observation-only: no solver trajectory, RNG
//! stream, or sample byte depends on it, and under `obs-off` every call
//! in this module compiles to a no-op. Handles are resolved once
//! through a [`OnceLock`] table keyed by solver name, so the per-call
//! cost is a map probe plus relaxed atomic adds.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Metric handles for one solver substrate.
struct SweepObs {
    /// `qross_solver_sample_ns{solver=...}` — duration of one `sample()`
    sample_ns: Arc<obs::Histogram>,
    /// `qross_solver_sweeps_total{solver=...}` — sweeps executed (one
    /// sweep = one pass of candidate flips at fixed temperature /
    /// one tabu iteration)
    sweeps: Arc<obs::Counter>,
    /// `qross_solver_energy_evals_total{solver=...}` — candidate-move
    /// energy deltas evaluated
    energy_evals: Arc<obs::Counter>,
}

/// The solver names with registered series. `qbsolv` records durations
/// only: its sweep work runs through the embedded tabu refiner, which
/// attributes those sweeps to `tabu` itself.
const SOLVERS: [&str; 4] = ["sa", "da", "tabu", "qbsolv"];

fn table() -> &'static HashMap<&'static str, SweepObs> {
    static TABLE: OnceLock<HashMap<&'static str, SweepObs>> = OnceLock::new();
    TABLE.get_or_init(|| {
        SOLVERS
            .iter()
            .map(|&name| {
                let handles = SweepObs {
                    sample_ns: obs::global().histogram(
                        obs::labeled("qross_solver_sample_ns", "solver", name),
                        "wall-clock duration of one solver sample() call",
                    ),
                    sweeps: obs::global().counter(
                        obs::labeled("qross_solver_sweeps_total", "solver", name),
                        "solver sweeps executed (one pass of candidate flips)",
                    ),
                    energy_evals: obs::global().counter(
                        obs::labeled("qross_solver_energy_evals_total", "solver", name),
                        "candidate-move energy deltas evaluated",
                    ),
                };
                (name, handles)
            })
            .collect()
    })
}

/// Records one completed `sample()` call: duration plus the sweep and
/// energy-evaluation work it performed. No-op under `obs-off`.
pub(crate) fn record_sample(solver: &str, elapsed_ns: u64, sweeps: u64, energy_evals: u64) {
    if !obs::ENABLED {
        return;
    }
    if let Some(h) = table().get(solver) {
        h.sample_ns.record(elapsed_ns);
        h.sweeps.add(sweeps);
        h.energy_evals.add(energy_evals);
    }
}

/// Adds sweep work without a duration sample — used by inner loops
/// whose iteration count is adaptive (tabu's stall cutoff), where the
/// caller times the whole `sample()` separately. No-op under `obs-off`.
pub(crate) fn record_sweeps(solver: &str, sweeps: u64, energy_evals: u64) {
    if !obs::ENABLED {
        return;
    }
    if let Some(h) = table().get(solver) {
        h.sweeps.add(sweeps);
        h.energy_evals.add(energy_evals);
    }
}

/// Forces registration of every per-solver series so a pre-traffic
/// scrape already lists them at zero. No-op under `obs-off`.
pub fn register_metrics() {
    if obs::ENABLED {
        let _ = table();
    }
}
