//! Integration tests for the continual-learning serving loop: hot-swaps
//! under concurrent load (zero dropped requests, no stale-cache values)
//! and the end-to-end serve → feedback → retrain → swap → checkpoint
//! cycle's bit-reproducibility across worker counts, at both the engine
//! and the NDJSON protocol level.
//!
//! The model is a hand-built bundle (seed-derived surrogate weights, the
//! real 24-feature statistical featurizer, no training) plus a small
//! synthetic base corpus, so the suite runs in seconds while exercising
//! exactly the production code paths: feedback ingestion, replay-buffer
//! snapshots, corpus-merged fine-tuning, checkpoint-then-swap, and
//! generation-keyed caching.

use std::io::Cursor;
use std::sync::Arc;

use bench::protocol::{serve_connection, Response};
use qross_repro::mathkit::stats::ZScore;
use qross_repro::neural::network::MlpBuilder;
use qross_repro::qross::dataset::{DatasetRow, Scalers, SurrogateDataset};
use qross_repro::qross::online::{FeedbackRecord, OnlineConfig, SurrogateCheckpoint};
use qross_repro::qross::pipeline::{PipelineConfig, TrainedQross};
use qross_repro::qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross_repro::qross::surrogate::{Surrogate, SurrogateState, TrainReport};
use qross_repro::qross::StatisticalFeaturizer;
use qross_store::Artifact;

/// Feature width of [`StatisticalFeaturizer`].
const FEAT_DIM: usize = 24;

fn zscore(mean: f64, std: f64) -> ZScore {
    ZScore { mean, std }
}

/// Seed-derived surrogate over the statistical featurizer's 24 features.
fn test_surrogate() -> Surrogate {
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(16)
            .relu()
            .dense(1)
            .sigmoid()
            .build(91)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(16)
            .relu()
            .dense(2)
            .build(92)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM)
                .map(|c| zscore(0.2 * c as f64, 1.0 + 0.05 * c as f64))
                .collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(8.0, 3.0),
            e_std: zscore(1.0, 0.4),
        },
    };
    Surrogate::from_state(state).expect("consistent state")
}

/// A serve-ready bundle around [`test_surrogate`].
fn test_bundle() -> Arc<TrainedQross> {
    Arc::new(TrainedQross {
        surrogate: test_surrogate(),
        featurizer: Box::new(StatisticalFeaturizer::new()),
        train_encodings: Vec::new(),
        test_encodings: Vec::new(),
        dataset_len: 0,
        report: TrainReport::default(),
        config: PipelineConfig::micro(),
    })
}

/// Small deterministic "original corpus" merged under every fine-tune.
fn base_corpus() -> SurrogateDataset {
    let mut ds = SurrogateDataset::new(FEAT_DIM);
    for k in 0..12 {
        ds.push(DatasetRow {
            features: (0..FEAT_DIM)
                .map(|c| ((k * 11 + c * 5) % 23) as f64 / 6.0 - 1.8)
                .collect(),
            a: 0.3 + k as f64 * 0.4,
            pf: (k % 9) as f64 / 8.0,
            e_avg: 7.0 + (k % 4) as f64,
            e_std: 0.8 + (k % 3) as f64 * 0.3,
        });
    }
    ds
}

/// Deterministic query `k`: 24 features plus a positive `A`.
fn query(k: usize) -> (Vec<f64>, f64) {
    let features: Vec<f64> = (0..FEAT_DIM)
        .map(|c| ((k * 13 + c * 7) % 29) as f64 / 7.0 - 2.0)
        .collect();
    let a = 0.1 + (k % 11) as f64 * 0.45;
    (features, a)
}

/// Deterministic feedback record `k`.
fn feedback(k: usize) -> FeedbackRecord {
    let (features, a) = query(k + 100);
    FeedbackRecord {
        features,
        a,
        observed_pf: ((k * 7) % 11) as f64 / 10.0,
        observed_e_avg: 6.0 + (k % 5) as f64,
        observed_e_std: 0.5 + (k % 3) as f64 * 0.25,
        instance_tag: format!("obs{k}"),
        seed: k as u64,
    }
}

fn online_config(dir: std::path::PathBuf, refresh_after: usize) -> OnlineConfig {
    OnlineConfig {
        refresh_after,
        buffer_capacity: 32,
        recent_capacity: 16,
        feedback_weight: 3,
        epochs: 4,
        learning_rate: 1e-3,
        batch_size: 16,
        max_pending_retrains: 2,
        seed: 2021,
        checkpoint_dir: Some(dir),
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qross_online_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Hammer test for the acceptance criterion: N threads predicting while
/// refreshes fire. Every response must succeed (no drops, no spurious
/// backpressure with the default queue), and every response must be
/// bit-identical to *some* checkpointed generation — never a stale-cache
/// blend.
#[test]
fn hot_swap_under_concurrent_load_drops_nothing() {
    let dir = temp_dir("hammer");
    let eng = ServeEngine::with_online(
        ServeModel::Bundle(test_bundle()),
        ServeConfig {
            workers: 4,
            max_batch_rows: 16,
            ..Default::default()
        },
        online_config(dir.clone(), 0), // manual refreshes from the main thread
        Some(base_corpus()),
    )
    .expect("online engine");

    const SWAPS: usize = 4;
    let eng_ref = &eng;
    let recorded: Vec<Vec<(usize, qross_repro::qross::SurrogatePrediction)>> =
        std::thread::scope(|scope| {
            let predictors: Vec<_> = (0..6usize)
                .map(|t| {
                    scope.spawn(move || {
                        let mut seen = Vec::with_capacity(150);
                        for i in 0..150usize {
                            let k = (t * 41 + i) % 70;
                            let (f, a) = query(k);
                            // The acceptance bar: predictions during
                            // continuous swapping either succeed or return
                            // typed backpressure — they never fail
                            // otherwise and are never dropped.
                            let served = eng_ref.predict(&f, a).expect("prediction dropped");
                            seen.push((k, served));
                        }
                        seen
                    })
                })
                .collect();
            // Fire swaps while the predictors hammer.
            for s in 0..SWAPS {
                for k in 0..3 {
                    eng_ref
                        .submit_feedback(feedback(s * 3 + k))
                        .expect("feedback");
                }
                let gen = eng_ref.refresh().expect("refresh").wait().expect("swap");
                assert_eq!(gen as usize, s + 1);
            }
            predictors.into_iter().map(|h| h.join().unwrap()).collect()
        });

    // Rebuild every generation this run served: gen 0 from the original
    // weights, gens 1..=SWAPS from their checkpoints.
    let mut generations = vec![test_surrogate()];
    for g in 1..=SWAPS {
        let ckpt =
            SurrogateCheckpoint::load(dir.join(format!("ckpt-g{g:06}.qross"))).expect("checkpoint");
        generations.push(Surrogate::from_state(ckpt.state).expect("state"));
    }
    for thread in &recorded {
        for &(k, served) in thread {
            let (f, a) = query(k);
            let matched = generations.iter().any(|sur| {
                let direct = sur.predict(&f, a);
                direct.pf.to_bits() == served.pf.to_bits()
                    && direct.e_avg.to_bits() == served.e_avg.to_bits()
                    && direct.e_std.to_bits() == served.e_std.to_bits()
            });
            assert!(
                matched,
                "response for query {k} matches no checkpointed generation (stale blend?)"
            );
        }
    }
    let stats = eng.stats();
    assert_eq!(stats.requests, 6 * 150);
    assert_eq!(stats.rejected, 0, "spurious backpressure: {stats:?}");
    assert_eq!(stats.refreshes, SWAPS);
    // Post-swap state equals a fresh load of the final checkpoint.
    let final_sur = &generations[SWAPS];
    for k in 0..20 {
        let (f, a) = query(k);
        let served = eng.predict(&f, a).expect("serve");
        let direct = final_sur.predict(&f, a);
        assert_eq!(served.pf.to_bits(), direct.pf.to_bits());
        assert_eq!(served.e_avg.to_bits(), direct.e_avg.to_bits());
        assert_eq!(served.e_std.to_bits(), direct.e_std.to_bits());
    }
    drop(eng);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The NDJSON request log for the reproducibility cycle: predicts
/// interleaved with feedback (auto-triggering retrains at
/// `refresh_after = 4`), a forced refresh, model-info inspections, and a
/// deterministic malformed line.
fn cycle_requests() -> String {
    let mut lines = Vec::new();
    let mut id = 0u64;
    let mut push = |line: String| lines.push(line);
    let feat_json = |k: usize| serde_json::to_string(&query(k).0).expect("json");
    push("{\"id\": 0, \"op\": \"model-info\"}".to_string());
    for round in 0..2usize {
        for k in 0..4usize {
            id += 1;
            let q = round * 20 + k;
            push(format!(
                "{{\"id\": {id}, \"op\": \"predict\", \"features\": {}, \"a\": {}}}",
                feat_json(q),
                query(q).1
            ));
            id += 1;
            let fb = feedback(round * 4 + k);
            push(format!(
                "{{\"id\": {id}, \"op\": \"feedback\", \"features\": {}, \"a\": {}, \
                 \"pf\": {}, \"e_avg\": {}, \"e_std\": {}, \"tag\": \"{}\", \"seed\": {}}}",
                serde_json::to_string(&fb.features).expect("json"),
                fb.a,
                fb.observed_pf,
                fb.observed_e_avg,
                fb.observed_e_std,
                fb.instance_tag,
                fb.seed
            ));
        }
        id += 1;
        push(format!(
            "{{\"id\": {id}, \"op\": \"predict\", \"features\": {}, \"a_values\": [0.5, 1.0, 2.0]}}",
            feat_json(round + 50)
        ));
    }
    id += 1;
    push(format!("{{\"id\": {id}, \"op\": \"refresh\"}}"));
    id += 1;
    push(format!(
        "{{\"id\": {id}, \"op\": \"predict\", \"features\": {}, \"a\": 1.25}}",
        feat_json(7)
    ));
    id += 1;
    // Deterministic rejection: feedback without observations.
    push(format!(
        "{{\"id\": {id}, \"op\": \"feedback\", \"features\": {}, \"a\": 1.0}}",
        feat_json(2)
    ));
    id += 1;
    push(format!("{{\"id\": {id}, \"op\": \"model-info\"}}"));
    lines.join("\n") + "\n"
}

fn run_cycle(config: ServeConfig, dir: std::path::PathBuf) -> (String, Vec<u8>, Vec<u8>) {
    let eng = ServeEngine::with_online(
        ServeModel::Bundle(test_bundle()),
        config,
        online_config(dir.clone(), 4),
        Some(base_corpus()),
    )
    .expect("online engine");
    let mut out: Vec<u8> = Vec::new();
    serve_connection(&eng, Cursor::new(cycle_requests()), &mut out).expect("session");
    drop(eng);
    // 8 feedback records at refresh_after=4 → gens 1, 2; forced refresh
    // → gen 3.
    let g2 = std::fs::read(dir.join("ckpt-g000002.qross")).expect("gen2 checkpoint");
    let g3 = std::fs::read(dir.join("ckpt-g000003.qross")).expect("gen3 checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    (String::from_utf8(out).expect("utf-8"), g2, g3)
}

/// Acceptance criterion: the full serve → feedback → retrain → swap →
/// checkpoint cycle is bit-reproducible from `(seed, feedback log)`
/// across worker counts 1 and 4 — responses byte-for-byte, checkpoint
/// files bit-for-bit.
#[test]
fn cycle_is_bit_reproducible_across_worker_counts() {
    let (w4, w4_g2, w4_g3) = run_cycle(
        ServeConfig {
            workers: 4,
            max_batch_rows: 32,
            ..Default::default()
        },
        temp_dir("cycle_w4"),
    );
    let (w1, w1_g2, w1_g3) = run_cycle(
        ServeConfig {
            workers: 1,
            max_batch_rows: 1,
            cache_capacity: 0,
            ..Default::default()
        },
        temp_dir("cycle_w1"),
    );
    assert_eq!(
        w4, w1,
        "responses differ between 4-worker batched+cached and sequential runs"
    );
    assert_eq!(w4_g2, w1_g2, "generation-2 checkpoints differ");
    assert_eq!(w4_g3, w1_g3, "generation-3 checkpoints differ");

    // Sanity on the shared transcript: swaps landed where the log says.
    let responses: Vec<Response> = w4
        .lines()
        .map(|l| serde_json::from_str(l).expect("parseable response"))
        .collect();
    let refreshed: Vec<u64> = responses
        .iter()
        .filter(|r| r.refreshed == Some(true))
        .map(|r| r.generation.expect("generation on swap responses"))
        .collect();
    assert_eq!(refreshed, vec![1, 2, 3]);
    let last_info = responses.last().expect("final model-info");
    let info = last_info.info.as_ref().expect("info payload");
    assert_eq!(info.generation, 3);
    assert!(info.online);
    assert_eq!(info.feedback_count, Some(8));
    // The malformed feedback line was rejected deterministically.
    assert_eq!(responses.iter().filter(|r| !r.ok).count(), 1);
}

/// A serving process can restart from its own checkpoint: predictions
/// after `--model <checkpoint>` equal the swapped engine's exactly.
#[test]
fn checkpoints_are_restartable_models() {
    let dir = temp_dir("restart");
    let eng = ServeEngine::with_online(
        ServeModel::Bundle(test_bundle()),
        ServeConfig::default(),
        online_config(dir.clone(), 0),
        Some(base_corpus()),
    )
    .expect("online engine");
    for k in 0..5 {
        eng.submit_feedback(feedback(k)).expect("feedback");
    }
    eng.refresh().expect("refresh").wait().expect("swap");
    let (f, a) = query(9);
    let served = eng.predict(&f, a).expect("serve");
    drop(eng);

    let ckpt =
        SurrogateCheckpoint::load_auto(dir.join("ckpt-g000001.qross")).expect("checkpoint loads");
    let restarted = ServeEngine::new(
        ServeModel::Surrogate(Arc::new(
            Surrogate::from_state(ckpt.state).expect("state rebuilds"),
        )),
        ServeConfig::default(),
    );
    let again = restarted.predict(&f, a).expect("restarted serve");
    assert_eq!(served.pf.to_bits(), again.pf.to_bits());
    assert_eq!(served.e_avg.to_bits(), again.e_avg.to_bits());
    assert_eq!(served.e_std.to_bits(), again.e_std.to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}
