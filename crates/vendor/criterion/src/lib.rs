//! Offline, API-compatible subset of `criterion`.
//!
//! Supports the benchmark surface the workspace uses — `bench_function`,
//! `benchmark_group`, `iter`, `iter_batched`, `criterion_group!`,
//! `criterion_main!` — with a simple but honest measurement loop: warm-up,
//! then `sample_size` timed samples whose per-iteration medians and means
//! are printed as
//!
//! ```text
//! bench_name              time: [median 12.3 µs  mean 12.5 µs]
//! ```
//!
//! When invoked with `--test` (as `cargo test --benches` does for
//! `harness = false` targets) every benchmark body runs exactly once so CI
//! can smoke-test benches without paying measurement cost.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for API
/// compatibility; the offline subset re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// small per-iteration inputs
    SmallInput,
    /// large per-iteration inputs
    LargeInput,
    /// one setup per measured iteration
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group; benchmark ids are prefixed with `group/`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Overrides the sample count for the remaining benchmarks in the
    /// group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    samples: Vec<f64>, // seconds per iteration
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let iters = calibrate_iters(&mut routine);
        // Warm-up sample, discarded.
        time_batch(&mut routine, iters);
        for _ in 0..self.sample_size {
            self.samples.push(time_batch(&mut routine, iters));
        }
    }

    /// Measures `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        // Warm-up, discarded.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let mut elapsed = start.elapsed();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed = start.elapsed();
            self.samples.push(elapsed.as_secs_f64());
        }
        let _ = elapsed;
    }

    fn report(&self, name: &str) {
        if self.test_mode {
            println!("{name:<40} ok (test mode)");
            return;
        }
        if self.samples.is_empty() {
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<40} time: [median {}  mean {}]",
            format_seconds(median),
            format_seconds(mean)
        );
    }
}

/// Picks an iteration count so one sample takes ≳ 1 ms.
fn calibrate_iters<O, R: FnMut() -> O>(routine: &mut R) -> usize {
    let mut iters = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            return iters;
        }
        iters *= 2;
    }
}

/// Times `iters` runs, returning seconds per iteration.
fn time_batch<O, R: FnMut() -> O>(routine: &mut R, iters: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(routine());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.test_mode = true; // run bodies once, no timing loop
        let mut runs = 0;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs >= 1);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut group = c.benchmark_group("g");
        group.bench_function("x", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn format_spans_units() {
        assert!(format_seconds(2.0).ends_with('s'));
        assert!(format_seconds(2e-3).contains("ms"));
        assert!(format_seconds(2e-6).contains("µs"));
        assert!(format_seconds(2e-9).contains("ns"));
    }
}
