//! Hardware-degradation models: analog control error and coefficient
//! quantisation (paper appendix B).
//!
//! Appendix B shows that on both quantum annealers (DW_2000Q) and classical
//! solvers, solution quality degrades as the penalty weight grows, because
//! the *objective* part of the Hamiltonian shrinks relative to the
//! hardware's coefficient resolution:
//!
//! * Quantum annealers suffer **analog control error** — "the coefficients
//!   of the Hamiltonian implemented differ from those intended" (Barends et
//!   al.; Pearson et al.). [`AnalogNoise`] models this by rescaling the
//!   model to the hardware coefficient range and adding i.i.d. Gaussian
//!   error proportional to that full range before the wrapped solver runs.
//! * Classical solvers suffer **finite-precision arithmetic**.
//!   [`Quantizer`] rounds every coefficient to a fixed-point grid of
//!   `bits` bits spanning the coefficient range (the Digital Annealer's
//!   integer pipeline; FP error is the analogous mechanism for CPUs).
//!
//! Both wrappers report energies on the **true** model, so the measured
//! degradation is exactly "solver optimised the wrong Hamiltonian".

use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;
use qubo::QuboModel;

use crate::sample::{Sample, SampleSet};
use crate::Solver;

/// Analog-control-error wrapper: perturbs every coefficient with Gaussian
/// noise whose standard deviation is `error_rate × max|coefficient|`.
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// use solvers::{AnalogNoise, ExhaustiveSolver, Solver};
/// let mut b = QuboBuilder::new(2);
/// b.add_linear(0, -1.0);
/// let model = b.build();
/// // zero error rate: behaves exactly like the inner solver
/// let clean = AnalogNoise::new(ExhaustiveSolver::new(), 0.0);
/// assert_eq!(clean.sample(&model, 1, 0).best().unwrap().energy, -1.0);
/// ```
#[derive(Debug, Clone)]
pub struct AnalogNoise<S> {
    inner: S,
    error_rate: f64,
    name: String,
}

impl<S: Solver> AnalogNoise<S> {
    /// Wraps `inner` with relative coefficient noise `error_rate`
    /// (typical hardware values are 0.01–0.05).
    ///
    /// # Panics
    ///
    /// Panics if `error_rate` is negative or not finite.
    pub fn new(inner: S, error_rate: f64) -> Self {
        assert!(
            error_rate.is_finite() && error_rate >= 0.0,
            "error_rate must be a finite non-negative number"
        );
        let name = format!("analog({})", inner.name());
        AnalogNoise {
            inner,
            error_rate,
            name,
        }
    }

    /// The configured relative error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }

    /// Consumes the wrapper and returns the inner solver.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn perturb(&self, model: &QuboModel, seed: u64) -> QuboModel {
        if self.error_rate == 0.0 || model.max_abs_coefficient() == 0.0 {
            return model.clone();
        }
        // Hardware programs local fields and couplings through separate
        // DACs, each normalised to its own range (D-Wave: h ∈ [−2, 2],
        // J ∈ [−1, 1]); analog error is relative to the respective range.
        // Perturbing in Ising space with per-kind scales models exactly
        // that — a single QUBO-wide scale would let the (large) penalty
        // fields swamp the (small) couplings with noise.
        let ising = qubo::IsingModel::from_qubo(model);
        let h_scale = (0..ising.num_spins())
            .map(|i| ising.field(i).abs())
            .fold(0.0_f64, f64::max);
        let j_scale = ising
            .couplings()
            .iter()
            .fold(0.0_f64, |m, &(_, _, j)| m.max(j.abs()));
        let mut rng = derive_rng(seed, 0xA0A);
        let mut gauss = move || {
            let u1: f64 = rng.gen::<f64>().max(1e-300);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let fields: Vec<f64> = (0..ising.num_spins())
            .map(|i| ising.field(i) + self.error_rate * h_scale * gauss())
            .collect();
        let couplings: Vec<(u32, u32, f64)> = ising
            .couplings()
            .iter()
            .map(|&(a, b, j)| (a, b, j + self.error_rate * j_scale * gauss()))
            .collect();
        qubo::IsingModel::from_parts(ising.offset(), fields, couplings).to_qubo()
    }
}

impl<S: Solver> Solver for AnalogNoise<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet {
        let noisy = self.perturb(model, seed);
        let raw = self.inner.sample(&noisy, batch, seed);
        // Re-score assignments on the true Hamiltonian.
        SampleSet::from_samples(
            raw.into_samples()
                .into_iter()
                .map(|s| Sample {
                    energy: model.energy(&s.assignment),
                    assignment: s.assignment,
                })
                .collect(),
        )
    }
}

/// Fixed-point quantisation wrapper: rounds every coefficient to the grid
/// `step = max|coefficient| / 2^(bits−1)`.
#[derive(Debug, Clone)]
pub struct Quantizer<S> {
    inner: S,
    bits: u32,
    name: String,
}

/// Serialisable description of a quantisation setting (for experiment
/// manifests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizerConfig {
    /// coefficient bit width
    pub bits: u32,
}

impl<S: Solver> Quantizer<S> {
    /// Wraps `inner` with `bits`-bit fixed-point coefficient resolution
    /// (the production Digital Annealer quantises couplings to 16–64 bit
    /// integers).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or above 52 (beyond f64 mantissa).
    pub fn new(inner: S, bits: u32) -> Self {
        assert!((1..=52).contains(&bits), "bits must be in 1..=52");
        let name = format!("quant{}({})", bits, inner.name());
        Quantizer { inner, bits, name }
    }

    /// The configured bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Consumes the wrapper and returns the inner solver.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn quantize(&self, model: &QuboModel) -> QuboModel {
        let scale = model.max_abs_coefficient();
        if scale == 0.0 {
            return model.clone();
        }
        let step = scale / (1u64 << (self.bits - 1)) as f64;
        model.map_coefficients(|w| (w / step).round() * step)
    }
}

impl<S: Solver> Solver for Quantizer<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet {
        let coarse = self.quantize(model);
        let raw = self.inner.sample(&coarse, batch, seed);
        SampleSet::from_samples(
            raw.into_samples()
                .into_iter()
                .map(|s| Sample {
                    energy: model.energy(&s.assignment),
                    assignment: s.assignment,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::sa::SimulatedAnnealer;
    use qubo::QuboBuilder;

    /// Weighted MVC-like model: small objective coefficients (weights)
    /// plus large penalty couplings whose magnitude we can scale.
    fn mvc_like(penalty: f64) -> QuboModel {
        let weights = [0.3, 0.7, 0.5, 0.9, 0.2];
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)];
        let mut b = QuboBuilder::new(5);
        for (i, &w) in weights.iter().enumerate() {
            b.add_linear(i, w);
        }
        for &(i, j) in &edges {
            // σ (1 - u_i - u_j + u_i u_j)
            b.add_offset(penalty);
            b.add_linear(i, -penalty);
            b.add_linear(j, -penalty);
            b.add_quadratic(i, j, penalty);
        }
        b.build()
    }

    #[test]
    fn zero_noise_is_identity() {
        let m = mvc_like(2.0);
        let plain = ExhaustiveSolver::new().sample(&m, 4, 1);
        let wrapped = AnalogNoise::new(ExhaustiveSolver::new(), 0.0).sample(&m, 4, 1);
        assert_eq!(plain, wrapped);
    }

    #[test]
    fn energies_scored_on_true_model() {
        let m = mvc_like(10.0);
        let noisy = AnalogNoise::new(SimulatedAnnealer::default(), 0.2);
        for s in noisy.sample(&m, 8, 3).iter() {
            assert!((m.energy(&s.assignment) - s.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn high_penalty_with_noise_degrades_objective() {
        // The appendix-B mechanism: with noise fixed relative to the
        // largest coefficient, cranking the penalty weight must (on
        // average) worsen the solution found for the *true* model.
        let noisy = AnalogNoise::new(ExhaustiveSolver::new(), 0.05);
        let mut low_sum = 0.0;
        let mut high_sum = 0.0;
        for seed in 0..12 {
            let m_low = mvc_like(2.0);
            let m_high = mvc_like(2000.0);
            low_sum += noisy.sample(&m_low, 1, seed).best().unwrap().energy;
            high_sum += noisy.sample(&m_high, 1, seed).best().unwrap().energy;
        }
        // True optima: identical cover structure; the high-penalty model's
        // feasible optimum has the same cover weight. Compare normalised
        // against exact.
        let exact_low = ExhaustiveSolver::new().ground_state(&mvc_like(2.0)).energy;
        let exact_high = ExhaustiveSolver::new()
            .ground_state(&mvc_like(2000.0))
            .energy;
        let gap_low = low_sum / 12.0 - exact_low;
        let gap_high = high_sum / 12.0 - exact_high;
        assert!(
            gap_high > gap_low,
            "expected degradation: low {gap_low}, high {gap_high}"
        );
    }

    #[test]
    fn quantizer_rounds_to_grid() {
        let mut b = QuboBuilder::new(2);
        b.add_linear(0, 1.0);
        b.add_linear(1, 0.013);
        b.add_quadratic(0, 1, -0.49);
        let m = b.build();
        let q = Quantizer::new(ExhaustiveSolver::new(), 4);
        let coarse = q.quantize(&m);
        // step = 1.0 / 2^3 = 0.125: 0.013 → 0, −0.49 → −0.5
        assert_eq!(coarse.linear(1), 0.0);
        assert_eq!(coarse.quadratic(0, 1), -0.5);
        assert_eq!(coarse.linear(0), 1.0);
    }

    #[test]
    fn many_bits_is_nearly_identity() {
        let m = mvc_like(3.0);
        let q = Quantizer::new(ExhaustiveSolver::new(), 40);
        let coarse = q.quantize(&m);
        assert!((coarse.energy(&[1, 0, 1, 0, 1]) - m.energy(&[1, 0, 1, 0, 1])).abs() < 1e-6);
    }

    #[test]
    fn quantized_energies_scored_on_true_model() {
        let m = mvc_like(100.0);
        let q = Quantizer::new(SimulatedAnnealer::default(), 6);
        for s in q.sample(&m, 4, 5).iter() {
            assert!((m.energy(&s.assignment) - s.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn names_compose() {
        let a = AnalogNoise::new(ExhaustiveSolver::new(), 0.1);
        assert_eq!(a.name(), "analog(exhaustive)");
        let q = Quantizer::new(ExhaustiveSolver::new(), 8);
        assert_eq!(q.name(), "quant8(exhaustive)");
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn quantizer_rejects_zero_bits() {
        let _ = Quantizer::new(ExhaustiveSolver::new(), 0);
    }

    #[test]
    #[should_panic(expected = "error_rate")]
    fn analog_rejects_negative_rate() {
        let _ = AnalogNoise::new(ExhaustiveSolver::new(), -0.1);
    }
}
