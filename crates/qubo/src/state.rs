//! Incremental single-flip evaluation of QUBO states.
//!
//! Annealing-style solvers attempt millions of single-bit flips;
//! recomputing the full energy per attempt would cost O(nnz) each.
//! [`QuboState`] is the **one** incremental engine every solver in the
//! workspace routes through. It maintains, alongside the assignment `x`:
//!
//! * the cached total energy `E(x)`, and
//! * the full **flip-delta vector** `Δ_i = E(x ⊕ e_i) − E(x)` — the energy
//!   change each single-bit flip would cause.
//!
//! The contract:
//!
//! * [`QuboState::flip_delta`] is an O(1) array read;
//! * [`QuboState::flip`] commits a flip in O(degree), updating the cached
//!   energy and the deltas of the flipped variable and its neighbours;
//! * [`QuboState::assign_all`] (and [`QuboState::randomize`]) bulk-reset
//!   the assignment and rebuild both caches in one O(n + nnz) CSR pass
//!   without reallocating — this is what lets replica workers reuse one
//!   state across a whole batch chunk;
//! * after any flip sequence, the cached energy and every delta agree with
//!   a from-scratch recomputation to ≤ 1e-9 (property-tested in
//!   `crates/qubo/tests/proptest_qubo.rs`).
//!
//! The delta vector relates to the classical *local field*
//! `h_i(x) = l_i + Σ_{j≠i} w_ij x_j` by `Δ_i = (1 − 2 x_i) · h_i`, which
//! is exposed as [`QuboState::field`] for solvers that reason in field
//! terms.

use rand::Rng;

use crate::model::QuboModel;
use crate::QuboError;

/// Former name of [`QuboState`], kept for source compatibility.
pub type LocalFieldState<'m> = QuboState<'m>;

/// A binary assignment with cached energy and flip-delta vector.
///
/// # Examples
///
/// ```
/// use qubo::{QuboBuilder, QuboState};
/// let mut b = QuboBuilder::new(2);
/// b.add_linear(0, 1.0);
/// b.add_quadratic(0, 1, -3.0);
/// let m = b.build();
/// let mut s = QuboState::new(&m, vec![0, 1]);
/// assert_eq!(s.energy(), 0.0);
/// let delta = s.flip_delta(0); // turning on x0: +1 (linear) -3 (coupling)
/// assert_eq!(delta, -2.0);
/// s.flip(0);
/// assert_eq!(s.energy(), -2.0);
/// ```
#[derive(Debug, Clone)]
pub struct QuboState<'m> {
    model: &'m QuboModel,
    x: Vec<u8>,
    /// `delta[i]` = energy change of flipping bit `i` right now
    delta: Vec<f64>,
    energy: f64,
}

impl<'m> QuboState<'m> {
    /// Builds the caches for assignment `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != model.num_vars()` or any entry is not 0/1.
    pub fn new(model: &'m QuboModel, x: Vec<u8>) -> Self {
        assert_eq!(x.len(), model.num_vars(), "state length mismatch");
        let mut state = QuboState {
            model,
            x,
            delta: vec![0.0; model.num_vars()],
            energy: 0.0,
        };
        state.rebuild_caches();
        state
    }

    /// Checked constructor.
    ///
    /// # Errors
    ///
    /// Returns [`QuboError::StateLengthMismatch`] for a wrong-length
    /// assignment.
    pub fn try_new(model: &'m QuboModel, x: Vec<u8>) -> Result<Self, QuboError> {
        if x.len() != model.num_vars() {
            return Err(QuboError::StateLengthMismatch {
                expected: model.num_vars(),
                found: x.len(),
            });
        }
        Ok(Self::new(model, x))
    }

    /// Builds a uniformly random assignment.
    pub fn random<R: Rng + ?Sized>(model: &'m QuboModel, rng: &mut R) -> Self {
        let x: Vec<u8> = (0..model.num_vars()).map(|_| rng.gen_range(0..2)).collect();
        Self::new(model, x)
    }

    /// Recomputes energy and the delta vector from `self.x` in one CSR
    /// pass. O(n + nnz), allocation-free.
    ///
    /// The bounds-checked `x[j]` access below doubles as the CSR
    /// **bounds validation** that [`QuboState::flip`]'s unchecked accesses
    /// rely on: every constructor and bulk reset funnels through this
    /// method, so an out-of-range column index (possible only in a
    /// hand-crafted or deserialised model — `QuboBuilder` cannot produce
    /// one) panics here before `flip` can ever run. Do not change this
    /// loop to skip entries without adding an explicit validation pass.
    fn rebuild_caches(&mut self) {
        let model = self.model;
        let x = &self.x;
        let mut energy = model.offset();
        for i in 0..x.len() {
            assert!(x[i] <= 1, "state entries must be 0 or 1");
            let cols = model.neighbor_cols(i);
            let weights = model.neighbor_weights(i);
            let mut h = model.linear(i);
            let mut upper = 0.0; // Σ_{j>i, x_j=1} w_ij — the i < j half
            for (&j, &w) in cols.iter().zip(weights) {
                let j = j as usize;
                if x[j] != 0 {
                    h += w;
                    if j > i {
                        upper += w;
                    }
                }
            }
            if x[i] != 0 {
                energy += model.linear(i) + upper;
                self.delta[i] = -h;
            } else {
                self.delta[i] = h;
            }
        }
        self.energy = energy;
    }

    /// Replaces the assignment wholesale and rebuilds both caches without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or non-binary entries.
    pub fn assign_all(&mut self, x: &[u8]) {
        assert_eq!(x.len(), self.x.len(), "state length mismatch");
        self.x.copy_from_slice(x);
        self.rebuild_caches();
    }

    /// Draws a fresh uniformly random assignment in place (the bulk-reset
    /// path replica workers use between chunk replicas).
    pub fn randomize<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for bit in &mut self.x {
            *bit = rng.gen_range(0..2);
        }
        self.rebuild_caches();
    }

    /// The underlying model (borrow tied to the model's lifetime, not the
    /// state's, so callers can keep it across mutations).
    pub fn model(&self) -> &'m QuboModel {
        self.model
    }

    /// Current assignment.
    pub fn assignment(&self) -> &[u8] {
        &self.x
    }

    /// Current cached energy.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Current value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> u8 {
        self.x[i]
    }

    /// Local field of variable `i`:
    /// `h_i = l_i + Σ_{j≠i} w_ij x_j = (1 − 2 x_i) · Δ_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn field(&self, i: usize) -> f64 {
        (1.0 - 2.0 * self.x[i] as f64) * self.delta[i]
    }

    /// Energy change that flipping bit `i` *would* cause (O(1) read of the
    /// maintained delta vector).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn flip_delta(&self, i: usize) -> f64 {
        self.delta[i]
    }

    /// The full flip-delta vector.
    pub fn flip_deltas(&self) -> &[f64] {
        &self.delta
    }

    /// Commits a flip of bit `i`, updating the energy and the deltas of
    /// `i` and its neighbours in O(degree).
    ///
    /// Returns the applied energy delta.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn flip(&mut self, i: usize) -> f64 {
        let applied = self.delta[i];
        // Sign mask of (1 − 2 x_i) *before* the flip: turning a bit on
        // raises every neighbour's field by +w, turning it off by −w.
        let flip_sign = (self.x[i] as u64) << 63;
        self.x[i] ^= 1;
        self.energy += applied;
        self.delta[i] = -applied;
        let cols = self.model.neighbor_cols(i);
        let weights = self.model.neighbor_weights(i);
        for (&j, &w) in cols.iter().zip(weights) {
            let j = j as usize;
            // Neighbour j's delta moves by (1 − 2 x_j)·(1 − 2 x_i_old)·w.
            // Both factors are ±1, so fold them into w's sign bit instead
            // of paying two int→float converts and multiplies per entry.
            //
            // SAFETY: every CSR column index was bounds-checked against
            // `num_vars` by `rebuild_caches` (all constructors and bulk
            // resets funnel through it — see its doc comment; this covers
            // deserialised models, not just `QuboBuilder` output), and
            // `x`/`delta` both have length `num_vars`. This is the single
            // hottest loop in every solver; the two eliminated bounds
            // checks are measurable on the SA sweep.
            unsafe {
                let xj = *self.x.get_unchecked(j);
                let mask = flip_sign ^ ((xj as u64) << 63);
                *self.delta.get_unchecked_mut(j) += f64::from_bits(w.to_bits() ^ mask);
            }
        }
        applied
    }

    /// Replaces the assignment wholesale (alias of [`QuboState::assign_all`]
    /// accepting an owned vector, kept for source compatibility).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn reset(&mut self, x: Vec<u8>) {
        self.assign_all(&x);
    }

    /// Consumes the state and returns the assignment.
    pub fn into_assignment(self) -> Vec<u8> {
        self.x
    }

    /// Recomputes the energy from scratch (O(nnz)) — used by tests and
    /// debug assertions to validate the incremental bookkeeping.
    pub fn recompute_energy(&self) -> f64 {
        self.model.energy(&self.x)
    }

    /// Rebuilds the cached energy **and** the whole delta vector from
    /// scratch (O(n + nnz)), discarding any rounding drift accumulated by
    /// long flip sequences. Very long walks (e.g. exhaustive enumeration
    /// of 2²⁴ states) call this periodically so accumulated error resets
    /// instead of growing with the walk length.
    pub fn resync(&mut self) -> f64 {
        self.rebuild_caches();
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuboBuilder;
    use mathkit::rng::seeded_rng;
    use rand::Rng;

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = seeded_rng(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.gen_range(-2.0..2.0));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f64>() < 0.4 {
                    b.add_quadratic(i, j, rng.gen_range(-1.5..1.5));
                }
            }
        }
        b.build()
    }

    #[test]
    fn fields_match_definition() {
        let m = random_model(8, 3);
        let mut rng = seeded_rng(11);
        let s = QuboState::random(&m, &mut rng);
        for i in 0..8 {
            let mut h = m.linear(i);
            for j in 0..8 {
                if j != i && s.bit(j) == 1 {
                    h += m.quadratic(i, j);
                }
            }
            assert!((s.field(i) - h).abs() < 1e-12, "field {i}");
        }
    }

    #[test]
    fn delta_matches_full_recompute() {
        let m = random_model(10, 5);
        let mut rng = seeded_rng(17);
        let mut s = QuboState::random(&m, &mut rng);
        for step in 0..200 {
            let i = rng.gen_range(0..10);
            let predicted = s.flip_delta(i);
            let before = s.recompute_energy();
            s.flip(i);
            let after = s.recompute_energy();
            assert!(
                (after - before - predicted).abs() < 1e-9,
                "step {step}, var {i}"
            );
            assert!((s.energy() - after).abs() < 1e-9, "cached energy drift");
        }
    }

    #[test]
    fn delta_vector_consistent_after_flips() {
        let m = random_model(9, 21);
        let mut rng = seeded_rng(31);
        let mut s = QuboState::random(&m, &mut rng);
        for _ in 0..100 {
            s.flip(rng.gen_range(0..9));
            // Every maintained delta must equal the brute-force delta.
            for i in 0..9 {
                let mut flipped = s.assignment().to_vec();
                flipped[i] ^= 1;
                let want = m.energy(&flipped) - s.recompute_energy();
                assert!((s.flip_delta(i) - want).abs() < 1e-9, "delta {i}");
            }
        }
    }

    #[test]
    fn flip_twice_restores() {
        let m = random_model(6, 9);
        let mut rng = seeded_rng(23);
        let mut s = QuboState::random(&m, &mut rng);
        let e0 = s.energy();
        let x0 = s.assignment().to_vec();
        s.flip(2);
        s.flip(2);
        assert_eq!(s.assignment(), &x0[..]);
        assert!((s.energy() - e0).abs() < 1e-12);
    }

    #[test]
    fn reset_rebuilds() {
        let m = random_model(5, 1);
        let mut s = QuboState::new(&m, vec![0; 5]);
        s.flip(0);
        s.reset(vec![1; 5]);
        assert_eq!(s.assignment(), &[1, 1, 1, 1, 1]);
        assert!((s.energy() - m.energy(&[1; 5])).abs() < 1e-12);
    }

    #[test]
    fn assign_all_matches_fresh_state() {
        let m = random_model(7, 13);
        let mut rng = seeded_rng(29);
        let mut reused = QuboState::new(&m, vec![0; 7]);
        for _ in 0..20 {
            let x: Vec<u8> = (0..7).map(|_| rng.gen_range(0..2)).collect();
            reused.assign_all(&x);
            let fresh = QuboState::new(&m, x);
            assert_eq!(reused.assignment(), fresh.assignment());
            assert!((reused.energy() - fresh.energy()).abs() < 1e-12);
            for i in 0..7 {
                assert!((reused.flip_delta(i) - fresh.flip_delta(i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn randomize_matches_random_constructor() {
        let m = random_model(8, 2);
        let mut rng_a = seeded_rng(55);
        let mut rng_b = seeded_rng(55);
        let mut reused = QuboState::new(&m, vec![0; 8]);
        reused.randomize(&mut rng_a);
        let fresh = QuboState::random(&m, &mut rng_b);
        assert_eq!(reused.assignment(), fresh.assignment());
        assert!((reused.energy() - fresh.energy()).abs() < 1e-12);
    }

    #[test]
    fn try_new_length_check() {
        let m = random_model(4, 2);
        assert!(QuboState::try_new(&m, vec![0; 3]).is_err());
        assert!(QuboState::try_new(&m, vec![0; 4]).is_ok());
    }

    #[test]
    #[should_panic(expected = "0 or 1")]
    fn rejects_non_binary() {
        let m = random_model(2, 2);
        let _ = QuboState::new(&m, vec![0, 2]);
    }
}
