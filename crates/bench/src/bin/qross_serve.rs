//! `qross-serve` — the serving daemon of the train-once / serve-many
//! loop: load a model once, answer prediction requests forever.
//!
//! Three transports, two wire formats, one protocol (`bench::protocol`):
//! every transport sniffs each connection's first bytes and speaks either
//! NDJSON (lines starting with `{` or whitespace) or QBIN, the
//! length-framed binary format (`QBIN` magic, raw little-endian f64
//! rows, CRC-32 trailer — see ARTIFACTS.md). Both formats share one
//! port and one engine; responses carry identical f64 bit patterns.
//!
//! * **stdio** (default): requests on stdin, responses on stdout, exit at
//!   EOF. Composable — `qross-serve --model m.qross < requests.ndjson`.
//! * **TCP event loop** (`--listen ADDR`): one nonblocking thread
//!   multiplexes every connection (`bench::net`) over the shared
//!   engine — concurrent clients' requests micro-batch together,
//!   NDJSON and QBIN clients side by side. `--max-conns` caps
//!   simultaneous connections.
//! * **TCP thread-per-connection** (`--listen-threaded ADDR`): the
//!   older blocking path, kept as a differential oracle for the event
//!   loop — both must produce byte-identical sessions.
//!
//! Multi-tenancy: repeatable `--tenant NAME=WEIGHT[:QUOTA]` assigns
//! weighted-fair shares (and optional pending-row quotas) to requests
//! tagged with a `tenant` field; `--tenant default=...` reconfigures the
//! untagged class.
//!
//! The model may be a full `.qross` bundle (TSP: enables the `tsp`
//! upload op) or a bare surrogate snapshot (MVC/QAP: `predict` only),
//! binary or JSON, sniffed by magic bytes.
//!
//! All diagnostics go to stderr; stdout carries protocol bytes only.

use std::sync::Arc;

use bench::net::{serve_event_loop, AcceptBackoff, EventLoopConfig};
use bench::protocol::{serve_connection, serve_connection_aborting};
use bench::serve::usage_exit;
use qross::dataset::SurrogateDataset;
use qross::online::{OnlineConfig, SurrogateCheckpoint};
use qross::pipeline::{CollectedCorpus, TrainedQross};
use qross::serve::{ServeConfig, ServeEngine, ServeModel, TenantClass, TenantPolicy};
use qross::surrogate::{Surrogate, SurrogateState};
use qross_store::Artifact;

const USAGE: &str = "qross-serve --model PATH [--listen ADDR | --listen-threaded ADDR] \
                     [--metrics-listen ADDR] \
                     [--max-conns N] [--tenant NAME=WEIGHT[:QUOTA]]... [--workers N] \
                     [--batch ROWS] [--queue ROWS] [--cache ENTRIES] \
                     [--online] [--refresh-after N] [--checkpoint-dir DIR] \
                     [--corpus PATH] [--online-seed N] [--online-epochs N]";

enum Listen {
    Stdio,
    EventLoop(String),
    Threaded(String),
}

struct ServeCli {
    model: String,
    listen: Listen,
    /// Prometheus exposition endpoint (`GET /metrics`), on its own port
    /// so scrapes never share a socket with protocol bytes.
    metrics_listen: Option<String>,
    max_conns: usize,
    policy: TenantPolicy,
    config: ServeConfig,
    online: bool,
    online_config: OnlineConfig,
    corpus: Option<String>,
}

/// Parses one `--tenant NAME=WEIGHT[:QUOTA]` spec into the policy.
/// `NAME=default` reconfigures the untagged class.
fn parse_tenant_spec(policy: &mut TenantPolicy, spec: &str) {
    let bad = |why: &str| -> ! {
        usage_exit(
            USAGE,
            &format!("bad --tenant value `{spec}` ({why}); expected NAME=WEIGHT[:QUOTA]"),
        )
    };
    let Some((name, rest)) = spec.split_once('=') else {
        bad("missing `=`");
    };
    if name.is_empty() {
        bad("empty tenant name");
    }
    let (weight_str, quota_str) = match rest.split_once(':') {
        Some((w, q)) => (w, Some(q)),
        None => (rest, None),
    };
    let Ok(weight) = weight_str.parse::<u32>() else {
        bad("weight is not a number");
    };
    if weight == 0 {
        bad("weight must be at least 1");
    }
    let quota_rows = match quota_str {
        Some(q) => match q.parse::<usize>() {
            Ok(q) => q,
            Err(_) => bad("quota is not a number"),
        },
        None => 0,
    };
    let class = TenantClass { weight, quota_rows };
    if name == "default" {
        policy.default_class = class;
    } else if let Some(slot) = policy.classes.iter_mut().find(|(n, _)| n == name) {
        slot.1 = class;
    } else {
        policy.classes.push((name.to_string(), class));
    }
}

fn parse_cli() -> ServeCli {
    let mut cli = ServeCli {
        model: String::new(),
        listen: Listen::Stdio,
        metrics_listen: None,
        max_conns: 0,
        policy: TenantPolicy::default(),
        config: ServeConfig::default(),
        online: false,
        online_config: OnlineConfig::default(),
        corpus: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        if flag == "--help" || flag == "-h" {
            usage_exit(USAGE, "");
        }
        if flag == "--online" {
            cli.online = true;
            i += 1;
            continue;
        }
        if !matches!(
            flag.as_str(),
            "--model"
                | "--listen"
                | "--listen-threaded"
                | "--metrics-listen"
                | "--max-conns"
                | "--tenant"
                | "--workers"
                | "--batch"
                | "--queue"
                | "--cache"
                | "--refresh-after"
                | "--checkpoint-dir"
                | "--corpus"
                | "--online-seed"
                | "--online-epochs"
        ) {
            usage_exit(USAGE, &format!("unknown argument `{flag}`"));
        }
        i += 1;
        let Some(value) = argv
            .get(i)
            .filter(|v| !v.is_empty() && !v.starts_with("--"))
        else {
            usage_exit(USAGE, &format!("flag `{flag}` needs a value"));
        };
        let parse_count = |what: &str, v: &str| -> usize {
            v.parse::<usize>()
                .unwrap_or_else(|_| usage_exit(USAGE, &format!("bad {what} value `{v}`")))
        };
        match flag.as_str() {
            "--model" => cli.model = value.clone(),
            "--listen" => cli.listen = Listen::EventLoop(value.clone()),
            "--listen-threaded" => cli.listen = Listen::Threaded(value.clone()),
            "--metrics-listen" => cli.metrics_listen = Some(value.clone()),
            "--max-conns" => cli.max_conns = parse_count("--max-conns", value).max(1),
            "--tenant" => parse_tenant_spec(&mut cli.policy, value),
            "--workers" => cli.config.workers = parse_count("--workers", value),
            "--batch" => {
                cli.config.max_batch_rows = parse_count("--batch", value).max(1);
            }
            "--queue" => cli.config.queue_capacity = parse_count("--queue", value).max(1),
            "--cache" => cli.config.cache_capacity = parse_count("--cache", value),
            "--refresh-after" => {
                cli.online_config.refresh_after = parse_count("--refresh-after", value);
            }
            "--checkpoint-dir" => {
                cli.online_config.checkpoint_dir = Some(std::path::PathBuf::from(value));
            }
            "--corpus" => cli.corpus = Some(value.clone()),
            "--online-seed" => {
                cli.online_config.seed = value.parse::<u64>().unwrap_or_else(|_| {
                    usage_exit(USAGE, &format!("bad --online-seed value `{value}`"))
                });
            }
            "--online-epochs" => {
                cli.online_config.epochs = parse_count("--online-epochs", value);
            }
            _ => unreachable!("flag already screened"),
        }
        i += 1;
    }
    if cli.model.is_empty() {
        usage_exit(USAGE, "--model is required");
    }
    cli
}

/// Loads a bundle if the artifact is one, otherwise a bare surrogate
/// snapshot (v1) or an online checkpoint (`SURR` v2 with lineage) —
/// a serving process can resume from its own checkpoints.
fn load_model(path: &str) -> Result<ServeModel, String> {
    let bundle_err = match TrainedQross::load(path) {
        Ok(trained) => return Ok(ServeModel::Bundle(Arc::new(trained))),
        Err(e) => e,
    };
    let state_err = match SurrogateState::load_auto(path) {
        Ok(state) => return surrogate_model(state),
        Err(e) => e,
    };
    match SurrogateCheckpoint::load_auto(path) {
        Ok(checkpoint) => {
            if let Some(l) = &checkpoint.lineage {
                eprintln!(
                    "qross-serve: checkpoint lineage: generation {} (parent {}, \
                     retrain {}, {} feedback records)",
                    l.generation, l.parent_generation, l.retrain_index, l.feedback_count
                );
            }
            surrogate_model(checkpoint.state)
        }
        // Every attempt failed: report each decoder's own diagnosis —
        // a corrupt checkpoint must surface its precise error, not the
        // unrelated kind-mismatch from the bundle attempt.
        Err(checkpoint_err) => Err(format!(
            "loading model failed — as bundle: {bundle_err}; as surrogate snapshot: \
             {state_err}; as checkpoint: {checkpoint_err}"
        )),
    }
}

fn surrogate_model(state: qross::surrogate::SurrogateState) -> Result<ServeModel, String> {
    Surrogate::from_state(state)
        .map(|surrogate| ServeModel::Surrogate(Arc::new(surrogate)))
        .map_err(|e| format!("restoring surrogate failed: {e}"))
}

/// Loads the original training corpus merged under every online
/// fine-tune: a bare `DSET` dataset or a full `CORP` collect-stage
/// corpus (its dataset is used).
fn load_corpus(path: &str) -> Result<SurrogateDataset, String> {
    if let Ok(ds) = SurrogateDataset::load_auto(path) {
        return Ok(ds);
    }
    CollectedCorpus::load_auto(path)
        .map(|corpus| corpus.dataset)
        .map_err(|e| format!("loading corpus failed: {e}"))
}

fn main() {
    let cli = parse_cli();
    let model = load_model(&cli.model).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let kind = if model.trained().is_some() {
        "bundle"
    } else {
        "surrogate"
    };
    let feature_dim = model.feature_dim();
    let base = cli.corpus.as_deref().map(|path| {
        load_corpus(path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    });
    let engine = if cli.online {
        ServeEngine::with_online_tenants(
            model,
            cli.config,
            cli.policy.clone(),
            cli.online_config.clone(),
            base,
        )
        .unwrap_or_else(|e| {
            eprintln!("error: starting online engine failed: {e}");
            std::process::exit(1);
        })
    } else {
        if base.is_some() {
            eprintln!("warning: --corpus is only used with --online; ignoring it");
        }
        ServeEngine::with_tenants(model, cli.config, cli.policy.clone())
    };
    for (name, class) in &cli.policy.classes {
        eprintln!(
            "qross-serve: tenant {name}: weight {}, quota {}",
            class.weight,
            if class.quota_rows == 0 {
                "unlimited".to_string()
            } else {
                class.quota_rows.to_string()
            }
        );
    }
    eprintln!(
        "qross-serve: loaded {kind} from {} ({feature_dim} features); {engine:?}{}",
        cli.model,
        if cli.online {
            format!(
                "; online (refresh-after {}, checkpoints {})",
                cli.online_config.refresh_after,
                cli.online_config
                    .checkpoint_dir
                    .as_ref()
                    .map(|d| d.display().to_string())
                    .unwrap_or_else(|| "disabled".to_string())
            )
        } else {
            String::new()
        }
    );

    // The metrics endpoint thread outlives every listen mode, so the
    // engine moves behind an Arc; protocol paths keep borrowing it.
    let engine = Arc::new(engine);
    if let Some(addr) = &cli.metrics_listen {
        let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot listen on {addr} for metrics: {e}");
            std::process::exit(1);
        });
        // Force lazily-created series to register now, so the first
        // scrape lists every metric even before traffic touches it.
        bench::protocol::register_protocol_metrics();
        solvers::metrics::register_metrics();
        eprintln!("qross-serve: metrics on http://{addr}/metrics");
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || bench::net::serve_metrics_http(&engine, listener));
    }

    match cli.listen {
        Listen::Stdio => {
            // StdinLock is !Send and the staging thread owns the reader,
            // so buffer the Send-able handle instead of locking.
            let stdin = std::io::BufReader::new(std::io::stdin());
            let stdout = std::io::stdout();
            if let Err(e) = serve_connection(&engine, stdin, stdout.lock()) {
                eprintln!("error: stdio session failed: {e}");
                std::process::exit(1);
            }
        }
        Listen::EventLoop(addr) => {
            let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
                eprintln!("error: cannot listen on {addr}: {e}");
                std::process::exit(1);
            });
            eprintln!("qross-serve: listening on {addr} (event loop)");
            let config = EventLoopConfig {
                max_conns: cli.max_conns,
                ..EventLoopConfig::default()
            };
            if let Err(e) = serve_event_loop(&engine, listener, config) {
                eprintln!("error: event loop failed: {e}");
                std::process::exit(1);
            }
        }
        Listen::Threaded(addr) => {
            let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
                eprintln!("error: cannot listen on {addr}: {e}");
                std::process::exit(1);
            });
            eprintln!("qross-serve: listening on {addr} (thread per connection)");
            let mut backoff = AcceptBackoff::new();
            std::thread::scope(|scope| {
                loop {
                    let stream = match listener.accept() {
                        Ok((stream, _peer)) => {
                            backoff.reset();
                            stream
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            // A persistent accept failure (EMFILE et al.)
                            // used to spin this loop at 100% CPU; back off
                            // with a bounded, exponentially growing sleep.
                            let delay = backoff.failure();
                            eprintln!("warning: accept failed: {e} (retrying in {delay:?})");
                            std::thread::sleep(delay);
                            continue;
                        }
                    };
                    let peer = stream
                        .peer_addr()
                        .map(|p| p.to_string())
                        .unwrap_or_else(|_| "<unknown>".to_string());
                    let engine = &engine;
                    scope.spawn(move || {
                        eprintln!("qross-serve: {peer} connected");
                        let reader = match stream.try_clone() {
                            Ok(clone) => std::io::BufReader::new(clone),
                            Err(e) => {
                                eprintln!("warning: {peer}: clone failed: {e}");
                                return;
                            }
                        };
                        // If the client stops reading responses, the write
                        // side errors first — shut the socket down so the
                        // blocked reader exits too instead of leaking this
                        // thread until the client's next line.
                        let abort = {
                            let stream = stream.try_clone();
                            move || {
                                if let Ok(s) = &stream {
                                    let _ = s.shutdown(std::net::Shutdown::Both);
                                }
                            }
                        };
                        let writer = std::io::BufWriter::new(stream);
                        match serve_connection_aborting(engine, reader, writer, abort) {
                            Ok(()) => eprintln!("qross-serve: {peer} done"),
                            Err(e) => eprintln!("warning: {peer}: session failed: {e}"),
                        }
                    });
                }
            });
        }
    }
    let stats = engine.stats();
    eprintln!(
        "qross-serve: {} requests ({} rows, {} cache hits, {} batches, {} rejected, \
         {} feedback, {} refreshes, final generation {})",
        stats.requests,
        stats.rows,
        stats.cache_hits,
        stats.batches,
        stats.rejected,
        stats.feedback,
        stats.refreshes,
        engine.generation()
    );
}
