//! Quickstart: train a solver surrogate on a small synthetic TSP family,
//! then let QROSS propose relaxation parameters for an unseen instance —
//! the full paper pipeline in one file.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qross_repro::problems::tsp::heuristics;
use qross_repro::qross::collect::observe;
use qross_repro::qross::pipeline::{Pipeline, PipelineConfig, A_DOMAIN};
use qross_repro::qross::strategy::{ComposedStrategy, ProposalStrategy};
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};

fn main() -> Result<(), qross_repro::qross::QrossError> {
    // 1. A stochastic QUBO solver — the black box whose behaviour the
    //    surrogate will learn. (Swap in DigitalAnnealer or Qbsolv freely.)
    let solver = SimulatedAnnealer::new(SaConfig {
        sweeps: 128,
        ..Default::default()
    });

    // 2. Train the surrogate on a family of synthetic instances
    //    (generation → solver-data collection → neural training).
    println!("training surrogate on synthetic TSP instances…");
    let trained = Pipeline::new(PipelineConfig::quick()).try_run(&solver)?;
    println!(
        "  dataset: {} rows from {} instances; final Pf-loss {:.4}",
        trained.dataset_len,
        trained.train_encodings.len(),
        trained.report.pf.final_train_loss().unwrap_or(f64::NAN)
    );

    // 3. Take an unseen instance and let QROSS propose parameters.
    let encoding = &trained.test_encodings[0];
    let features = trained.featurizer.extract(encoding.qubo_instance());
    let batch = 24;
    let mut strategy = ComposedStrategy::new(&trained.surrogate, features, A_DOMAIN, batch, 7);

    let (_, reference) = heuristics::reference_tour(encoding.fitness_instance(), 8);
    println!(
        "\nunseen instance `{}` ({} cities), near-optimal tour length {:.3}",
        encoding.fitness_instance().name(),
        encoding.num_cities(),
        reference
    );
    println!("trial |       A  |   Pf  | best fitness | gap");
    let mut best = f64::INFINITY;
    for trial in 0..8 {
        let a = strategy.propose(trial);
        let outcome = observe(encoding, &solver, a, batch, 1000 + trial as u64);
        strategy.observe(a, &outcome);
        if let Some(f) = outcome.best_fitness {
            best = best.min(f);
        }
        let gap = if best.is_finite() {
            format!("{:+.2}%", (best / reference - 1.0) * 100.0)
        } else {
            "  n/a".to_string()
        };
        let phase = match trial {
            0 => "MFS",
            1 | 2 => "PBS",
            _ => "OFS",
        };
        println!(
            "  {:>2}  | {:>7.4} | {:>5.2} | {:>12} | {:>7}  ({phase})",
            trial + 1,
            a,
            outcome.pf,
            outcome
                .best_fitness
                .map(|f| format!("{f:.3}"))
                .unwrap_or_else(|| "infeasible".to_string()),
            gap,
        );
    }
    println!(
        "\nThe first (MFS) proposal needed zero solver calls to choose its A —\n\
         that is the point of QROSS: the surrogate already knows this instance family."
    );

    // 4. The surrogate can also sketch the whole landscape without any
    //    solver call (paper §1: "predict the landscape of the objective
    //    function ... without resorting to the expensive QUBO solving step").
    let features = trained.featurizer.extract(encoding.qubo_instance());
    let landscape = qross_repro::qross::landscape::PredictedLandscape::compute(
        &trained.surrogate,
        &features,
        A_DOMAIN,
        64,
        batch,
    );
    println!("\npredicted landscape (no solver calls):");
    print!("{}", landscape.render_ascii(64, 10));
    if let Some((a, v)) = landscape.predicted_optimum() {
        println!("predicted optimal A = {a:.3} (expected min fitness {v:.3})");
    }
    Ok(())
}
