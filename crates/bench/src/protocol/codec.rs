//! Sans-IO halves of the NDJSON session.
//!
//! [`SessionCodec`] turns arbitrary byte chunks into request lines — the
//! caller owns the socket/pipe/file; the codec only ever sees `&[u8]`,
//! so any chunking (1-byte reads, jumbo frames, whatever the kernel
//! hands a nonblocking read) decodes to the identical line sequence.
//! [`ResponseEmitter`] is the matching output half: it holds staged
//! responses in request order and serializes each one as soon as it —
//! and everything before it — is complete, into a caller-owned byte
//! buffer.
//!
//! Both halves are driven by the blocking stdio/TCP path
//! ([`super::serve_connection`]) and the nonblocking event loop
//! (`bench::net`), which is what makes "byte-identical at any
//! connection count" a structural property rather than a test hope.

use std::collections::VecDeque;
use std::io::Write as _;

use super::{complete, render, Staged};

/// Longest accepted request line (bytes, newline excluded). A client
/// streaming one endless line used to grow the read buffer without
/// bound — a reject-never-OOM violation; past this cap the line is
/// dropped (not buffered) and answered with a typed bad-request error.
/// 1 MiB comfortably fits every legitimate op, including TSPLIB uploads
/// of the sizes this repo trains on.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// One decoded item from the request byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecLine {
    /// a complete request line (newline stripped, CRLF-tolerant)
    Line(String),
    /// a line longer than the codec's cap; its bytes were discarded
    Oversized {
        /// the cap that was exceeded ([`MAX_LINE_BYTES`] by default)
        limit: usize,
    },
    /// a complete line that was not valid UTF-8
    InvalidUtf8,
}

/// Incremental request-line decoder.
///
/// Mirrors `BufRead::lines` for well-formed input: splits on `\n`,
/// strips one trailing `\r` from terminated lines, and yields a final
/// unterminated line at EOF ([`SessionCodec::finish`]). Unlike
/// `lines()`, it is bounded ([`MAX_LINE_BYTES`]) and survives invalid
/// UTF-8 by reporting it as an item instead of an error.
#[derive(Debug)]
pub struct SessionCodec {
    buf: Vec<u8>,
    /// prefix of `buf` already scanned and known newline-free — feeds
    /// resume scanning where they left off, so a line arriving in many
    /// small chunks costs O(len), not O(len²)
    scanned: usize,
    /// inside an over-limit line: drop bytes until the next newline
    discarding: bool,
    limit: usize,
}

impl Default for SessionCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionCodec {
    pub fn new() -> Self {
        Self::with_limit(MAX_LINE_BYTES)
    }

    /// A codec with a custom line cap (tests; production uses
    /// [`MAX_LINE_BYTES`]).
    pub fn with_limit(limit: usize) -> Self {
        SessionCodec {
            buf: Vec::new(),
            scanned: 0,
            discarding: false,
            limit: limit.max(1),
        }
    }

    /// Appends a chunk of request bytes. Any split boundary is fine.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.discarding {
            // Drop oversized-line bytes instead of buffering them; keep
            // only what follows the terminating newline.
            if let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
                self.discarding = false;
                self.buf.extend_from_slice(&bytes[pos + 1..]);
            }
            return;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (bounded by the line cap plus one read
    /// chunk — the backpressure quantity an event loop may want).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The next complete item, or `None` when more bytes are needed.
    pub fn next_line(&mut self) -> Option<CodecLine> {
        let pos = self.buf[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| p + self.scanned);
        match pos {
            Some(pos) => {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                self.scanned = 0;
                line.pop(); // the '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                Some(self.classify(line))
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > self.limit {
                    // The partial line is already over the cap: report it
                    // now and stop buffering its remainder.
                    self.buf.clear();
                    self.scanned = 0;
                    self.discarding = true;
                    return Some(CodecLine::Oversized { limit: self.limit });
                }
                None
            }
        }
    }

    /// EOF: yields the final unterminated line, if any. Mirrors
    /// `BufRead::lines`, which keeps a trailing `\r` when no `\n`
    /// follows it.
    pub fn finish(&mut self) -> Option<CodecLine> {
        if self.discarding || self.buf.is_empty() {
            self.buf.clear();
            self.scanned = 0;
            self.discarding = false;
            return None;
        }
        let line = std::mem::take(&mut self.buf);
        self.scanned = 0;
        Some(self.classify(line))
    }

    fn classify(&self, line: Vec<u8>) -> CodecLine {
        if line.len() > self.limit {
            return CodecLine::Oversized { limit: self.limit };
        }
        match String::from_utf8(line) {
            Ok(s) => CodecLine::Line(s),
            Err(_) => CodecLine::InvalidUtf8,
        }
    }
}

/// Order-preserving response serializer.
///
/// Staged responses are pushed in request order; [`ResponseEmitter::pump`]
/// appends every response that is complete *and* at the head of the line
/// to an output buffer as NDJSON. Responses never reorder: a slow
/// prediction holds back everything staged after it, exactly like the
/// blocking writer loop it replaces.
#[derive(Debug, Default)]
pub struct ResponseEmitter {
    queue: VecDeque<Staged>,
}

impl ResponseEmitter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages the next response (in request order).
    pub fn push(&mut self, staged: Staged) {
        self.queue.push_back(staged);
    }

    /// Responses staged but not yet emitted — the connection's pipelining
    /// depth, which drivers bound to stop a flooding client.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Appends every head-of-line-complete response to `out` (one NDJSON
    /// line each) without blocking; returns how many lines were emitted.
    ///
    /// # Errors
    ///
    /// Serialization failure only (cannot happen for the fixed response
    /// schema).
    pub fn pump(&mut self, out: &mut Vec<u8>) -> std::io::Result<usize> {
        let mut emitted = 0usize;
        while let Some(front) = self.queue.front_mut() {
            let line = match front {
                Staged::Ready(_) | Staged::Raw(_) => {
                    render(self.queue.pop_front().expect("front exists"))?
                }
                Staged::Pending { pending, .. } => match pending.try_wait() {
                    None => break,
                    Some(outcome) => {
                        let Some(Staged::Pending { head, a_values, .. }) = self.queue.pop_front()
                        else {
                            unreachable!("front was Pending");
                        };
                        super::render_response(&complete(head, a_values, outcome))?
                    }
                },
            };
            writeln!(out, "{line}").expect("Vec<u8> writes cannot fail");
            emitted += 1;
        }
        Ok(emitted)
    }
}
