//! # solvers — QUBO solver substrates
//!
//! The paper evaluates QROSS against two production solvers — the Fujitsu
//! Digital Annealer and D-Wave's Qbsolv (run in simulator mode) — plus plain
//! Simulated Annealing on CPU. None of these is available as a Rust
//! dependency, so this crate implements each from its published algorithm
//! (see DESIGN.md §2 for the substitution argument):
//!
//! * [`sa`] — [`SimulatedAnnealer`]: Metropolis single-flip annealing with a
//!   geometric β schedule auto-scaled to the model's coefficient range;
//! * [`da`] — [`DigitalAnnealer`]: the parallel-trial, dynamic-escape-offset
//!   Monte Carlo of Aramon et al. (2019);
//! * [`tabu`] — [`TabuSearch`]: 1-flip tabu with aspiration, also the
//!   qbsolv subsolver;
//! * [`qbsolv`] — [`Qbsolv`]: the decomposition loop of Booth et al. (2017);
//! * [`exhaustive`] — [`ExhaustiveSolver`]: exact enumeration for ≤ 24
//!   variables, the ground-truth oracle in tests;
//! * [`noise`] — solver wrappers injecting *analog control error* and
//!   coefficient quantisation (paper appendix B);
//! * [`sample`] — [`Sample`]/[`SampleSet`]: the batch-of-solutions result
//!   format whose statistics (`Pf`, `Eavg`, `Estd`) the surrogate learns.
//!
//! Every solver implements the [`Solver`] trait: given a QUBO and a seed it
//! returns a `SampleSet` of `batch` stochastic solutions, mirroring how the
//! paper's solvers return 128 solutions per call.
//!
//! # Shared incremental state
//!
//! All solvers drive the **same** flip engine, [`qubo::QuboState`], over
//! the model's CSR layout (see the `qubo` crate docs): reading a candidate
//! flip's energy delta is an O(1) array read, committing a flip is
//! O(degree), and the cached energy/delta caches agree with a full
//! recomputation to ≤ 1e-9 over arbitrary flip sequences. No solver calls
//! the full O(n + couplings) `model.energy()` inside its sweep loop — full
//! evaluations appear only at batch boundaries (e.g. the noise wrappers
//! re-scoring solutions on the true Hamiltonian) and in test oracles. Even
//! [`ExhaustiveSolver`] enumerates by Gray code, one incremental flip per
//! assignment.
//!
//! # Replica parallelism and determinism
//!
//! Batches fan out through [`parallel::parallel_map_with`]: replicas are
//! split into contiguous chunks, one worker thread per chunk, and each
//! worker allocates its solver state **once** and bulk-resets it
//! (`assign_all`/`randomize`) between replicas. Every replica derives its
//! RNG stream from `(seed, replica_index)`, so output is bit-identical
//! across thread counts, including the sequential fallback — sampling is a
//! pure function of `(model, batch, seed)`.
//!
//! # Examples
//!
//! ```
//! use qubo::QuboBuilder;
//! use solvers::{sa::SimulatedAnnealer, Solver};
//!
//! let mut b = QuboBuilder::new(2);
//! b.add_linear(0, -1.0);
//! b.add_quadratic(0, 1, 2.0);
//! let model = b.build();
//! let solver = SimulatedAnnealer::default();
//! let set = solver.sample(&model, 8, 42);
//! assert_eq!(set.len(), 8);
//! // ground state is x = [1, 0] with energy -1
//! assert_eq!(set.best().unwrap().energy, -1.0);
//! ```

pub mod da;
pub mod exhaustive;
pub mod metrics;
pub mod noise;
pub mod parallel;
pub mod qbsolv;
pub mod sa;
pub mod sample;
pub mod schedule;
pub mod tabu;

pub use da::DigitalAnnealer;
pub use exhaustive::ExhaustiveSolver;
pub use noise::{AnalogNoise, Quantizer};
pub use qbsolv::Qbsolv;
pub use sa::SimulatedAnnealer;
pub use sample::{Sample, SampleSet};
pub use tabu::TabuSearch;

use qubo::QuboModel;

/// Default lockstep lane width for the SA/DA batched replica kernels.
pub const DEFAULT_REPLICA_LANES: usize = 8;

thread_local! {
    static REPLICA_LANES: std::cell::Cell<usize> =
        const { std::cell::Cell::new(DEFAULT_REPLICA_LANES) };
}

/// Lockstep lane width the SA/DA replica loops will use for batches
/// dispatched from the calling thread: replicas are grouped into chunks of
/// this many [`qubo::ReplicaBatch`] lanes and advanced over one shared CSR
/// traversal per chunk.
///
/// The width is a **pure performance knob**: every lane runs the unchanged
/// per-replica algorithm on its own RNG stream, so sample output is
/// bit-identical at any width (CI replays collection at 1-vs-N lanes and
/// diffs dataset bytes). Solvers read the width once, on the caller's
/// thread, before fanning out to workers.
pub fn replica_lanes() -> usize {
    REPLICA_LANES.with(|c| c.get())
}

/// Overrides [`replica_lanes`] on the calling thread; `0` restores
/// [`DEFAULT_REPLICA_LANES`]. Used by determinism tests and benches to pin
/// the lane width; production code should leave the default.
pub fn set_replica_lanes(width: usize) {
    let width = if width == 0 {
        DEFAULT_REPLICA_LANES
    } else {
        width
    };
    REPLICA_LANES.with(|c| c.set(width));
}

/// A stochastic QUBO solver: returns a batch of candidate solutions.
///
/// Implementations must be deterministic given `(model, batch, seed)` so
/// that experiments are reproducible, and must report energies measured on
/// the *input* model even if they internally perturb coefficients (see
/// [`noise`]).
pub trait Solver: Send + Sync {
    /// Short stable identifier used in experiment reports (e.g. `"da"`).
    fn name(&self) -> &str;

    /// Draws `batch` solutions for `model` using the given seed.
    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet;
}

impl<S: Solver + ?Sized> Solver for &S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet {
        (**self).sample(model, batch, seed)
    }
}

impl<S: Solver + ?Sized> Solver for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet {
        (**self).sample(model, batch, seed)
    }
}
