//! Property-based tests for the artifact store: arbitrary datasets and
//! network snapshots must round-trip through the binary `.qross` codec
//! **bit-exactly** (NaN payloads included), truncated or corrupted input
//! must yield typed errors (never panics), and the JSON fallback must
//! decode to the same structs as the binary format.

use proptest::prelude::*;

use problems::{TspEncoding, TspInstance};
use qross_repro::neural::layers::LayerSpec;
use qross_repro::neural::network::{MlpBuilder, MlpState};
use qross_repro::qross::dataset::{DatasetRow, Scalers, SurrogateDataset};
use qross_repro::qross::pipeline::PipelineConfig;
use qross_repro::qross::surrogate::{Surrogate, SurrogateState};
use qross_repro::qross::{CollectedCorpus, FeaturizerSpec};
use qross_store::{Artifact, StoreError};

/// Arbitrary `f64` *bit patterns* — covers NaNs with payloads, signed
/// zeros, infinities and subnormals, not just sampled finite reals.
fn f64_bits_strategy() -> impl Strategy<Value = f64> {
    (0u32..=u32::MAX, 0u32..=u32::MAX)
        .prop_map(|(hi, lo)| f64::from_bits(((hi as u64) << 32) | lo as u64))
}

/// Arbitrary dataset rows (finite, as the dataset invariants demand).
fn dataset_strategy() -> impl Strategy<Value = SurrogateDataset> {
    (1usize..5).prop_flat_map(|feat_dim| {
        proptest::collection::vec(
            (
                proptest::collection::vec(-1e9..1e9f64, feat_dim),
                1e-6..1e6f64,
                0.0..1.0f64,
                -1e9..1e9f64,
                0.0..1e9f64,
            ),
            0..12,
        )
        .prop_map(move |rows| {
            let mut ds = SurrogateDataset::new(feat_dim);
            for (features, a, pf, e_avg, e_std) in rows {
                ds.push(DatasetRow {
                    features,
                    a,
                    pf,
                    e_avg,
                    e_std,
                });
            }
            ds
        })
    })
}

/// Arbitrary MLP snapshots with *arbitrary-bit* weights: shapes are
/// consistent (the decoder validates them) but the values include NaNs
/// and infinities, exercising the bit-exactness claim where it matters.
fn mlp_state_strategy() -> impl Strategy<Value = MlpState> {
    (1usize..4, 1usize..4).prop_flat_map(|(input, output)| mlp_state_with(input, output))
}

/// Like [`mlp_state_strategy`] but with pinned input/output widths —
/// surrogate snapshots must satisfy the cross-head shape invariants the
/// decoder now enforces (heads share the scalers' input width; Pf emits
/// 1 value, the energy head 2).
fn mlp_state_with(input: usize, output: usize) -> impl Strategy<Value = MlpState> {
    (1usize..4, 0u8..3).prop_flat_map(move |(hidden, act)| {
        (
            proptest::collection::vec(f64_bits_strategy(), input * hidden),
            proptest::collection::vec(f64_bits_strategy(), hidden),
            proptest::collection::vec(f64_bits_strategy(), hidden * output),
            proptest::collection::vec(f64_bits_strategy(), output),
        )
            .prop_map(move |(w1, b1, w2, b2)| {
                let activation = match act {
                    0 => LayerSpec::Relu,
                    1 => LayerSpec::Sigmoid,
                    _ => LayerSpec::Tanh,
                };
                MlpState {
                    input_dim: input,
                    layers: vec![
                        LayerSpec::Dense {
                            input,
                            output: hidden,
                            weights: w1,
                            bias: b1,
                        },
                        activation,
                        LayerSpec::Dense {
                            input: hidden,
                            output,
                            weights: w2,
                            bias: b2,
                        },
                    ],
                }
            })
    })
}

/// Arbitrary coordinate lists for one TSP instance (finite, so the
/// derived distance matrix is a valid instance).
fn coords_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((-1e4..1e4f64, -1e4..1e4f64), 4..10)
}

/// Deterministic surrogate over the statistical featurizer's 24
/// features, driving the `predict_grid` leg of the sparse↔dense
/// equivalence property.
fn grid_surrogate() -> Surrogate {
    let z = |m: f64, s: f64| qross_repro::mathkit::stats::ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(25)
            .dense(8)
            .relu()
            .dense(1)
            .sigmoid()
            .build(17)
            .to_state(),
        e_net: MlpBuilder::new(25)
            .dense(8)
            .relu()
            .dense(2)
            .build(18)
            .to_state(),
        scalers: Scalers {
            features: (0..24)
                .map(|c| z(0.1 * c as f64, 1.0 + 0.03 * c as f64))
                .collect(),
            log_a: z(0.0, 1.0),
            e_avg: z(5.0, 2.0),
            e_std: z(1.0, 0.5),
        },
    };
    Surrogate::from_state(state).expect("consistent state")
}

/// Bit-level equality for states (`==` on f64 treats NaN ≠ NaN, so the
/// derived `PartialEq` cannot certify NaN round-trips).
fn states_bit_equal(a: &MlpState, b: &MlpState) -> bool {
    if a.input_dim != b.input_dim || a.layers.len() != b.layers.len() {
        return false;
    }
    a.layers
        .iter()
        .zip(&b.layers)
        .all(|(la, lb)| match (la, lb) {
            (
                LayerSpec::Dense {
                    input: ia,
                    output: oa,
                    weights: wa,
                    bias: ba,
                },
                LayerSpec::Dense {
                    input: ib,
                    output: ob,
                    weights: wb,
                    bias: bb,
                },
            ) => {
                ia == ib
                    && oa == ob
                    && wa.len() == wb.len()
                    && ba.len() == bb.len()
                    && wa.iter().zip(wb).all(|(x, y)| x.to_bits() == y.to_bits())
                    && ba.iter().zip(bb).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (LayerSpec::Relu, LayerSpec::Relu) => true,
            (LayerSpec::Sigmoid, LayerSpec::Sigmoid) => true,
            (LayerSpec::Tanh, LayerSpec::Tanh) => true,
            _ => false,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary round-trip of arbitrary datasets is bit-exact, and the JSON
    /// fallback decodes to an equal struct (cross-format agreement).
    #[test]
    fn dataset_roundtrips_binary_and_json(ds in dataset_strategy()) {
        let bytes = ds.to_store_bytes();
        let back = SurrogateDataset::from_store_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &ds);
        for (ra, rb) in ds.rows().iter().zip(back.rows()) {
            prop_assert_eq!(ra.a.to_bits(), rb.a.to_bits());
            prop_assert_eq!(ra.pf.to_bits(), rb.pf.to_bits());
            for (x, y) in ra.features.iter().zip(&rb.features) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Cross-format: binary and JSON decode to equal structs.
        let json = serde_json::to_string(&ds).unwrap();
        let from_json: SurrogateDataset = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&from_json, &back);
    }

    /// Binary round-trip of arbitrary network snapshots is bit-exact,
    /// NaN payloads included.
    #[test]
    fn mlp_state_roundtrips_bit_exact(state in mlp_state_strategy()) {
        let bytes = state.to_store_bytes();
        let back = MlpState::from_store_bytes(&bytes).unwrap();
        prop_assert!(states_bit_equal(&state, &back));
    }

    /// Surrogate snapshots (two nets + scalers) round-trip bit-exactly.
    /// One scaler feature → heads consume 2 inputs; Pf emits 1 value and
    /// the energy head 2 (the decoder's cross-section invariants).
    #[test]
    fn surrogate_state_roundtrips(
        pf_net in mlp_state_with(2, 1),
        e_net in mlp_state_with(2, 2),
        scaler_bits in proptest::collection::vec(f64_bits_strategy(), 8),
    ) {
        let z = |m: f64, s: f64| qross_repro::mathkit::stats::ZScore { mean: m, std: s };
        let state = SurrogateState {
            pf_net,
            e_net,
            scalers: Scalers {
                features: vec![z(scaler_bits[0], scaler_bits[1])],
                log_a: z(scaler_bits[2], scaler_bits[3]),
                e_avg: z(scaler_bits[4], scaler_bits[5]),
                e_std: z(scaler_bits[6], scaler_bits[7]),
            },
        };
        let back = SurrogateState::from_store_bytes(&state.to_store_bytes()).unwrap();
        prop_assert!(states_bit_equal(&state.pf_net, &back.pf_net));
        prop_assert!(states_bit_equal(&state.e_net, &back.e_net));
        prop_assert_eq!(
            state.scalers.log_a.mean.to_bits(),
            back.scalers.log_a.mean.to_bits()
        );
        prop_assert_eq!(
            state.scalers.e_std.std.to_bits(),
            back.scalers.e_std.std.to_bits()
        );
    }

    /// Every possible truncation of a valid container is rejected with a
    /// typed error — no panic, no partial decode.
    #[test]
    fn truncation_never_panics(ds in dataset_strategy(), frac in 0.0..1.0f64) {
        let bytes = ds.to_store_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let result = SurrogateDataset::from_store_bytes(&bytes[..cut.min(bytes.len() - 1)]);
        prop_assert!(result.is_err());
    }

    /// Flipping any single payload byte is caught (CRC or structural
    /// validation) with a typed error — no panic, no silent acceptance.
    #[test]
    fn corruption_never_panics(
        ds in dataset_strategy().prop_filter("need payload", |d| !d.is_empty()),
        byte_frac in 0.0..1.0f64,
        flip in 1u8..=255,
    ) {
        let mut bytes = ds.to_store_bytes();
        let idx = ((bytes.len() as f64) * byte_frac) as usize % bytes.len();
        bytes[idx] ^= flip;
        match SurrogateDataset::from_store_bytes(&bytes) {
            // Either the corruption is caught...
            Err(
                StoreError::BadMagic
                | StoreError::UnsupportedVersion { .. }
                | StoreError::WrongKind { .. }
                | StoreError::MissingSection { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Truncated { .. }
                | StoreError::Corrupt { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            // ...or the flip hit a table byte whose reinterpretation is
            // still self-consistent (e.g. swapping two section-table
            // entries' order fields); then the decode must at least have
            // produced a *valid* dataset under the type's invariants.
            Ok(decoded) => {
                prop_assert!(decoded
                    .rows()
                    .iter()
                    .all(|r| r.a > 0.0 && r.a.is_finite()));
            }
        }
    }

    /// Sparse (coordinate) instance storage is an encoding detail, not a
    /// model change: a corpus round-tripped through the v2 sparse layout
    /// and through the legacy dense v1 layout reconstructs bit-identical
    /// distance matrices, features and grid predictions for arbitrary
    /// coordinate instances.
    #[test]
    fn sparse_and_dense_instance_storage_agree_bit_for_bit(
        all_coords in proptest::collection::vec(coords_strategy(), 1..4),
    ) {
        let train: Vec<TspInstance> = all_coords
            .iter()
            .enumerate()
            .map(|(k, coords)| TspInstance::from_coords(&format!("p{k}"), coords))
            .collect();
        let corpus = CollectedCorpus {
            config: PipelineConfig::micro(),
            featurizer: FeaturizerSpec::Statistical,
            train_instances: train.clone(),
            test_instances: Vec::new(),
            dataset: SurrogateDataset::new(24),
        };
        let sparse = CollectedCorpus::from_store_bytes(&corpus.to_store_bytes()).unwrap();
        let dense = CollectedCorpus::from_store_bytes(&corpus.to_v1_bytes()).unwrap();
        let featurizer = corpus.featurizer.build();
        let surrogate = grid_surrogate();
        let grid = [0.25, 1.0, 4.0];
        let matrix_bits = |inst: &TspInstance| -> Vec<u64> {
            inst.matrix().as_slice().iter().map(|x| x.to_bits()).collect()
        };
        let feature_bits = |f: &[f64]| -> Vec<u64> { f.iter().map(|x| x.to_bits()).collect() };
        for ((orig, s), d) in train.iter().zip(&sparse.train_instances).zip(&dense.train_instances) {
            // Encoding: both storage forms rebuild the exact matrix.
            prop_assert_eq!(matrix_bits(orig), matrix_bits(s));
            prop_assert_eq!(matrix_bits(orig), matrix_bits(d));
            // Provenance: v2 keeps the coordinates, v1 cannot carry them.
            prop_assert!(s.coords().is_some());
            prop_assert!(d.coords().is_none());
            // Features through the real preprocessing pipeline.
            let feats = |inst: &TspInstance| {
                featurizer.extract(TspEncoding::preprocessed(inst.clone()).qubo_instance())
            };
            let (fo, fs, fd) = (feats(orig), feats(s), feats(d));
            prop_assert_eq!(feature_bits(&fo), feature_bits(&fs));
            prop_assert_eq!(feature_bits(&fo), feature_bits(&fd));
            // Grid predictions off the reconstructed instances.
            let po = surrogate.predict_grid(&fo, &grid);
            for (reconstructed, reference) in [&fs, &fd]
                .iter()
                .map(|f| surrogate.predict_grid(f, &grid))
                .flat_map(|preds| preds.into_iter().zip(po.iter().copied()).collect::<Vec<_>>())
            {
                prop_assert_eq!(reconstructed.pf.to_bits(), reference.pf.to_bits());
                prop_assert_eq!(reconstructed.e_avg.to_bits(), reference.e_avg.to_bits());
                prop_assert_eq!(reconstructed.e_std.to_bits(), reference.e_std.to_bits());
            }
        }
    }
}
