//! Cross-crate property-based tests: invariants that must hold for *any*
//! instance/tour/assignment, spanning problems × qubo × solvers.

use proptest::prelude::*;

use qross_repro::problems::tsp::preprocess::Mvodm;
use qross_repro::problems::{MvcInstance, RelaxableProblem, TspEncoding, TspInstance};

/// Random planar instances with 4–8 cities.
fn instance_strategy() -> impl Strategy<Value = TspInstance> {
    proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 4..9).prop_filter_map(
        "degenerate coords",
        |coords| {
            // Reject duplicate points (zero distances break strict checks).
            for (i, a) in coords.iter().enumerate() {
                for b in coords.iter().skip(i + 1) {
                    if (a.0 - b.0).abs() < 1e-6 && (a.1 - b.1).abs() < 1e-6 {
                        return None;
                    }
                }
            }
            Some(TspInstance::from_coords("prop", &coords))
        },
    )
}

/// A permutation of 0..n derived from a shuffle seed.
fn tour_for(n: usize, shuffle_seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut tour: Vec<usize> = (0..n).collect();
    let mut rng = qross_repro::mathkit::rng::seeded_rng(shuffle_seed);
    tour.shuffle(&mut rng);
    tour
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// encode → decode is the identity on tours; encoded tours are feasible
    /// with zero constraint penalty, and their QUBO energy at any A equals
    /// the (preprocessed) tour length.
    #[test]
    fn tsp_encode_decode_roundtrip(
        inst in instance_strategy(),
        shuffle_seed in 0u64..1000,
        a in 0.1..10.0f64,
    ) {
        let n = inst.num_cities();
        let enc = TspEncoding::new(inst);
        let tour = tour_for(n, shuffle_seed);
        let x = enc.encode_tour(&tour);
        prop_assert_eq!(enc.decode_tour(&x).unwrap(), tour.clone());
        prop_assert!(enc.is_feasible(&x));
        prop_assert!(enc.constraint_penalty(&x).abs() < 1e-9);
        let q = enc.to_qubo(a);
        let length = enc.fitness_instance().tour_length(&tour);
        prop_assert!((q.energy(&x) - length).abs() < 1e-6);
        prop_assert!((enc.fitness(&x).unwrap() - length).abs() < 1e-9);
    }

    /// Infeasible assignments always pay a positive penalty that grows
    /// with A.
    #[test]
    fn tsp_infeasible_penalty_positive_and_monotone(
        inst in instance_strategy(),
        flip_bit in 0usize..16,
        a in 0.1..10.0f64,
        extra in 0.1..10.0f64,
    ) {
        let n = inst.num_cities();
        let enc = TspEncoding::new(inst);
        // Corrupt a valid tour by clearing one set bit.
        let tour: Vec<usize> = (0..n).collect();
        let mut x = enc.encode_tour(&tour);
        let set_positions: Vec<usize> =
            x.iter().enumerate().filter(|(_, &b)| b == 1).map(|(i, _)| i).collect();
        let kill = set_positions[flip_bit % set_positions.len()];
        x[kill] = 0;
        prop_assert!(!enc.is_feasible(&x));
        prop_assert!(enc.fitness(&x).is_none());
        let p = enc.constraint_penalty(&x);
        prop_assert!(p > 0.0);
        let e1 = enc.to_qubo(a).energy(&x);
        let e2 = enc.to_qubo(a + extra).energy(&x);
        prop_assert!(e2 > e1);
    }

    /// Tour length is invariant under rotation and reversal of the tour —
    /// and so are the encodings' fitness values.
    #[test]
    fn tour_symmetries(
        inst in instance_strategy(),
        shuffle_seed in 0u64..1000,
        rot in 0usize..8,
    ) {
        let n = inst.num_cities();
        let enc = TspEncoding::new(inst.clone());
        let tour = tour_for(n, shuffle_seed);
        let mut rotated = tour.clone();
        rotated.rotate_left(rot % n);
        let mut reversed = tour.clone();
        reversed.reverse();
        let l = inst.tour_length(&tour);
        prop_assert!((inst.tour_length(&rotated) - l).abs() < 1e-9);
        prop_assert!((inst.tour_length(&reversed) - l).abs() < 1e-9);
        let f = enc.fitness(&enc.encode_tour(&tour)).unwrap();
        let fr = enc.fitness(&enc.encode_tour(&rotated)).unwrap();
        prop_assert!((f - fr).abs() < 1e-9);
    }

    /// MVODM shifts every tour by the same constant (Held–Karp invariance)
    /// and never increases the off-diagonal variance.
    #[test]
    fn mvodm_invariances(
        inst in instance_strategy(),
        s1 in 0u64..1000,
        s2 in 0u64..1000,
    ) {
        let mv = Mvodm::fit(&inst);
        let flat = mv.transform(&inst);
        let n = inst.num_cities();
        let t1 = tour_for(n, s1);
        let t2 = tour_for(n, s2);
        let d1 = inst.tour_length(&t1) - flat.tour_length(&t1);
        let d2 = inst.tour_length(&t2) - flat.tour_length(&t2);
        prop_assert!((d1 - d2).abs() < 1e-6, "shifts differ: {} vs {}", d1, d2);
        let var_before = qross_repro::problems::tsp::preprocess::off_diagonal_variance(&inst);
        let var_after = qross_repro::problems::tsp::preprocess::off_diagonal_variance(&flat);
        prop_assert!(var_after <= var_before + 1e-9);
    }

    /// MVC QUBO identity: energy == cover weight + σ × uncovered edges,
    /// for arbitrary graphs and assignments.
    #[test]
    fn mvc_energy_identity(
        n in 3usize..10,
        edge_seed in 0u64..500,
        assign_bits in 0u32..1024,
        sigma in 0.5..50.0f64,
    ) {
        use rand::Rng;
        let mut rng = qross_repro::mathkit::rng::seeded_rng(edge_seed);
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if rng.gen::<f64>() < 0.5 {
                    edges.push((i, j));
                }
            }
        }
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
        let graph = MvcInstance::new("prop", weights, edges).unwrap();
        let x: Vec<u8> = (0..n).map(|k| ((assign_bits >> k) & 1) as u8).collect();
        let q = graph.to_qubo(sigma);
        let want = graph.cover_weight(&x) + sigma * graph.uncovered_edges(&x) as f64;
        prop_assert!((q.energy(&x) - want).abs() < 1e-9);
        prop_assert_eq!(graph.is_feasible(&x), graph.uncovered_edges(&x) == 0);
    }

    /// The batched surrogate grid equals the scalar predict pointwise to
    /// ≤ 1e-12, for arbitrary features and candidate-A grids (each matrix
    /// row is accumulated independently, so batching must not change a
    /// single bit of the maths).
    #[test]
    fn surrogate_grid_matches_pointwise(
        feature in 0.0..1.0f64,
        a_values in proptest::collection::vec(0.02..20.0f64, 1..32),
    ) {
        let sur = shared_surrogate();
        let grid = sur.predict_grid(&[feature], &a_values);
        prop_assert_eq!(grid.len(), a_values.len());
        for (k, &a) in a_values.iter().enumerate() {
            let single = sur.predict(&[feature], a);
            prop_assert!((grid[k].pf - single.pf).abs() <= 1e-12);
            prop_assert!((grid[k].e_avg - single.e_avg).abs() <= 1e-12);
            prop_assert!((grid[k].e_std - single.e_std).abs() <= 1e-12);
        }
    }
}

/// One surrogate trained once for the whole property-test binary, on a
/// clean synthetic sigmoid world.
fn shared_surrogate() -> &'static qross_repro::qross::Surrogate {
    use qross_repro::qross::dataset::{DatasetRow, SurrogateDataset};
    use qross_repro::qross::surrogate::SurrogateConfig;
    use std::sync::OnceLock;
    static SURROGATE: OnceLock<qross_repro::qross::Surrogate> = OnceLock::new();
    SURROGATE.get_or_init(|| {
        let mut ds = SurrogateDataset::new(1);
        for g in 0..8 {
            let feature = g as f64 / 8.0;
            for k in 0..12 {
                let ln_a = -3.5 + 7.0 * k as f64 / 11.0;
                ds.push(DatasetRow {
                    features: vec![feature],
                    a: ln_a.exp(),
                    pf: qross_repro::mathkit::special::sigmoid(3.0 * (ln_a - feature)),
                    e_avg: 5.0 + (ln_a - feature).tanh(),
                    e_std: 0.8,
                });
            }
        }
        let cfg = SurrogateConfig {
            hidden: 16,
            epochs: 120,
            val_fraction: 0.0,
            ..Default::default()
        };
        qross_repro::qross::Surrogate::train(&ds, &cfg).unwrap().0
    })
}
