//! Conversion between QUBO and Ising forms.
//!
//! Annealing hardware is usually specified in Ising variables
//! `s ∈ {−1, +1}` with Hamiltonian `H(s) = Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j
//! + offset`. The substitution `x_i = (1 + s_i)/2` maps a QUBO onto it:
//!
//! * `J_ij = w_ij / 4`
//! * `h_i = l_i / 2 + Σ_j w_ij / 4`
//! * `offset += Σ_i l_i / 2 + Σ_{i<j} w_ij / 4`
//!
//! The analog-control-error experiment (paper appendix B) perturbs
//! Hamiltonian coefficients the way hardware would — in Ising space — so the
//! round-trip here is exercised by the noise model.

use serde::{Deserialize, Serialize};

use crate::model::{QuboBuilder, QuboModel};

/// An Ising model `H(s) = Σ h_i s_i + Σ_{i<j} J_ij s_i s_j + offset` over
/// spins `s ∈ {−1,+1}^n`.
///
/// # Examples
///
/// ```
/// use qubo::{QuboBuilder, IsingModel};
/// let mut b = QuboBuilder::new(2);
/// b.add_quadratic(0, 1, 4.0);
/// let q = b.build();
/// let ising = IsingModel::from_qubo(&q);
/// // Energies agree under x = (1+s)/2.
/// assert!((ising.energy(&[1, 1]) - q.energy(&[1, 1])).abs() < 1e-12);
/// assert!((ising.energy(&[-1, 1]) - q.energy(&[0, 1])).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsingModel {
    offset: f64,
    fields: Vec<f64>,
    /// couplings as `(i, j, J_ij)` with `i < j`
    couplings: Vec<(u32, u32, f64)>,
}

impl IsingModel {
    /// Assembles a model from explicit parts (used by the hardware-noise
    /// wrappers that perturb fields and couplings independently).
    ///
    /// # Panics
    ///
    /// Panics if a coupling references a spin out of range or is not of
    /// the form `i < j`.
    pub fn from_parts(offset: f64, fields: Vec<f64>, couplings: Vec<(u32, u32, f64)>) -> Self {
        let n = fields.len();
        for &(i, j, _) in &couplings {
            assert!(
                (i as usize) < n && (j as usize) < n && i < j,
                "invalid coupling ({i}, {j}) for {n} spins"
            );
        }
        IsingModel {
            offset,
            fields,
            couplings,
        }
    }

    /// Converts a QUBO into Ising form.
    #[allow(clippy::needless_range_loop)] // i indexes fields and the model
    pub fn from_qubo(q: &QuboModel) -> Self {
        let n = q.num_vars();
        let mut offset = q.offset();
        let mut fields = vec![0.0; n];
        let mut couplings = Vec::with_capacity(q.num_couplings());
        for i in 0..n {
            let l = q.linear(i);
            fields[i] += l / 2.0;
            offset += l / 2.0;
        }
        for (i, j, w) in q.couplings() {
            couplings.push((i as u32, j as u32, w / 4.0));
            fields[i] += w / 4.0;
            fields[j] += w / 4.0;
            offset += w / 4.0;
        }
        IsingModel {
            offset,
            fields,
            couplings,
        }
    }

    /// Converts back to a QUBO (inverse of [`IsingModel::from_qubo`]).
    pub fn to_qubo(&self) -> QuboModel {
        // x = (1+s)/2  ⇔  s = 2x − 1:
        // h s → 2h x − h;  J s_i s_j → 4J x_i x_j − 2J x_i − 2J x_j + J.
        let n = self.fields.len();
        let mut b = QuboBuilder::new(n);
        let mut offset = self.offset;
        for (i, &h) in self.fields.iter().enumerate() {
            b.add_linear(i, 2.0 * h);
            offset -= h;
        }
        for &(i, j, jw) in &self.couplings {
            b.add_quadratic(i as usize, j as usize, 4.0 * jw);
            b.add_linear(i as usize, -2.0 * jw);
            b.add_linear(j as usize, -2.0 * jw);
            offset += jw;
        }
        b.add_offset(offset);
        b.build()
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.fields.len()
    }

    /// Constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Local field on spin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn field(&self, i: usize) -> f64 {
        self.fields[i]
    }

    /// Couplings as `(i, j, J_ij)` with `i < j`.
    pub fn couplings(&self) -> &[(u32, u32, f64)] {
        &self.couplings
    }

    /// Hamiltonian value of a spin configuration (`entries ∈ {−1, +1}`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or a spin outside `{−1, +1}`.
    pub fn energy(&self, s: &[i8]) -> f64 {
        assert_eq!(s.len(), self.num_spins(), "spin length mismatch");
        assert!(
            s.iter().all(|&v| v == 1 || v == -1),
            "spins must be -1 or +1"
        );
        let mut e = self.offset;
        for (i, &h) in self.fields.iter().enumerate() {
            e += h * s[i] as f64;
        }
        for &(i, j, jw) in &self.couplings {
            e += jw * s[i as usize] as f64 * s[j as usize] as f64;
        }
        e
    }

    /// Largest absolute coefficient (field or coupling).
    pub fn max_abs_coefficient(&self) -> f64 {
        let h = self.fields.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
        let j = self
            .couplings
            .iter()
            .fold(0.0_f64, |m, &(_, _, w)| m.max(w.abs()));
        h.max(j)
    }
}

/// Maps a binary assignment to spins (`0 → −1`, `1 → +1`).
pub fn binary_to_spins(x: &[u8]) -> Vec<i8> {
    x.iter().map(|&b| if b == 0 { -1 } else { 1 }).collect()
}

/// Maps spins back to binaries (`−1 → 0`, `+1 → 1`).
pub fn spins_to_binary(s: &[i8]) -> Vec<u8> {
    s.iter().map(|&v| if v > 0 { 1 } else { 0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuboBuilder;
    use mathkit::rng::seeded_rng;
    use rand::Rng;

    fn random_qubo(n: usize, seed: u64) -> QuboModel {
        let mut rng = seeded_rng(seed);
        let mut b = QuboBuilder::new(n);
        b.add_offset(rng.gen_range(-1.0..1.0));
        for i in 0..n {
            b.add_linear(i, rng.gen_range(-2.0..2.0));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f64>() < 0.5 {
                    b.add_quadratic(i, j, rng.gen_range(-1.0..1.0));
                }
            }
        }
        b.build()
    }

    #[test]
    fn energies_agree_exhaustively() {
        let q = random_qubo(6, 4);
        let ising = IsingModel::from_qubo(&q);
        for bits in 0..64u16 {
            let x: Vec<u8> = (0..6).map(|k| ((bits >> k) & 1) as u8).collect();
            let s = binary_to_spins(&x);
            assert!(
                (ising.energy(&s) - q.energy(&x)).abs() < 1e-10,
                "bits={bits}"
            );
        }
    }

    #[test]
    fn roundtrip_preserves_energies() {
        let q = random_qubo(5, 77);
        let back = IsingModel::from_qubo(&q).to_qubo();
        for bits in 0..32u16 {
            let x: Vec<u8> = (0..5).map(|k| ((bits >> k) & 1) as u8).collect();
            assert!((back.energy(&x) - q.energy(&x)).abs() < 1e-10);
        }
    }

    #[test]
    fn spin_binary_maps_are_inverse() {
        let x = vec![0, 1, 1, 0, 1];
        assert_eq!(spins_to_binary(&binary_to_spins(&x)), x);
        let s = vec![-1, 1, -1];
        assert_eq!(binary_to_spins(&spins_to_binary(&s)), s);
    }

    #[test]
    fn ferromagnetic_pair() {
        // Pure coupling x0 x1 with w=4 → J=1, h_i=1, offset=1.
        let mut b = QuboBuilder::new(2);
        b.add_quadratic(0, 1, 4.0);
        let ising = IsingModel::from_qubo(&b.build());
        assert_eq!(ising.couplings(), &[(0, 1, 1.0)]);
        assert_eq!(ising.field(0), 1.0);
        assert_eq!(ising.field(1), 1.0);
        assert_eq!(ising.offset(), 1.0);
    }

    #[test]
    fn max_abs_coefficient() {
        let mut b = QuboBuilder::new(2);
        b.add_linear(0, -6.0);
        b.add_quadratic(0, 1, 4.0);
        let ising = IsingModel::from_qubo(&b.build());
        // fields: h0 = -3 + 1 = -2, h1 = 1; J = 1 → max 2
        assert_eq!(ising.max_abs_coefficient(), 2.0);
    }

    #[test]
    #[should_panic(expected = "spins")]
    fn rejects_invalid_spin() {
        let q = random_qubo(2, 1);
        let ising = IsingModel::from_qubo(&q);
        let _ = ising.energy(&[0, 1]);
    }
}
