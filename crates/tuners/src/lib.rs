//! # tuners — baseline hyper-parameter optimisers
//!
//! The paper compares QROSS against three "representative optimisation
//! methods" (§5.1): Random Search, Bayesian Optimisation (GPyOpt-style
//! Gaussian process with Expected Improvement) and the Tree-structured
//! Parzen Estimator of Hyperopt. This crate implements all three behind a
//! common ask/tell interface over a bounded 1-D search domain (the
//! relaxation parameter `A ∈ [1, 100]` in the experiments).
//!
//! All tuners **minimise** the observed objective and are deterministic
//! given their seed.
//!
//! # Examples
//!
//! ```
//! use tuners::{random::RandomSearch, Tuner};
//! let mut t = RandomSearch::new(0.0, 10.0, 42);
//! for _ in 0..20 {
//!     let a = t.ask();
//!     assert!((0.0..=10.0).contains(&a));
//!     t.tell(a, (a - 3.0).powi(2));
//! }
//! let (best_a, best_y) = t.best().unwrap();
//! assert!((best_a - 3.0).abs() < 3.0);
//! assert!(best_y >= 0.0);
//! ```

pub mod bayesopt;
pub mod random;
pub mod tpe;

pub use bayesopt::BayesOpt;
pub use random::RandomSearch;
pub use tpe::Tpe;

/// One observed trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// evaluated parameter
    pub x: f64,
    /// observed objective (lower is better)
    pub y: f64,
}

/// Sequential model-based optimiser over a bounded scalar domain.
///
/// The caller loop is: `ask` for a candidate, evaluate it (one QUBO-solver
/// call in the experiments), `tell` the result. Objectives must be finite —
/// encode infeasible trials as a large finite penalty before telling.
pub trait Tuner: Send {
    /// Short identifier used in experiment reports.
    fn name(&self) -> &str;

    /// Proposes the next parameter to evaluate.
    fn ask(&mut self) -> f64;

    /// Records the objective observed at `x`.
    ///
    /// # Panics
    ///
    /// Implementations panic on non-finite `y` (the experiment harness
    /// must encode infeasibility as a finite penalty).
    fn tell(&mut self, x: f64, y: f64);

    /// All observations so far, in evaluation order.
    fn observations(&self) -> &[Observation];

    /// Best (lowest-objective) observation so far.
    fn best(&self) -> Option<(f64, f64)> {
        self.observations()
            .iter()
            .min_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
            .map(|o| (o.x, o.y))
    }
}

/// Shared validation for `tell` implementations.
pub(crate) fn validate_observation(lo: f64, hi: f64, x: f64, y: f64) {
    assert!(
        y.is_finite(),
        "objective must be finite (got {y}); encode infeasibility as a finite penalty"
    );
    assert!(
        x.is_finite() && x >= lo - 1e-9 && x <= hi + 1e-9,
        "parameter {x} outside domain [{lo}, {hi}]"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic multimodal objective on [0, 100] with the global
    /// minimum at x* ≈ 23.
    pub(crate) fn test_objective(x: f64) -> f64 {
        let base = ((x - 23.0) / 18.0).powi(2);
        let ripple = 0.15 * (x * 0.45).sin();
        base + ripple
    }

    /// All three tuners should land substantially closer to the optimum
    /// than the worst point of the domain within 25 trials.
    #[test]
    fn all_tuners_make_progress() {
        let tuners: Vec<Box<dyn Tuner>> = vec![
            Box::new(RandomSearch::new(0.0, 100.0, 5)),
            Box::new(BayesOpt::new(0.0, 100.0, 5)),
            Box::new(Tpe::new(0.0, 100.0, 5)),
        ];
        for mut t in tuners {
            for _ in 0..25 {
                let x = t.ask();
                let y = test_objective(x);
                t.tell(x, y);
            }
            let (bx, by) = t.best().unwrap();
            assert!(
                by < test_objective(80.0),
                "{}: best {by} at {bx} did not beat a bad baseline point",
                t.name()
            );
        }
    }

    /// Model-based tuners should, on average over seeds, be competitive
    /// with random search given the same budget.
    #[test]
    fn model_based_competitive_with_random() {
        let budget = 20;
        let mut totals = [0.0f64; 3]; // random, bo, tpe
        for seed in 0..8 {
            let mut tuners: Vec<Box<dyn Tuner>> = vec![
                Box::new(RandomSearch::new(0.0, 100.0, seed)),
                Box::new(BayesOpt::new(0.0, 100.0, seed)),
                Box::new(Tpe::new(0.0, 100.0, seed)),
            ];
            for (i, t) in tuners.iter_mut().enumerate() {
                for _ in 0..budget {
                    let x = t.ask();
                    t.tell(x, test_objective(x));
                }
                totals[i] += t.best().unwrap().1;
            }
        }
        assert!(
            totals[1] <= totals[0] + 0.2,
            "BO {totals:?} should not lose badly to random"
        );
        assert!(
            totals[2] <= totals[0] + 0.2,
            "TPE {totals:?} should not lose badly to random"
        );
    }
}
