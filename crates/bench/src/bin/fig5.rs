//! Regenerates paper Fig. 5 (appendix A ablation): QROSS trained on
//! Digital-Annealer data but evaluated with Qbsolv loses its advantage —
//! evidence that the learned knowledge is solver-specific.

use bench::experiments::fig5;
use bench::{row, run_experiment};

fn main() {
    run_experiment("fig5", fig5, |result| {
        println!("Fig. 5 — cross-solver ablation (QROSS trained on DA data)");
        let widths = [6, 14, 14, 14, 14, 14, 14];
        println!(
            "{}",
            row(
                &[
                    "trial".into(),
                    "qross@da".into(),
                    "qross@qbsolv".into(),
                    "tpe@da".into(),
                    "tpe@qbsolv".into(),
                    "qross@weak".into(),
                    "tpe@weak".into(),
                ],
                &widths
            )
        );
        let trials = result.qross_on_da.mean.len();
        for t in 0..trials {
            println!(
                "{}",
                row(
                    &[
                        format!("{}", t + 1),
                        format!("{:.4}", result.qross_on_da.mean[t]),
                        format!("{:.4}", result.qross_on_qbsolv.mean[t]),
                        format!("{:.4}", result.tpe_on_da.mean[t]),
                        format!("{:.4}", result.tpe_on_qbsolv.mean[t]),
                        format!("{:.4}", result.qross_on_mismatched.mean[t]),
                        format!("{:.4}", result.tpe_on_mismatched.mean[t]),
                    ],
                    &widths
                )
            );
        }
        // The paper's expected ablation outcome.
        let q_da = result.qross_on_da.gap_at_trial(3);
        let q_qb = result.qross_on_qbsolv.gap_at_trial(3);
        println!(
            "\nat trial #3: qross@da = {:.4}, qross@qbsolv = {:.4} ({})",
            q_da,
            q_qb,
            if q_qb > q_da {
                "degradation as expected — DA knowledge does not transfer"
            } else {
                "no degradation: the DA and Qbsolv simulators share Pf characteristics at this scale"
            }
        );
        // The mechanism demonstration with a genuinely mismatched solver.
        let q_weak = result.qross_on_mismatched.gap_at_trial(3);
        let t_weak = result.tpe_on_mismatched.gap_at_trial(3);
        let t_da = result.tpe_on_da.gap_at_trial(3);
        println!(
            "mismatched solver at trial #3: qross = {:.4} (vs {:.4} on DA), tpe = {:.4} (vs {:.4} on DA)",
            q_weak, q_da, t_weak, t_da
        );
        println!(
            "qross absolute degradation under mismatch: {:.1}x ({})",
            q_weak / q_da.max(1e-9),
            if q_weak > 2.0 * q_da {
                "solver-specific knowledge does not transfer — the ablation mechanism"
            } else {
                "little absolute degradation at this scale"
            }
        );
        println!(
            "qross advantage over tpe: {:+.4} on DA, {:+.4} on the mismatched solver",
            t_da - q_da,
            t_weak - q_weak,
        );
    });
}
