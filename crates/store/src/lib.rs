//! # qross-store — the versioned artifact store
//!
//! QROSS's premise is *train once, serve many*: surrogates are trained
//! offline on a corpus of solved instances and then amortised across
//! unseen instances. This crate is the persistence layer that makes the
//! split real — every pipeline artifact (datasets, surrogate snapshots,
//! trained bundles, evaluation curves) is written through one [`Artifact`]
//! trait in either of two interchangeable formats:
//!
//! * the **`.qross` binary container** — a versioned, length-framed
//!   little-endian codec with a magic header, a per-artifact kind tag, a
//!   section table and a CRC-32 per section. `f64` values travel as raw
//!   bit patterns, so round-trips are *bit-exact* (NaN payloads, signed
//!   zeros and infinities included) and a reloaded surrogate reproduces
//!   its in-memory predictions to the last bit;
//! * a **JSON fallback** ([`json`]) for debuggability — human-readable,
//!   diffable, and decoding to the same structs (finite values only; JSON
//!   has no NaN/infinity literals).
//!
//! The wire format is specified in `ARTIFACTS.md` at the repository root.
//!
//! ## Container layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"QROSSART"
//! 8       4     container format version (u32 LE, currently 1)
//! 12      4     artifact kind tag (4 ASCII bytes, e.g. b"BNDL")
//! 16      4     artifact payload version (u32 LE, per kind)
//! 20      4     section count k (u32 LE)
//! 24      24*k  section table, one entry per section:
//!               tag [u8;4] + offset u64 + len u64 + crc32 u32
//!               (offsets relative to the payload blob)
//! 24+24k  ...   payload blob (sections concatenated in table order)
//! ```
//!
//! Decoding validates the magic, rejects containers from a *newer* format
//! version with a typed error (older readers must not misparse newer
//! files), bounds-checks the section table against the input, and verifies
//! each section's CRC before handing its bytes to the artifact decoder.
//! Nothing in the decode path panics on corrupted input.

#![deny(missing_docs)]

pub mod codec;
pub mod json;

use codec::{crc32, ByteReader, ByteWriter};
use neural::layers::LayerSpec;
use neural::network::MlpState;

/// Magic prefix of every `.qross` binary container.
pub const MAGIC: [u8; 8] = *b"QROSSART";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes per section-table entry: tag(4) + offset(8) + len(8) + crc32(4).
const SECTION_ENTRY_LEN: usize = 24;

/// Fixed header length before the section table.
const HEADER_LEN: usize = 24;

/// Errors from encoding or decoding artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem failure (message carries the `std::io::Error` text).
    Io {
        /// explanation, including the path involved
        message: String,
    },
    /// The input does not start with the `.qross` magic bytes.
    BadMagic,
    /// The container was written by a newer format than this reader.
    UnsupportedVersion {
        /// version found in the header
        found: u32,
        /// newest version this build can read
        supported: u32,
    },
    /// The container holds a different artifact kind than requested.
    WrongKind {
        /// expected 4-byte kind tag, rendered as ASCII
        expected: String,
        /// kind tag found in the header
        found: String,
    },
    /// A required section is missing from the container.
    MissingSection {
        /// the absent section's 4-byte tag, rendered as ASCII
        tag: String,
    },
    /// A section's checksum does not match its bytes.
    ChecksumMismatch {
        /// the failing section's tag, rendered as ASCII
        tag: String,
    },
    /// The input ends before a declared value.
    Truncated {
        /// bytes the decoder needed
        needed: usize,
        /// bytes actually available
        available: usize,
    },
    /// Structurally invalid content (bad tags, impossible lengths,
    /// inconsistent shapes, trailing bytes).
    Corrupt {
        /// explanation
        message: String,
    },
    /// JSON fallback failure.
    Json {
        /// explanation
        message: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { message } => write!(f, "io: {message}"),
            StoreError::BadMagic => write!(f, "not a .qross artifact (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "container format v{found} is newer than supported v{supported}"
            ),
            StoreError::WrongKind { expected, found } => {
                write!(f, "expected artifact kind `{expected}`, found `{found}`")
            }
            StoreError::MissingSection { tag } => write!(f, "missing section `{tag}`"),
            StoreError::ChecksumMismatch { tag } => {
                write!(f, "section `{tag}` failed its CRC-32 check")
            }
            StoreError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            StoreError::Corrupt { message } => write!(f, "corrupt artifact: {message}"),
            StoreError::Json { message } => write!(f, "json: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn tag_str(tag: [u8; 4]) -> String {
    tag.iter()
        .map(|&b| if b.is_ascii_graphic() { b as char } else { '.' })
        .collect()
}

fn io_err(context: &str, e: std::io::Error) -> StoreError {
    StoreError::Io {
        message: format!("{context}: {e}"),
    }
}

/// Accumulates named sections for one container.
#[derive(Debug, Default)]
pub struct SectionWriter {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl SectionWriter {
    /// Creates an empty section set.
    pub fn new() -> Self {
        SectionWriter::default()
    }

    /// Adds a section built by `f`.
    pub fn section(&mut self, tag: [u8; 4], f: impl FnOnce(&mut ByteWriter)) {
        let mut w = ByteWriter::new();
        f(&mut w);
        self.sections.push((tag, w.into_bytes()));
    }

    /// Serialises the accumulated sections as a full container with the
    /// given kind tag and payload version.
    ///
    /// [`Artifact::to_store_bytes`] calls this with `Artifact::VERSION`;
    /// it is public so artifact crates can also emit *older* payload
    /// versions of a kind (golden compatibility fixtures, size
    /// comparisons against a legacy layout) without duplicating the
    /// container framing.
    pub fn encode(self, kind: [u8; 4], payload_version: u32) -> Vec<u8> {
        let table_len = self.sections.len() * SECTION_ENTRY_LEN;
        let blob_len: usize = self.sections.iter().map(|(_, b)| b.len()).sum();
        let mut out = Vec::with_capacity(HEADER_LEN + table_len + blob_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&kind);
        out.extend_from_slice(&payload_version.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = 0u64;
        for (tag, bytes) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(bytes).to_le_bytes());
            offset += bytes.len() as u64;
        }
        for (_, bytes) in &self.sections {
            out.extend_from_slice(bytes);
        }
        out
    }
}

/// A parsed container: header fields plus CRC-verified section access.
#[derive(Debug)]
pub struct SectionReader<'a> {
    /// artifact kind tag from the header
    pub kind: [u8; 4],
    /// per-kind payload version from the header
    pub payload_version: u32,
    sections: Vec<([u8; 4], &'a [u8], u32)>,
}

impl<'a> SectionReader<'a> {
    /// Parses and validates a container's header and section table.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`] / [`StoreError::UnsupportedVersion`] /
    /// [`StoreError::Truncated`] / [`StoreError::Corrupt`] for malformed
    /// containers. Section CRCs are checked lazily by [`Self::section`].
    pub fn parse(bytes: &'a [u8]) -> Result<Self, StoreError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let format = r.get_u32()?;
        if format > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: format,
                supported: FORMAT_VERSION,
            });
        }
        let kind_bytes = r.take(4)?;
        let kind = [kind_bytes[0], kind_bytes[1], kind_bytes[2], kind_bytes[3]];
        let payload_version = r.get_u32()?;
        let count = r.get_u32()? as usize;
        let table_bytes = count.checked_mul(SECTION_ENTRY_LEN).ok_or({
            StoreError::Corrupt {
                message: "section count overflows".to_string(),
            }
        })?;
        if r.remaining() < table_bytes {
            return Err(StoreError::Truncated {
                needed: table_bytes,
                available: r.remaining(),
            });
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let tag_bytes = r.take(4)?;
            let tag = [tag_bytes[0], tag_bytes[1], tag_bytes[2], tag_bytes[3]];
            let offset = r.get_u64()?;
            let len = r.get_u64()?;
            let crc = r.get_u32()?;
            entries.push((tag, offset, len, crc));
        }
        let blob = r.take(r.remaining())?;
        let mut sections = Vec::with_capacity(count);
        for (tag, offset, len, crc) in entries {
            let end = offset.checked_add(len).ok_or_else(|| StoreError::Corrupt {
                message: format!("section `{}` range overflows", tag_str(tag)),
            })?;
            if end > blob.len() as u64 {
                return Err(StoreError::Truncated {
                    needed: end as usize,
                    available: blob.len(),
                });
            }
            sections.push((tag, &blob[offset as usize..end as usize], crc));
        }
        Ok(SectionReader {
            kind,
            payload_version,
            sections,
        })
    }

    /// Returns a section's bytes after verifying its CRC-32.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingSection`] when `tag` is absent,
    /// [`StoreError::ChecksumMismatch`] when the stored CRC disagrees
    /// with the bytes.
    pub fn section(&self, tag: [u8; 4]) -> Result<ByteReader<'a>, StoreError> {
        let (_, bytes, crc) = self
            .sections
            .iter()
            .find(|(t, _, _)| *t == tag)
            .ok_or_else(|| StoreError::MissingSection { tag: tag_str(tag) })?;
        if crc32(bytes) != *crc {
            return Err(StoreError::ChecksumMismatch { tag: tag_str(tag) });
        }
        Ok(ByteReader::new(bytes))
    }

    /// Tags present in this container, in table order.
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _, _)| *t).collect()
    }
}

/// One persistable pipeline artifact.
///
/// Implementors describe how to lay their fields out into named container
/// sections; the trait supplies file and byte-level `save`/`load` on top,
/// plus a JSON fallback via the serde supertraits. Both formats decode to
/// the same struct, and the binary format is bit-exact for every `f64`.
pub trait Artifact: serde::Serialize + serde::Deserialize + Sized {
    /// 4-byte ASCII artifact kind tag (e.g. `*b"DSET"`).
    const KIND: [u8; 4];
    /// Payload version written by this build; readers reject newer ones.
    const VERSION: u32 = 1;

    /// Lays the artifact out into container sections.
    fn write_sections(&self, out: &mut SectionWriter);

    /// Rebuilds the artifact from parsed sections.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] for missing/corrupt sections.
    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError>;

    /// Encodes to `.qross` container bytes.
    fn to_store_bytes(&self) -> Vec<u8> {
        let mut w = SectionWriter::new();
        self.write_sections(&mut w);
        w.encode(Self::KIND, Self::VERSION)
    }

    /// Decodes from `.qross` container bytes.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]; notably [`StoreError::WrongKind`] when the
    /// container holds a different artifact and
    /// [`StoreError::UnsupportedVersion`] for payloads from a newer build.
    fn from_store_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let reader = SectionReader::parse(bytes)?;
        if reader.kind != Self::KIND {
            return Err(StoreError::WrongKind {
                expected: tag_str(Self::KIND),
                found: tag_str(reader.kind),
            });
        }
        if reader.payload_version > Self::VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: reader.payload_version,
                supported: Self::VERSION,
            });
        }
        Self::read_sections(&reader)
    }

    /// Writes the binary container to `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), StoreError> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| io_err(&format!("create {}", dir.display()), e))?;
        }
        std::fs::write(path, self.to_store_bytes())
            .map_err(|e| io_err(&format!("write {}", path.display()), e))
    }

    /// Reads a binary container from `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, else as
    /// [`Artifact::from_store_bytes`].
    fn load(path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| io_err(&format!("read {}", path.display()), e))?;
        Self::from_store_bytes(&bytes)
    }

    /// Writes the JSON fallback representation to `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Json`].
    fn save_json(&self, path: impl AsRef<std::path::Path>) -> Result<(), StoreError> {
        json::write_json_file(path, self)
    }

    /// Reads the JSON fallback representation from `path`.
    ///
    /// The decoded value is [revalidated](Artifact::revalidated) so the
    /// JSON path enforces the same invariants as the binary one.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Json`], or any decode error
    /// from revalidation.
    fn load_json(path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        json::read_json_file(path).and_then(Self::revalidated)
    }

    /// Loads from `path` in whichever format the file is in, sniffing the
    /// binary magic first and falling back to (revalidated) JSON.
    ///
    /// # Errors
    ///
    /// As [`Artifact::load`] / [`Artifact::load_json`].
    fn load_auto(path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| io_err(&format!("read {}", path.display()), e))?;
        if bytes.starts_with(&MAGIC) {
            Self::from_store_bytes(&bytes)
        } else {
            json::from_json_str(std::str::from_utf8(&bytes).map_err(|e| StoreError::Json {
                message: format!("not UTF-8: {e}"),
            })?)
            .and_then(Self::revalidated)
        }
    }

    /// Re-runs the binary decoder's structural validation on an
    /// already-decoded value by round-tripping it through the codec.
    ///
    /// `serde`-derived JSON decoding enforces none of the shape or
    /// finiteness invariants [`Artifact::read_sections`] checks — and the
    /// JSON format silently degrades non-finite values to `null`/NaN —
    /// so every JSON load funnels through here before the value escapes.
    ///
    /// # Errors
    ///
    /// Whatever [`Artifact::read_sections`] rejects (inconsistent
    /// shapes, invariant-violating values) as a typed [`StoreError`].
    fn revalidated(self) -> Result<Self, StoreError> {
        Self::from_store_bytes(&self.to_store_bytes())
    }
}

// ---------------------------------------------------------------------------
// Artifact impl for the neural network snapshot
// ---------------------------------------------------------------------------

/// Layer discriminants of the `NET ` section encoding.
const LAYER_DENSE: u8 = 0;
const LAYER_RELU: u8 = 1;
const LAYER_SIGMOID: u8 = 2;
const LAYER_TANH: u8 = 3;

/// Encodes one [`MlpState`] into `w` (shared by the `MLPS` artifact and
/// composite artifacts embedding networks, e.g. surrogate snapshots).
pub fn put_mlp_state(w: &mut ByteWriter, state: &MlpState) {
    w.put_usize(state.input_dim);
    w.put_usize(state.layers.len());
    for layer in &state.layers {
        match layer {
            LayerSpec::Dense {
                input,
                output,
                weights,
                bias,
            } => {
                w.put_u8(LAYER_DENSE);
                w.put_usize(*input);
                w.put_usize(*output);
                w.put_f64_slice(weights);
                w.put_f64_slice(bias);
            }
            LayerSpec::Relu => w.put_u8(LAYER_RELU),
            LayerSpec::Sigmoid => w.put_u8(LAYER_SIGMOID),
            LayerSpec::Tanh => w.put_u8(LAYER_TANH),
        }
    }
}

/// Decodes one [`MlpState`] written by [`put_mlp_state`].
///
/// # Errors
///
/// [`StoreError::Truncated`] / [`StoreError::Corrupt`] on malformed
/// input, including dense layers whose declared shape disagrees with
/// their weight count.
pub fn get_mlp_state(r: &mut ByteReader<'_>) -> Result<MlpState, StoreError> {
    let input_dim = r.get_usize()?;
    let num_layers = r.get_len(1)?;
    let mut layers = Vec::with_capacity(num_layers);
    for i in 0..num_layers {
        let tag = r.get_u8()?;
        let layer = match tag {
            LAYER_DENSE => {
                let input = r.get_usize()?;
                let output = r.get_usize()?;
                let weights = r.get_f64_vec()?;
                let bias = r.get_f64_vec()?;
                let expect = input.checked_mul(output).ok_or(StoreError::Corrupt {
                    message: format!("layer {i}: shape overflows"),
                })?;
                if weights.len() != expect || bias.len() != output {
                    return Err(StoreError::Corrupt {
                        message: format!(
                            "layer {i}: {}x{} dense with {} weights / {} biases",
                            input,
                            output,
                            weights.len(),
                            bias.len()
                        ),
                    });
                }
                LayerSpec::Dense {
                    input,
                    output,
                    weights,
                    bias,
                }
            }
            LAYER_RELU => LayerSpec::Relu,
            LAYER_SIGMOID => LayerSpec::Sigmoid,
            LAYER_TANH => LayerSpec::Tanh,
            other => {
                return Err(StoreError::Corrupt {
                    message: format!("layer {i}: unknown layer tag {other:#04x}"),
                })
            }
        };
        layers.push(layer);
    }
    Ok(MlpState { input_dim, layers })
}

impl Artifact for MlpState {
    const KIND: [u8; 4] = *b"MLPS";

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"NET ", |w| put_mlp_state(w, self));
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut r = reader.section(*b"NET ")?;
        let state = get_mlp_state(&mut r)?;
        r.finish()?;
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::network::MlpBuilder;

    fn sample_state() -> MlpState {
        MlpBuilder::new(3)
            .dense(5)
            .relu()
            .dense(2)
            .sigmoid()
            .build(42)
            .to_state()
    }

    #[test]
    fn mlp_state_binary_roundtrip() {
        let state = sample_state();
        let bytes = state.to_store_bytes();
        let back = MlpState::from_store_bytes(&bytes).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn container_header_fields() {
        let bytes = sample_state().to_store_bytes();
        let reader = SectionReader::parse(&bytes).unwrap();
        assert_eq!(reader.kind, *b"MLPS");
        assert_eq!(reader.payload_version, 1);
        assert_eq!(reader.tags(), vec![*b"NET "]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_state().to_store_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(
            MlpState::from_store_bytes(&bytes).unwrap_err(),
            StoreError::BadMagic
        );
    }

    #[test]
    fn newer_container_version_rejected() {
        let mut bytes = sample_state().to_store_bytes();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            MlpState::from_store_bytes(&bytes),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn newer_payload_version_rejected() {
        let mut bytes = sample_state().to_store_bytes();
        bytes[16..20].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            MlpState::from_store_bytes(&bytes),
            Err(StoreError::UnsupportedVersion { found: 2, .. })
        ));
    }

    #[test]
    fn wrong_kind_rejected() {
        let mut bytes = sample_state().to_store_bytes();
        bytes[12..16].copy_from_slice(b"XXXX");
        assert!(matches!(
            MlpState::from_store_bytes(&bytes),
            Err(StoreError::WrongKind { .. })
        ));
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let bytes = sample_state().to_store_bytes();
        // Flip one byte in every payload position; the CRC must catch it.
        let payload_start = HEADER_LEN + SECTION_ENTRY_LEN;
        let mut caught = 0;
        for i in payload_start..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            match MlpState::from_store_bytes(&corrupted) {
                Err(StoreError::ChecksumMismatch { .. }) => caught += 1,
                other => panic!("byte {i}: corruption yielded {other:?}"),
            }
        }
        assert!(caught > 0);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample_state().to_store_bytes();
        for cut in 0..bytes.len() {
            assert!(
                MlpState::from_store_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} went undetected"
            );
        }
    }

    #[test]
    fn json_fallback_roundtrip() {
        let state = sample_state();
        let dir = std::env::temp_dir().join("qross_store_test_json");
        let path = dir.join("mlp.json");
        state.save_json(&path).unwrap();
        let back = MlpState::load_json(&path).unwrap();
        assert_eq!(back, state);
        // load_auto sniffs both formats.
        let bin_path = dir.join("mlp.qross");
        state.save(&bin_path).unwrap();
        assert_eq!(MlpState::load_auto(&bin_path).unwrap(), state);
        assert_eq!(MlpState::load_auto(&path).unwrap(), state);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
