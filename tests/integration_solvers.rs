//! Cross-crate integration: problems × qubo × solvers.
//!
//! These tests drive full TSP/MVC encodings through every solver backend
//! and check solution *semantics* (feasibility, decodability, optimality
//! on tiny instances) rather than just energies.

use qross_repro::problems::tsp::heuristics;
use qross_repro::problems::{MvcInstance, RelaxableProblem, TspEncoding, TspInstance};
use qross_repro::solvers::da::{DaConfig, DigitalAnnealer};
use qross_repro::solvers::qbsolv::Qbsolv;
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};
use qross_repro::solvers::tabu::TabuSearch;
use qross_repro::solvers::Solver;

fn square5() -> TspEncoding {
    // 4 corners + centre: optimal tour known by exhaustive reasoning.
    TspEncoding::preprocessed(TspInstance::from_coords(
        "sq5",
        &[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0), (2.0, 1.0)],
    ))
}

fn optimal_length(enc: &TspEncoding) -> f64 {
    // 5 cities: brute force all 4! tours fixing city 0.
    let inst = enc.fitness_instance();
    let mut best = f64::INFINITY;
    let mut perm = [1usize, 2, 3, 4];
    // simple permutation enumeration
    fn permutations(arr: &mut [usize], k: usize, out: &mut Vec<Vec<usize>>) {
        if k == arr.len() {
            out.push(arr.to_vec());
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permutations(arr, k + 1, out);
            arr.swap(k, i);
        }
    }
    let mut perms = Vec::new();
    permutations(&mut perm, 0, &mut perms);
    for p in perms {
        let tour: Vec<usize> = std::iter::once(0).chain(p).collect();
        best = best.min(inst.tour_length(&tour));
    }
    best
}

/// Every solver should produce feasible, decodable, optimal-or-near
/// solutions on a 5-city instance at a sensible relaxation parameter.
#[test]
fn all_solvers_solve_tiny_tsp() {
    let enc = square5();
    let optimal = optimal_length(&enc);
    let a = 2.0; // on the slope for normalised instances
    let qubo = enc.to_qubo(a);

    let sa = SimulatedAnnealer::new(SaConfig {
        sweeps: 256,
        ..Default::default()
    });
    let da = DigitalAnnealer::new(DaConfig {
        steps: 3000,
        ..Default::default()
    });
    let tabu = TabuSearch::default();
    let qbsolv = Qbsolv::default();

    for (name, solver) in [
        ("sa", &sa as &dyn Solver),
        ("da", &da as &dyn Solver),
        ("tabu", &tabu as &dyn Solver),
        ("qbsolv", &qbsolv as &dyn Solver),
    ] {
        let set = solver.sample(&qubo, 16, 7);
        let best = set
            .best_feasible(|x| enc.is_feasible(x))
            .unwrap_or_else(|| panic!("{name}: no feasible solution at A={a}"));
        let tour = enc.decode_tour(&best.assignment).expect("decodable");
        let length = enc.fitness_instance().tour_length(&tour);
        assert!(
            length <= optimal * 1.05 + 1e-9,
            "{name}: found {length}, optimal {optimal}"
        );
    }
}

/// At very low A the penalty cannot dominate: solvers exploit constraint
/// violations and feasibility collapses — the left plateau of Fig. 1.
#[test]
fn low_relaxation_collapses_feasibility() {
    let enc = square5();
    let sa = SimulatedAnnealer::new(SaConfig {
        sweeps: 128,
        ..Default::default()
    });
    let low = enc.to_qubo(0.01);
    let set = sa.sample(&low, 16, 3);
    let pf = set.feasibility_fraction(|x| enc.is_feasible(x));
    assert!(pf < 0.2, "Pf at A=0.01 should collapse, got {pf}");

    let high = enc.to_qubo(10.0);
    let set = sa.sample(&high, 16, 3);
    let pf_high = set.feasibility_fraction(|x| enc.is_feasible(x));
    assert!(pf_high > 0.8, "Pf at A=10 should be near 1, got {pf_high}");
}

/// Feasible QUBO solutions decode to tours whose original-units length
/// matches the QUBO's HB part exactly (scaled encodings included).
#[test]
fn fitness_units_consistent_across_preprocessing() {
    let inst = TspInstance::from_coords(
        "scale-check",
        &[
            (0.0, 0.0),
            (30.0, 5.0),
            (25.0, 28.0),
            (3.0, 22.0),
            (14.0, 14.0),
        ],
    );
    let plain = TspEncoding::new(inst.clone());
    let pre = TspEncoding::preprocessed(inst);
    let sa = SimulatedAnnealer::new(SaConfig {
        sweeps: 256,
        ..Default::default()
    });
    for enc in [&plain, &pre] {
        // pick an A on the feasible side for each encoding's scale
        let a = 3.0 * enc.qubo_instance().max_distance().max(1.0);
        let set = sa.sample(&enc.to_qubo(a), 16, 5);
        let best = set
            .best_feasible(|x| enc.is_feasible(x))
            .expect("feasible at high A");
        let tour = enc.decode_tour(&best.assignment).unwrap();
        let fitness = enc.fitness(&best.assignment).unwrap();
        assert!(
            (fitness - enc.fitness_instance().tour_length(&tour)).abs() < 1e-9,
            "fitness must be in original units"
        );
    }
}

/// MVC end-to-end: with σ > max weight the QUBO optimum is a genuine
/// minimum vertex cover, and solvers find covers no worse than greedy.
#[test]
fn mvc_end_to_end() {
    let graph = MvcInstance::random_gnp("it", 24, 0.4, 5);
    let greedy_weight = graph.cover_weight(&graph.greedy_cover());
    let qubo = graph.to_qubo(2.0); // > max weight 1.0
    let sa = SimulatedAnnealer::new(SaConfig {
        sweeps: 256,
        ..Default::default()
    });
    let set = sa.sample(&qubo, 16, 9);
    let best = set
        .best_feasible(|x| graph.is_feasible(x))
        .expect("feasible cover found");
    let weight = graph.fitness(&best.assignment).unwrap();
    assert!(
        weight <= greedy_weight + 1e-9,
        "SA cover {weight} worse than greedy {greedy_weight}"
    );
}

/// The classical reference heuristics bound each other correctly:
/// multi-start 2-opt/Or-opt never loses to a single nearest-neighbour run.
#[test]
fn reference_heuristics_ordering() {
    for seed in 0..4 {
        let inst = qross_repro::problems::tsp::generator::generate_instance(
            &qross_repro::problems::tsp::generator::GeneratorConfig {
                min_cities: 12,
                max_cities: 12,
                ..Default::default()
            },
            seed,
            0,
        );
        let nn = inst.tour_length(&heuristics::nearest_neighbor(&inst, 0));
        let (_, reference) = heuristics::reference_tour(&inst, 6);
        assert!(reference <= nn + 1e-9, "seed {seed}: {reference} > {nn}");
    }
}
