//! Minimum Fitness Strategy (paper §3.4.1, appendix F).
//!
//! Given surrogate predictions `Pf(A)`, `Eavg(A)`, `Estd(A)` and the batch
//! size `B`, the expected *minimum* fitness of a batch with
//! `m = Pf(A)·B` feasible solutions, each fitness modelled as
//! `N(Eavg, Estd²)`, is (eq. 2 / eq. 15)
//!
//! `E[d̄] ≈ ∫_0^∞ (1 − Φ(z; Eavg, Estd²))^m dz`,
//!
//! with `lim_{Pf→0} E[d̄] = +∞` (appendix F). The optimal relaxation
//! parameter is `argmin_A E[d̄](A)` (eq. 18), found here with the dense
//! grid + golden-section global optimiser that stands in for scipy's
//! `shgo`.
//!
//! The non-negative-fitness assumption behind eq. 15 does not hold after
//! MVODM pre-processing (energies can be negative), so the integral is
//! evaluated with a constant shift: `E[min(d)] = E[min(d + c)] − c` with
//! `c` chosen so virtually all Gaussian mass is positive — an exact
//! identity rather than an approximation.

use mathkit::integrate::gauss_legendre_composite;
use mathkit::optimize::Minimum;
use mathkit::special::normal_sf;

use crate::surrogate::{Surrogate, SurrogatePrediction};
use crate::QrossError;

/// Expectation of the minimum fitness in a batch (paper eq. 2).
///
/// Returns `+inf` when fewer than one feasible solution is expected in
/// the batch (`m = pf·batch < 1`): the paper defines
/// `lim_{Pf→0} Dmin = +∞`, and a fractional expected sample count has no
/// meaningful minimum — proposing there risks an entirely infeasible
/// trial.
///
/// # Examples
///
/// ```
/// use qross::strategy::mfs::expected_min_fitness;
/// // With one expected feasible sample the expectation is just the mean.
/// let one = expected_min_fitness(1.0, 10.0, 2.0, 1);
/// assert!((one - 10.0).abs() < 0.05);
/// // More feasible samples push the expected minimum down.
/// let many = expected_min_fitness(1.0, 10.0, 2.0, 64);
/// assert!(many < one - 3.0);
/// // Vanishing feasibility: infinite (paper appendix F).
/// assert!(expected_min_fitness(0.001, 10.0, 2.0, 64).is_infinite());
/// ```
pub fn expected_min_fitness(pf: f64, e_avg: f64, e_std: f64, batch: usize) -> f64 {
    let m = pf.clamp(0.0, 1.0) * batch as f64;
    if m < 1.0 {
        return f64::INFINITY;
    }
    let sigma = e_std.max(1e-12);
    if sigma <= 1e-9 {
        return e_avg; // degenerate distribution: min == mean
    }
    // Shift so the support is effectively positive (exact identity).
    let spread = (2.0 * (m.max(1.0)).ln()).sqrt() + 8.0;
    let low_tail = e_avg - spread * sigma;
    let shift = if low_tail < 0.0 { -low_tail } else { 0.0 };
    let mu = e_avg + shift;

    // E[min] = z0 + ∫_{z0}^{z1} S(z)^m dz, where S^m ≈ 1 below z0 and ≈ 0
    // above z1.
    let z0 = (mu - spread * sigma).max(0.0);
    let z1 = mu + 8.0 * sigma;
    let integral = gauss_legendre_composite(|z| normal_sf(z, mu, sigma).powf(m), z0, z1, 24);
    z0 + integral - shift
}

/// Expected minimum fitness of a surrogate prediction.
pub fn expected_min_of(prediction: &SurrogatePrediction, batch: usize) -> f64 {
    expected_min_fitness(prediction.pf, prediction.e_avg, prediction.e_std, batch)
}

/// Proposes the MFS-optimal relaxation parameter over `domain` (eq. 18).
///
/// Optimises in `ln A` (the surrogate's natural axis). Two guards keep
/// the search where the surrogate is trustworthy:
///
/// 1. the domain is clamped to the trained `A` support (±2.5 σ of the
///    training `ln A` distribution) — beyond it the energy head
///    extrapolates and fabricates minima at the domain edges;
/// 2. the search is further restricted to the predicted sigmoid *slope*
///    `{A | 0.2 ≤ Pf(A) ≤ 0.98}` (with a right margin), implementing the
///    paper's §3.1 hypothesis that "optimal solutions appear within
///    0 < Pf < 1". The floor sits at 0.2 rather than 0 for two reasons:
///    (a) the Pf head is far better calibrated than the energy head, but
///    still carries error of a fraction of the slope width — proposals at
///    predicted Pf ≈ 0.05 routinely measure Pf = 0; and (b) below ~0.2
///    the batch energy statistics are dominated by *infeasible*
///    assignments, so the Gaussian fitness model of eq. 16 no longer
///    describes the feasible solutions whose minimum MFS optimises. The
///    paper's own reported optima sit at Pf ≈ 0.78–0.91 (Fig. 1), safely
///    inside this window.
///
/// # Errors
///
/// Returns [`QrossError::NoCandidate`] when the surrogate predicts
/// (near-)zero feasibility across the whole domain.
pub fn propose(
    surrogate: &Surrogate,
    features: &[f64],
    domain: (f64, f64),
    batch: usize,
) -> Result<Minimum, QrossError> {
    assert!(
        domain.0 > 0.0 && domain.0 < domain.1,
        "invalid A domain [{}, {}]",
        domain.0,
        domain.1
    );
    let (lo, hi) = clamp_to_trained(surrogate, domain);

    // Locate the predicted sigmoid slope with a coarse sweep (one
    // batched forward).
    const GRID: usize = 96;
    let ln_grid = crate::strategy::even_grid(lo.ln(), hi.ln(), GRID);
    let a_grid: Vec<f64> = ln_grid.iter().map(|l| l.exp()).collect();
    let preds = surrogate.predict_grid(features, &a_grid);
    let slope: Vec<usize> = (0..GRID)
        .filter(|&k| preds[k].pf >= 0.2 && preds[k].pf <= 0.98)
        .collect();
    let (wlo, whi) = match (slope.first(), slope.last()) {
        (Some(&first), Some(&last)) => {
            // No margin on the left (Pf prediction error there costs
            // feasibility); two grid steps on the right, where the energy
            // dip often sits just past the predicted Pf ≈ 1 boundary.
            let step = (hi.ln() - lo.ln()) / (GRID - 1) as f64;
            let right = ln_grid[last] + 2.0 * step;
            (ln_grid[first], right.min(hi.ln()))
        }
        // Empty slope set — a saturated or flat predicted Pf landscape
        // (e.g. a constant surrogate): no slope to focus on, search the
        // full clamped window instead. (This arm used to be reached via
        // an is_empty() check guarding a pair of `expect("non-empty")`
        // unwraps; matching on first/last makes the fallback total.)
        _ => (lo.ln(), hi.ln()),
    };

    // Dense objective grid in ONE batched forward per head; only the
    // golden-section refinement around the best basins pays scalar
    // predicts (see strategy::minimize_on_log_grid).
    let m = crate::strategy::minimize_on_log_grid(surrogate, features, (wlo, whi), 64, |p| {
        expected_min_of(p, batch)
    })
    .map_err(|e| QrossError::NoCandidate {
        message: format!("MFS optimisation failed: {e}"),
    })?;
    if !m.value.is_finite() {
        return Err(QrossError::NoCandidate {
            message: "surrogate predicts zero feasibility across the domain".to_string(),
        });
    }
    Ok(Minimum {
        x: m.x.exp(),
        value: m.value,
    })
}

/// Intersects a requested domain with the surrogate's trained `A` support
/// (±2.5 σ in `ln A`), falling back to the requested domain when the
/// intersection is empty.
pub(crate) fn clamp_to_trained(surrogate: &Surrogate, domain: (f64, f64)) -> (f64, f64) {
    let (tlo, thi) = surrogate.trained_a_range(2.5);
    let lo = domain.0.max(tlo);
    let hi = domain.1.min(thi);
    if lo < hi {
        (lo, hi)
    } else {
        domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::rng::seeded_rng;
    use rand::Rng;

    #[test]
    fn infeasible_is_infinite() {
        assert!(expected_min_fitness(0.0, 10.0, 1.0, 128).is_infinite());
        assert!(expected_min_fitness(1e-9, 10.0, 1.0, 128).is_infinite());
    }

    #[test]
    fn single_sample_equals_mean() {
        // m = 1: E[min of one N(mu, sigma)] = mu.
        for (mu, sigma) in [(5.0, 1.0), (100.0, 10.0), (0.0, 2.0)] {
            let v = expected_min_fitness(1.0, mu, sigma, 1);
            assert!((v - mu).abs() < 0.05 * sigma.max(1.0), "mu={mu}: {v}");
        }
    }

    #[test]
    fn matches_monte_carlo() {
        // Compare against a direct Monte-Carlo estimate of E[min of m
        // Gaussians].
        let mut rng = seeded_rng(42);
        for &(pf, mu, sigma, batch) in &[
            (1.0, 10.0, 2.0, 16usize),
            (0.5, 50.0, 5.0, 64),
            (0.25, -3.0, 1.0, 128), // negative mean exercises the shift
        ] {
            let m = (pf * batch as f64).round() as usize;
            let trials = 4000;
            let mut acc = 0.0;
            for _ in 0..trials {
                let mut min = f64::INFINITY;
                for _ in 0..m {
                    let u1: f64 = rng.gen::<f64>().max(1e-300);
                    let u2: f64 = rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    min = min.min(mu + sigma * z);
                }
                acc += min;
            }
            let mc = acc / trials as f64;
            let analytic = expected_min_fitness(pf, mu, sigma, batch);
            assert!(
                (mc - analytic).abs() < 0.12 * sigma,
                "pf={pf} mu={mu}: MC {mc} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn decreasing_in_batch_size() {
        let mut prev = f64::INFINITY;
        for batch in [1usize, 4, 16, 64, 256] {
            let v = expected_min_fitness(1.0, 20.0, 3.0, batch);
            assert!(v < prev, "batch {batch}: {v} !< {prev}");
            prev = v;
        }
    }

    #[test]
    fn increasing_in_mean() {
        let lo = expected_min_fitness(0.8, 10.0, 2.0, 32);
        let hi = expected_min_fitness(0.8, 15.0, 2.0, 32);
        assert!(hi > lo);
    }

    #[test]
    fn balances_feasibility_against_energy() {
        // The MFS core trade-off: higher Pf with higher Eavg can lose to
        // lower Pf with lower Eavg — and vice versa when Pf gets tiny.
        let safe = expected_min_fitness(1.0, 12.0, 1.0, 32); // all feasible, mediocre energy
        let risky = expected_min_fitness(0.3, 10.0, 1.0, 32); // fewer feasible, better energy
        assert!(risky < safe, "risky {risky} !< safe {safe}");
        let too_risky = expected_min_fitness(0.01, 10.0, 1.0, 32);
        assert!(too_risky > risky, "vanishing Pf must hurt");
    }

    #[test]
    fn degenerate_sigma() {
        assert_eq!(expected_min_fitness(1.0, 7.0, 0.0, 32), 7.0);
    }

    /// A surrogate with zeroed dense layers: Pf is the constant
    /// `sigmoid(pf_bias)` and the energy heads are constant too — the
    /// flat predicted landscape whose empty slope set used to sit one
    /// `is_empty()` check away from an `expect` panic.
    fn constant_surrogate(pf_bias: f64) -> Surrogate {
        use crate::dataset::Scalers;
        use crate::surrogate::SurrogateState;
        use mathkit::stats::ZScore;
        use neural::layers::LayerSpec;
        use neural::network::MlpState;
        let dense = |output: usize, bias: Vec<f64>| LayerSpec::Dense {
            input: 2,
            output,
            weights: vec![0.0; 2 * output],
            bias,
        };
        let z = |m: f64, s: f64| ZScore { mean: m, std: s };
        Surrogate::from_state(SurrogateState {
            pf_net: MlpState {
                input_dim: 2,
                layers: vec![dense(1, vec![pf_bias]), LayerSpec::Sigmoid],
            },
            e_net: MlpState {
                input_dim: 2,
                layers: vec![dense(2, vec![0.0, 0.0])],
            },
            scalers: Scalers {
                features: vec![z(0.0, 1.0)],
                log_a: z(0.0, 1.0),
                e_avg: z(5.0, 2.0),
                e_std: z(1.0, 0.5),
            },
        })
        .expect("consistent state")
    }

    #[test]
    fn constant_surrogate_below_slope_falls_back_to_full_domain() {
        // sigmoid(-2) ≈ 0.119 < 0.2 everywhere: the slope set is empty,
        // but Pf·batch ≥ 1 keeps the objective finite — propose must
        // fall back to the full domain and succeed, not panic.
        let sur = constant_surrogate(-2.0);
        let m = propose(&sur, &[0.0], (0.05, 10.0), 24).expect("flat landscape proposes");
        assert!((0.05..=10.0).contains(&m.x), "proposal {} escaped", m.x);
        assert!(m.value.is_finite());
    }

    #[test]
    fn constant_surrogate_on_slope_still_proposes() {
        // sigmoid(0) = 0.5 everywhere: the slope set is the whole grid.
        let sur = constant_surrogate(0.0);
        let m = propose(&sur, &[0.0], (0.05, 10.0), 24).expect("proposes");
        assert!((0.05..=10.0).contains(&m.x));
    }

    #[test]
    fn constant_zero_feasibility_is_a_typed_error() {
        // sigmoid(-40) ≈ 0: every candidate has an infinite expected
        // minimum — NoCandidate, not a panic.
        let sur = constant_surrogate(-40.0);
        assert!(matches!(
            propose(&sur, &[0.0], (0.05, 10.0), 24),
            Err(QrossError::NoCandidate { .. })
        ));
    }
}
