//! Property tests for the *theorems* the paper states or relies on.

use proptest::prelude::*;

use qross_repro::mathkit::special::{normal_cdf, normal_sf};
use qross_repro::problems::tsplib::parse_tsplib;
use qross_repro::problems::{MvcInstance, RelaxableProblem};
use qross_repro::qross::strategy::mfs::expected_min_fitness;
use qross_repro::solvers::ExhaustiveSolver;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Appendix B: "any σ > max(w_i) would ensure that a solver can find
    /// feasible solutions to the weighted MVC problem" — i.e. the QUBO
    /// *global optimum* is a feasible cover. Verified exhaustively on
    /// random graphs up to 12 vertices.
    #[test]
    fn mvc_sigma_above_max_weight_makes_optimum_feasible(
        n in 3usize..12,
        seed in 0u64..300,
        margin in 0.01..5.0f64,
    ) {
        use rand::Rng;
        let mut rng = qross_repro::mathkit::rng::seeded_rng(seed);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if rng.gen::<f64>() < 0.45 {
                    edges.push((i, j));
                }
            }
        }
        let max_w = weights.iter().cloned().fold(0.0_f64, f64::max);
        let graph = MvcInstance::new("thm", weights, edges).unwrap();
        let sigma = max_w + margin;
        let qubo = graph.to_qubo(sigma);
        let ground = ExhaustiveSolver::new().ground_state(&qubo);
        prop_assert!(
            graph.is_feasible(&ground.assignment),
            "σ = {} > max w = {} but the QUBO optimum is infeasible",
            sigma,
            max_w
        );
        // And the optimum's energy equals its cover weight (penalty = 0).
        let fitness = graph.fitness(&ground.assignment).unwrap();
        prop_assert!((ground.energy - fitness).abs() < 1e-9);
    }

    /// Appendix F consistency: the analytic expected-minimum is bounded by
    /// the distribution mean (minimum of m ≥ 1 samples can't exceed the
    /// mean in expectation) and decreases in m.
    #[test]
    fn expected_min_bounded_and_monotone(
        mu in -50.0..50.0f64,
        sigma in 0.01..10.0f64,
        pf in 0.05..1.0f64,
        batch in 1usize..256,
    ) {
        let m = pf * batch as f64;
        prop_assume!(m >= 1.0);
        let v = expected_min_fitness(pf, mu, sigma, batch);
        prop_assert!(v.is_finite());
        prop_assert!(v <= mu + 0.05 * sigma, "E[min] {} above mean {}", v, mu);
        // Monotone in batch size (more samples → lower expected min).
        let v2 = expected_min_fitness(pf, mu, sigma, batch * 2);
        prop_assert!(v2 <= v + 1e-6);
    }

    /// Gaussian CDF/SF identities used by the MFS integral, over wide
    /// parameter ranges.
    #[test]
    fn gaussian_identities(
        x in -100.0..100.0f64,
        mu in -50.0..50.0f64,
        sigma in 0.001..20.0f64,
    ) {
        let c = normal_cdf(x, mu, sigma);
        let s = normal_sf(x, mu, sigma);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!((c + s - 1.0).abs() < 1e-9);
        // Symmetry: CDF(mu + d) + CDF(mu - d) = 1.
        let d = x - mu;
        let mirror = normal_cdf(mu - d, mu, sigma);
        prop_assert!((c + mirror - 1.0).abs() < 1e-9);
    }

    /// TSPLIB writer/parser consistency: formatting arbitrary EUC_2D
    /// instances and re-parsing reproduces the TSPLIB-rounded metric.
    #[test]
    fn tsplib_format_roundtrip(
        coords in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 3..12),
    ) {
        let mut text = String::from("NAME: prop\nTYPE: TSP\nDIMENSION: ");
        text.push_str(&coords.len().to_string());
        text.push_str("\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n");
        for (i, (x, y)) in coords.iter().enumerate() {
            text.push_str(&format!("{} {x} {y}\n", i + 1));
        }
        text.push_str("EOF\n");
        let inst = parse_tsplib(&text).unwrap();
        prop_assert_eq!(inst.num_cities(), coords.len());
        for i in 0..coords.len() {
            for j in (i + 1)..coords.len() {
                let dx = coords[i].0 - coords[j].0;
                let dy = coords[i].1 - coords[j].1;
                let want = ((dx * dx + dy * dy).sqrt() + 0.5).floor();
                prop_assert_eq!(inst.distance(i, j), want);
                prop_assert_eq!(inst.distance(j, i), want);
            }
        }
    }
}
