//! Digital Annealer simulator.
//!
//! Implements the algorithm of Aramon et al., *Physics-inspired optimization
//! for QUBO problems using a digital annealer* (Frontiers in Physics 2019) —
//! the published algorithm behind the Fujitsu Digital Annealer the paper
//! uses as its primary solver. Two features distinguish it from plain SA:
//!
//! 1. **Parallel trial.** At every Monte-Carlo step *all* `n` single-bit
//!    flips are evaluated concurrently; one of the accepted flips is applied
//!    uniformly at random. Because the acceptance test runs on every
//!    neighbour, the effective acceptance probability per step is much
//!    higher than SA's single-candidate test.
//! 2. **Dynamic offset.** When no flip is accepted, an escape offset
//!    `E_off` is increased by `offset_step` and is subtracted from the
//!    energy deltas of the next step, letting the chain climb out of deep
//!    local minima; any accepted move resets `E_off` to zero.
//!
//! The hardware runs each replica on dedicated silicon; here replicas map
//! onto CPU threads.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;
use qubo::{QuboModel, QuboState};

use crate::parallel::parallel_map_with;
use crate::sample::{Sample, SampleSet};
use crate::schedule::BetaSchedule;
use crate::Solver;

/// Configuration for [`DigitalAnnealer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaConfig {
    /// number of Monte-Carlo steps per replica (each step evaluates all
    /// `n` candidate flips)
    pub steps: usize,
    /// optional explicit β range; `None` auto-scales from the model
    pub beta_range: Option<(f64, f64)>,
    /// escape-offset increment applied when a step accepts no flip, as a
    /// fraction of the model's maximum absolute coefficient
    pub offset_step_fraction: f64,
}

impl Default for DaConfig {
    fn default() -> Self {
        DaConfig {
            steps: 2000,
            beta_range: None,
            offset_step_fraction: 0.1,
        }
    }
}

/// CPU simulator of the Fujitsu Digital Annealer algorithm.
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// use solvers::{da::DigitalAnnealer, Solver};
/// let mut b = QuboBuilder::new(3);
/// b.add_linear(0, -2.0);
/// b.add_quadratic(0, 1, 1.0);
/// let model = b.build();
/// let set = DigitalAnnealer::default().sample(&model, 4, 7);
/// assert_eq!(set.best().unwrap().energy, -2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DigitalAnnealer {
    config: DaConfig,
}

impl DigitalAnnealer {
    /// Creates a solver with the given configuration.
    pub fn new(config: DaConfig) -> Self {
        DigitalAnnealer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DaConfig {
        &self.config
    }

    /// Runs one replica in a reused scratch. The parallel-trial loop reads
    /// the maintained flip-delta vector (O(1) per candidate); the one
    /// committed flip is O(degree); incumbent tracking uses the cached
    /// energy — no full `model.energy()` call inside the step loop.
    fn run_replica(
        &self,
        state: &mut QuboState<'_>,
        best_x: &mut Vec<u8>,
        accepted: &mut Vec<usize>,
        schedule: &BetaSchedule,
        seed: u64,
    ) -> Sample {
        let mut rng = derive_rng(seed, 0xDA);
        let model = state.model();
        let n = model.num_vars();
        state.randomize(&mut rng);
        best_x.clear();
        best_x.extend_from_slice(state.assignment());
        let mut best_e = state.energy();
        let offset_step = self.config.offset_step_fraction * model.max_abs_coefficient().max(1e-12);
        let mut e_off = 0.0_f64;
        for beta in schedule.iter() {
            accepted.clear();
            // Parallel trial: every candidate flip is tested against the
            // offset-shifted Metropolis criterion.
            for i in 0..n {
                let delta = state.flip_delta(i) - e_off;
                let ok = if delta <= 0.0 {
                    true
                } else {
                    let exponent = delta * beta;
                    exponent < 40.0 && rng.gen::<f64>() < (-exponent).exp()
                };
                if ok {
                    accepted.push(i);
                }
            }
            if accepted.is_empty() {
                // Dynamic offset: lower the barrier for the next step.
                e_off += offset_step;
                continue;
            }
            e_off = 0.0;
            let pick = accepted[rng.gen_range(0..accepted.len())];
            state.flip(pick);
            if state.energy() < best_e {
                best_e = state.energy();
                best_x.copy_from_slice(state.assignment());
            }
        }
        Sample {
            assignment: best_x.clone(),
            energy: best_e,
        }
    }
}

impl Solver for DigitalAnnealer {
    fn name(&self) -> &str {
        "da"
    }

    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet {
        if model.num_vars() == 0 {
            return SampleSet::from_samples(
                (0..batch)
                    .map(|_| Sample {
                        assignment: Vec::new(),
                        energy: model.offset(),
                    })
                    .collect(),
            );
        }
        let schedule = match self.config.beta_range {
            Some((hot, cold)) => BetaSchedule::geometric(hot, cold, self.config.steps.max(1)),
            None => BetaSchedule::auto(model, self.config.steps.max(1)),
        };
        let samples = parallel_map_with(
            batch,
            || {
                (
                    QuboState::new(model, vec![0; model.num_vars()]),
                    Vec::new(),
                    Vec::with_capacity(model.num_vars()),
                )
            },
            |(state, best_x, accepted), replica| {
                self.run_replica(
                    state,
                    best_x,
                    accepted,
                    &schedule,
                    mathkit::rng::derive_seed(seed, replica as u64),
                )
            },
        );
        SampleSet::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubo::QuboBuilder;

    fn frustrated8() -> QuboModel {
        // Ring of 8 with alternating couplings plus fields: multiple local
        // minima, good escape-offset exercise.
        let mut b = QuboBuilder::new(8);
        for i in 0..8 {
            b.add_linear(i, if i % 2 == 0 { 0.5 } else { -0.5 });
            let j = (i + 1) % 8;
            b.add_quadratic(i, j, if i % 2 == 0 { 1.0 } else { -1.2 });
        }
        b.build()
    }

    fn exact_minimum(model: &QuboModel) -> f64 {
        let n = model.num_vars();
        let mut best = f64::INFINITY;
        for bits in 0..(1u32 << n) {
            let x: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            best = best.min(model.energy(&x));
        }
        best
    }

    #[test]
    fn finds_ground_state() {
        let m = frustrated8();
        let truth = exact_minimum(&m);
        let set = DigitalAnnealer::default().sample(&m, 8, 11);
        assert!((set.best().unwrap().energy - truth).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = frustrated8();
        let solver = DigitalAnnealer::default();
        assert_eq!(solver.sample(&m, 4, 9), solver.sample(&m, 4, 9));
    }

    #[test]
    fn energies_consistent() {
        let m = frustrated8();
        for s in DigitalAnnealer::default().sample(&m, 6, 2).iter() {
            assert!((m.energy(&s.assignment) - s.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn escape_offset_escapes_local_minimum() {
        // Deep double well: x=[0,0] is local (energy 0 barriers around),
        // global is x=[1,1] at -1 but the path through [1,0]/[0,1] costs +5.
        let mut b = QuboBuilder::new(2);
        b.add_linear(0, 5.0);
        b.add_linear(1, 5.0);
        b.add_quadratic(0, 1, -11.0);
        let m = b.build();
        // Cold start config: very few steps at high β would trap plain SA
        // starting at [0,0]; the dynamic offset must still escape.
        let solver = DigitalAnnealer::new(DaConfig {
            steps: 400,
            beta_range: Some((5.0, 50.0)),
            offset_step_fraction: 0.2,
        });
        let set = solver.sample(&m, 8, 3);
        assert_eq!(set.best().unwrap().energy, -1.0);
    }

    #[test]
    fn zero_steps_returns_initial_states() {
        let m = frustrated8();
        let solver = DigitalAnnealer::new(DaConfig {
            steps: 0,
            ..Default::default()
        });
        let set = solver.sample(&m, 4, 1);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn empty_model() {
        let m = QuboBuilder::new(0).build();
        let set = DigitalAnnealer::default().sample(&m, 2, 1);
        assert_eq!(set.len(), 2);
    }
}
