//! Experiment harness: optimality-gap curves (paper Figs. 3–5, Table 1).
//!
//! The paper's metric: for each test instance, run a strategy for `T`
//! trials (each trial = one QUBO-solver call with the proposed `A`) and
//! plot the *normalised optimality gap* of the best fitness found so far,
//! `gap_t = (best_fitness_{≤t} − reference) / reference`, averaged across
//! instances with a 95% confidence band.
//!
//! Until a strategy finds its first feasible solution, its gap is the gap
//! of `fallback_fitness` (a deliberately weak classical tour — documented
//! in EXPERIMENTS.md; the paper does not specify its convention, and this
//! choice penalises infeasible-only prefixes without destroying the
//! curve's scale).
//!
//! # The parallel experiment engine
//!
//! An experiment figure costs `strategies × instances × trials` solver
//! calls. The trials of one `(strategy, instance)` cell are inherently
//! sequential — each proposal conditions on the previous observation — but
//! the cells themselves are independent, so [`run_strategy_grid`] fans the
//! whole grid across a worker pool while [`run_strategy`] stays the
//! sequential per-cell loop it always was.
//!
//! **Seed-derivation contract**: cell `(s, i)` always runs with seed
//! `derive_seed(seed, 9000 + i)` (shared by every strategy on instance
//! `i`, mirroring the benchmark harness), and each trial `t` inside a cell
//! with `derive_seed(cell_seed, 7000 + t)`. Nothing about the schedule
//! feeds the RNG streams.
//!
//! **Thread-count invariance**: because every cell is a pure function of
//! `(problem, solver, strategy factory, cell seed)` and results land in
//! their grid slot, the returned `StrategyRun`s are bit-identical for any
//! worker count — 1, 2, 8 or one-per-core ([`solvers::parallel`] holds the
//! same contract one level down for solver batches; nested fan-out inside
//! a busy worker automatically runs inline).

use serde::{Deserialize, Serialize};

use mathkit::stats::{mean_ci95, MeanCi};
use problems::RelaxableProblem;
use solvers::parallel::parallel_map_with_workers;
use solvers::Solver;

use crate::collect::{observe, SolverObservation};
use crate::strategy::ProposalStrategy;

/// The trial-by-trial record of one strategy on one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyRun {
    /// strategy identifier
    pub strategy: String,
    /// instance identifier
    pub instance: String,
    /// per-trial solver outcomes, in order
    pub trials: Vec<SolverObservation>,
}

impl StrategyRun {
    /// Best feasible fitness over the first `t+1` trials (0-based `t`,
    /// clamped to the recorded length). Returns `None` for an empty run or
    /// when no trial in the window found a feasible solution.
    pub fn best_fitness_through(&self, t: usize) -> Option<f64> {
        if self.trials.is_empty() {
            return None;
        }
        self.trials[..=t.min(self.trials.len() - 1)]
            .iter()
            .filter_map(|o| o.best_fitness)
            .fold(None, |acc: Option<f64>, f| {
                Some(acc.map_or(f, |a| a.min(f)))
            })
    }
}

/// Drives `strategy` against `(problem, solver)` for `trials` trials.
///
/// Each trial performs exactly one solver call of `batch` samples — the
/// same cost accounting as the paper's x-axis ("number of trials a method
/// has taken").
pub fn run_strategy<P, S>(
    problem: &P,
    solver: &S,
    strategy: &mut dyn ProposalStrategy,
    trials: usize,
    batch: usize,
    seed: u64,
) -> StrategyRun
where
    P: RelaxableProblem + ?Sized,
    S: Solver + ?Sized,
{
    let mut outcomes = Vec::with_capacity(trials);
    for t in 0..trials {
        let a = strategy.propose(t);
        let outcome = observe(
            problem,
            solver,
            a,
            batch,
            mathkit::rng::derive_seed(seed, 7000 + t as u64),
        );
        strategy.observe(a, &outcome);
        outcomes.push(outcome);
    }
    StrategyRun {
        strategy: strategy.name().to_string(),
        instance: problem.name().to_string(),
        trials: outcomes,
    }
}

/// Runs a whole `(strategy × instance)` experiment grid concurrently.
///
/// `make_strategy(s, i, cell_seed)` builds a fresh strategy for cell
/// `(s, i)`; the cell then runs the ordinary sequential [`run_strategy`]
/// loop with `cell_seed = derive_seed(seed, 9000 + i)` (the same seed for
/// every strategy on one instance, so methods compete on identical solver
/// randomness). Results are returned as `out[s][i]`.
///
/// `workers` follows [`parallel_map_with_workers`]: `0` means one worker
/// per core, any other value is an exact worker count. The output is
/// **bit-identical for every worker count** — see the module docs for the
/// contract that guarantees it.
#[allow(clippy::too_many_arguments)] // experiment descriptor, not an API
pub fn run_strategy_grid<'s, P, S, F>(
    problems: &[P],
    solver: &S,
    strategies: usize,
    make_strategy: F,
    trials: usize,
    batch: usize,
    seed: u64,
    workers: usize,
) -> Vec<Vec<StrategyRun>>
where
    P: RelaxableProblem + Sync,
    S: Solver + ?Sized,
    F: Fn(usize, usize, u64) -> Box<dyn ProposalStrategy + 's> + Send + Sync,
{
    let n = problems.len();
    if n == 0 || strategies == 0 {
        return vec![Vec::new(); strategies];
    }
    let cells = parallel_map_with_workers(
        strategies * n,
        workers,
        || (),
        |(), cell| {
            let (s, i) = (cell / n, cell % n);
            let cell_seed = mathkit::rng::derive_seed(seed, 9000 + i as u64);
            let mut strategy = make_strategy(s, i, cell_seed);
            run_strategy(
                &problems[i],
                solver,
                strategy.as_mut(),
                trials,
                batch,
                cell_seed,
            )
        },
    );
    let mut grid: Vec<Vec<StrategyRun>> = vec![Vec::with_capacity(n); strategies];
    for (cell, run) in cells.into_iter().enumerate() {
        grid[cell / n].push(run);
    }
    grid
}

/// Converts a run into a best-so-far normalised-gap curve.
///
/// # Panics
///
/// Panics if `reference <= 0` or `fallback_fitness < reference`.
pub fn gap_curve(run: &StrategyRun, reference: f64, fallback_fitness: f64) -> Vec<f64> {
    assert!(reference > 0.0, "reference fitness must be positive");
    assert!(
        fallback_fitness >= reference,
        "fallback must not beat the reference"
    );
    let mut best = f64::INFINITY;
    run.trials
        .iter()
        .map(|o| {
            if let Some(f) = o.best_fitness {
                best = best.min(f);
            }
            let effective = if best.is_finite() {
                best
            } else {
                fallback_fitness
            };
            // The heuristic reference is near-optimal, not optimal: a
            // strategy can legitimately beat it, so clamp at zero like the
            // paper's plots (gap is measured towards near-optimal).
            ((effective - reference) / reference).max(0.0)
        })
        .collect()
}

/// Mean ± 95% CI per trial across instance gap curves (the aggregation in
/// Figs. 3–5).
///
/// No curves, or all-empty curves (a strategy whose every run recorded
/// zero trials), aggregate to an *empty* curve — never a NaN-filled one.
///
/// # Panics
///
/// Panics if curves have differing lengths.
pub fn aggregate_gap_curves(curves: &[Vec<f64>]) -> Vec<MeanCi> {
    if curves.is_empty() {
        return Vec::new();
    }
    let len = curves[0].len();
    assert!(
        curves.iter().all(|c| c.len() == len),
        "curves must share a length"
    );
    (0..len)
        .map(|t| {
            let column: Vec<f64> = curves.iter().map(|c| c[t]).collect();
            mean_ci95(&column)
        })
        .collect()
}

/// A labelled aggregate curve, ready for serialisation into experiment
/// outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodCurve {
    /// method name (`qross`, `tpe`, `bo`, `random`)
    pub method: String,
    /// per-trial mean gap
    pub mean: Vec<f64>,
    /// per-trial 95% CI half-width
    pub ci95: Vec<f64>,
}

impl MethodCurve {
    /// Builds a labelled curve from aggregated statistics.
    pub fn from_cis(method: &str, cis: &[MeanCi]) -> Self {
        MethodCurve {
            method: method.to_string(),
            mean: cis.iter().map(|c| c.mean).collect(),
            ci95: cis.iter().map(|c| c.half_width).collect(),
        }
    }

    /// Gap at a 1-based trial number (the paper's Table 1 reports #3 and
    /// #20), clamped to the available length. Returns NaN for an empty
    /// curve (an all-empty strategy run) instead of panicking.
    pub fn gap_at_trial(&self, trial_1based: usize) -> f64 {
        if self.mean.is_empty() {
            return f64::NAN;
        }
        let idx = trial_1based.saturating_sub(1).min(self.mean.len() - 1);
        self.mean[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::TunerStrategy;
    use problems::{RelaxableProblem, TspEncoding, TspInstance};
    use solvers::sa::{SaConfig, SimulatedAnnealer};
    use tuners::RandomSearch;

    fn tiny_problem() -> TspEncoding {
        TspEncoding::preprocessed(TspInstance::from_coords(
            "t5",
            &[(0.0, 0.0), (2.0, 0.5), (3.0, 2.5), (0.8, 3.0), (-1.0, 1.2)],
        ))
    }

    fn fast_solver() -> SimulatedAnnealer {
        SimulatedAnnealer::new(SaConfig {
            sweeps: 48,
            ..Default::default()
        })
    }

    #[test]
    fn run_strategy_produces_full_record() {
        let p = tiny_problem();
        let s = fast_solver();
        let mut strat = TunerStrategy::new(RandomSearch::new(0.05, 20.0, 3), 1e6);
        let run = run_strategy(&p, &s, &mut strat, 6, 8, 42);
        assert_eq!(run.trials.len(), 6);
        assert_eq!(run.strategy, "random");
        assert_eq!(run.instance, p.name());
    }

    #[test]
    fn gap_curve_monotone_nonincreasing() {
        let p = tiny_problem();
        let s = fast_solver();
        let mut strat = TunerStrategy::new(RandomSearch::new(0.05, 20.0, 1), 1e6);
        let run = run_strategy(&p, &s, &mut strat, 8, 8, 7);
        let (_, reference) = problems::tsp::heuristics::reference_tour(p.fitness_instance(), 5);
        let fallback = reference * 3.0;
        let curve = gap_curve(&run, reference, fallback);
        assert_eq!(curve.len(), 8);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "gap increased: {curve:?}");
        }
        assert!(curve.iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn infeasible_prefix_uses_fallback() {
        let run = StrategyRun {
            strategy: "x".to_string(),
            instance: "i".to_string(),
            trials: vec![
                SolverObservation {
                    a: 0.1,
                    pf: 0.0,
                    e_avg: 0.0,
                    e_std: 0.0,
                    best_fitness: None,
                    min_energy: 0.0,
                },
                SolverObservation {
                    a: 1.0,
                    pf: 0.5,
                    e_avg: 0.0,
                    e_std: 0.0,
                    best_fitness: Some(12.0),
                    min_energy: 0.0,
                },
            ],
        };
        let curve = gap_curve(&run, 10.0, 30.0);
        assert!((curve[0] - 2.0).abs() < 1e-12); // (30-10)/10
        assert!((curve[1] - 0.2).abs() < 1e-12); // (12-10)/10
    }

    #[test]
    fn better_than_reference_clamps_to_zero() {
        let run = StrategyRun {
            strategy: "x".to_string(),
            instance: "i".to_string(),
            trials: vec![SolverObservation {
                a: 1.0,
                pf: 1.0,
                e_avg: 0.0,
                e_std: 0.0,
                best_fitness: Some(9.0),
                min_energy: 0.0,
            }],
        };
        let curve = gap_curve(&run, 10.0, 30.0);
        assert_eq!(curve[0], 0.0);
    }

    #[test]
    fn aggregation_and_table_lookup() {
        let curves = vec![
            vec![0.2, 0.1, 0.1],
            vec![0.4, 0.3, 0.1],
            vec![0.3, 0.2, 0.1],
        ];
        let cis = aggregate_gap_curves(&curves);
        assert_eq!(cis.len(), 3);
        assert!((cis[0].mean - 0.3).abs() < 1e-12);
        assert!((cis[2].mean - 0.1).abs() < 1e-12);
        assert!(cis[0].half_width > 0.0);
        let mc = MethodCurve::from_cis("test", &cis);
        assert_eq!(mc.gap_at_trial(1), cis[0].mean);
        assert_eq!(mc.gap_at_trial(3), cis[2].mean);
        assert_eq!(mc.gap_at_trial(99), cis[2].mean); // clamped
    }

    #[test]
    fn best_fitness_through_tracks_minimum() {
        let run = StrategyRun {
            strategy: "x".to_string(),
            instance: "i".to_string(),
            trials: vec![
                SolverObservation {
                    a: 1.0,
                    pf: 0.0,
                    e_avg: 0.0,
                    e_std: 0.0,
                    best_fitness: None,
                    min_energy: 0.0,
                },
                SolverObservation {
                    a: 1.0,
                    pf: 1.0,
                    e_avg: 0.0,
                    e_std: 0.0,
                    best_fitness: Some(5.0),
                    min_energy: 0.0,
                },
                SolverObservation {
                    a: 1.0,
                    pf: 1.0,
                    e_avg: 0.0,
                    e_std: 0.0,
                    best_fitness: Some(7.0),
                    min_energy: 0.0,
                },
            ],
        };
        assert_eq!(run.best_fitness_through(0), None);
        assert_eq!(run.best_fitness_through(1), Some(5.0));
        assert_eq!(run.best_fitness_through(2), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn aggregation_rejects_ragged() {
        let _ = aggregate_gap_curves(&[vec![0.1], vec![0.1, 0.2]]);
    }

    #[test]
    fn empty_runs_do_not_panic_or_nan() {
        // Regression: an empty trials vec used to underflow
        // `trials.len() - 1` and panic.
        let empty = StrategyRun {
            strategy: "x".to_string(),
            instance: "i".to_string(),
            trials: Vec::new(),
        };
        assert_eq!(empty.best_fitness_through(0), None);
        assert_eq!(empty.best_fitness_through(17), None);
        assert!(gap_curve(&empty, 10.0, 30.0).is_empty());
        // All-empty strategy runs aggregate to an empty curve, not NaN.
        let cis = aggregate_gap_curves(&[Vec::new(), Vec::new()]);
        assert!(cis.is_empty());
        assert!(aggregate_gap_curves(&[]).is_empty());
        let mc = MethodCurve::from_cis("x", &cis);
        assert!(mc.mean.is_empty());
        assert!(mc.gap_at_trial(3).is_nan());
    }

    #[test]
    fn grid_matches_sequential_loop() {
        let p1 = tiny_problem();
        let p2 = TspEncoding::preprocessed(TspInstance::from_coords(
            "t5b",
            &[(0.0, 0.1), (1.8, 0.0), (2.9, 2.2), (1.1, 3.1), (-0.9, 1.4)],
        ));
        let problems = [p1, p2];
        let s = fast_solver();
        let make = |strat: usize, _inst: usize, cell_seed: u64| -> Box<dyn ProposalStrategy> {
            let salt = if strat == 0 { 3u64 } else { 7u64 };
            Box::new(TunerStrategy::new(
                RandomSearch::new(0.05, 20.0, cell_seed.wrapping_add(salt)),
                1e6,
            ))
        };
        let grid = run_strategy_grid(&problems, &s, 2, make, 4, 8, 42, 0);
        assert_eq!(grid.len(), 2);
        // Every cell equals its standalone sequential run.
        for (si, row) in grid.iter().enumerate() {
            assert_eq!(row.len(), 2);
            for (pi, run) in row.iter().enumerate() {
                let cell_seed = mathkit::rng::derive_seed(42, 9000 + pi as u64);
                let mut strat = make(si, pi, cell_seed);
                let want = run_strategy(&problems[pi], &s, strat.as_mut(), 4, 8, cell_seed);
                assert_eq!(run, &want, "cell ({si}, {pi}) diverged");
            }
        }
        // Empty grids are well-formed.
        let empty: Vec<Vec<StrategyRun>> =
            run_strategy_grid(&[] as &[TspEncoding], &s, 2, make, 4, 8, 1, 0);
        assert_eq!(empty, vec![Vec::new(), Vec::new()]);
    }
}
