//! Artifact-store bindings: binary `.qross` encodings for every pipeline
//! artifact.
//!
//! The wire format (container header, section table, CRC per section) is
//! owned by the `qross-store` crate and specified in `ARTIFACTS.md`; this
//! module supplies the per-type payload layouts — how a
//! [`SurrogateDataset`], a [`SurrogateState`], a [`PipelineConfig`], a
//! trained [`QrossBundle`] and the evaluation outputs
//! ([`MethodCurve`] / [`StrategyRun`]) map onto sections of codec
//! primitives. Every `f64` travels as its raw bit pattern, so a decode is
//! bit-identical to what was encoded; decoders validate shapes and
//! finiteness where the in-memory invariants demand it and return typed
//! [`StoreError`]s — never panics — on malformed input.
//!
//! Artifact kind tags:
//!
//! | type                 | kind tag | sections |
//! |----------------------|----------|----------|
//! | [`SurrogateDataset`] | `DSET`   | `DATA` |
//! | [`Scalers`]          | `SCLR`   | `DATA` |
//! | [`SurrogateState`]   | `SURR`   | `SURR` |
//! | [`SurrogateCheckpoint`] | `SURR` (payload v2) | `SURR`, `LINE` (optional) |
//! | [`PipelineConfig`]   | `PCFG`   | `DATA` |
//! | [`CollectedCorpus`]  | `CORP` (payload v2) | `PCFG`, `FEAT`, `INST`, `DSET` |
//! | [`QrossBundle`]      | `BNDL` (payload v2) | `PCFG`, `FEAT`, `SURR`, `INST`, `RPRT` |
//! | [`MethodCurve`]      | `MCRV`   | `DATA` |
//! | [`StrategyRun`]      | `SRUN`   | `DATA` |
//!
//! The `SURR` payload was bumped 1 → 2 **compatibly** for the online
//! hot-swap loop: v2 adds an optional `LINE` section carrying the swap
//! lineage ([`LineageHeader`]), and the v2 reader
//! ([`SurrogateCheckpoint`]) still decodes plain v1 snapshots (lineage
//! `None`). v1 readers ([`SurrogateState`]) reject v2 files with a typed
//! `UnsupportedVersion` rather than misreading them.
//!
//! The `CORP`/`BNDL` payloads were bumped 1 → 2 for the problem-family
//! layer: the v2 `INST` section is **family-tagged and sparse** — it
//! opens with the family name (`"tsp"`), and each instance persists its
//! generating coordinates (2n floats) when it has them, or the
//! upper-triangle distances (n(n−1)/2 floats) otherwise, instead of the
//! dense n×n matrix v1 wrote. Re-deriving distances from coordinates is
//! bit-identical (IEEE 754 ops are deterministic), so reloaded bundles
//! predict bit-identically. The v2 readers still decode v1 payloads;
//! [`CollectedCorpus::to_v1_bytes`] / [`QrossBundle::to_v1_bytes`] emit
//! the legacy dense layout for compatibility gates and size baselines.

use mathkit::stats::ZScore;
use mathkit::Matrix;
use neural::trainer::TrainHistory;
use problems::TspInstance;
use qross_store::codec::{ByteReader, ByteWriter};
use qross_store::{get_mlp_state, put_mlp_state, Artifact, SectionReader, SectionWriter};
use qross_store::{StoreError, FORMAT_VERSION};

use crate::collect::{CollectConfig, SolverObservation};
use crate::dataset::{DatasetRow, Scalers, SurrogateDataset};
use crate::eval::{MethodCurve, StrategyRun};
use crate::features::FeaturizerSpec;
use crate::online::{LineageHeader, SurrogateCheckpoint};
use crate::pipeline::{CollectedCorpus, PipelineConfig, QrossBundle};
use crate::surrogate::{SurrogateConfig, SurrogateState, TrainReport};
use crate::QrossError;

impl From<StoreError> for QrossError {
    fn from(e: StoreError) -> Self {
        QrossError::Persistence {
            message: e.to_string(),
        }
    }
}

fn corrupt(message: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// field-level helpers (shared by several artifacts)
// ---------------------------------------------------------------------------

fn put_zscore(w: &mut ByteWriter, z: &ZScore) {
    w.put_f64(z.mean);
    w.put_f64(z.std);
}

fn get_zscore(r: &mut ByteReader<'_>) -> Result<ZScore, StoreError> {
    Ok(ZScore {
        mean: r.get_f64()?,
        std: r.get_f64()?,
    })
}

pub(crate) fn put_scalers(w: &mut ByteWriter, s: &Scalers) {
    w.put_usize(s.features.len());
    for z in &s.features {
        put_zscore(w, z);
    }
    put_zscore(w, &s.log_a);
    put_zscore(w, &s.e_avg);
    put_zscore(w, &s.e_std);
}

pub(crate) fn get_scalers(r: &mut ByteReader<'_>) -> Result<Scalers, StoreError> {
    let n = r.get_len(16)?;
    let mut features = Vec::with_capacity(n);
    for _ in 0..n {
        features.push(get_zscore(r)?);
    }
    Ok(Scalers {
        features,
        log_a: get_zscore(r)?,
        e_avg: get_zscore(r)?,
        e_std: get_zscore(r)?,
    })
}

/// Flat surrogate-snapshot payload (both heads + scalers) — the single
/// layout shared by the standalone `SURR` artifact and the bundle's
/// `SURR` section, so the two can never drift apart.
fn put_surrogate_state(w: &mut ByteWriter, s: &SurrogateState) {
    put_mlp_state(w, &s.pf_net);
    put_mlp_state(w, &s.e_net);
    put_scalers(w, &s.scalers);
}

/// Decodes [`put_surrogate_state`] output, enforcing the cross-component
/// invariants (head input widths vs scalers, head output widths) that
/// prediction relies on — a snapshot whose sections are individually
/// well-formed but mutually inconsistent is rejected here, not at
/// predict time.
fn get_surrogate_state(r: &mut ByteReader<'_>) -> Result<SurrogateState, StoreError> {
    let state = SurrogateState {
        pf_net: get_mlp_state(r)?,
        e_net: get_mlp_state(r)?,
        scalers: get_scalers(r)?,
    };
    state.validate().map_err(|e| corrupt(e.to_string()))?;
    Ok(state)
}

fn put_instance(w: &mut ByteWriter, inst: &TspInstance) {
    let n = inst.num_cities();
    w.put_str(inst.name());
    w.put_usize(n);
    // Full row-major distance matrix: simple, and `from_matrix` re-checks
    // symmetry and the zero diagonal on decode.
    for i in 0..n {
        for j in 0..n {
            w.put_f64(inst.distance(i, j));
        }
    }
}

fn get_instance(r: &mut ByteReader<'_>) -> Result<TspInstance, StoreError> {
    let name = r.get_str()?;
    let n = r.get_usize()?;
    let cells = n
        .checked_mul(n)
        .ok_or_else(|| corrupt("city count overflows"))?;
    // Bounds-check the declared matrix against the remaining bytes before
    // allocating (8 bytes per f64 cell).
    if cells
        .checked_mul(8)
        .map(|bytes| bytes > r.remaining())
        .unwrap_or(true)
    {
        return Err(corrupt(format!(
            "instance `{name}`: {n}x{n} distance matrix outruns the input"
        )));
    }
    let mut data = Vec::with_capacity(cells);
    for _ in 0..cells {
        data.push(r.get_f64()?);
    }
    TspInstance::from_matrix(&name, Matrix::from_vec(n, n, data))
        .map_err(|e| corrupt(format!("instance `{name}`: {e}")))
}

fn put_instances(w: &mut ByteWriter, instances: &[TspInstance]) {
    w.put_usize(instances.len());
    for inst in instances {
        put_instance(w, inst);
    }
}

fn get_instances(r: &mut ByteReader<'_>) -> Result<Vec<TspInstance>, StoreError> {
    // Each instance costs ≥ 16 bytes (name length + city count) even when
    // empty, which bounds the count before allocation.
    let n = r.get_len(16)?;
    (0..n).map(|_| get_instance(r)).collect()
}

// v2 instance encoding (family-tagged, sparse). Instances built from
// coordinates persist those (2n floats); explicit-matrix instances
// persist the upper triangle (n(n−1)/2 floats). Both decode paths
// rebuild the dense matrix bit-identically: coordinates re-derive
// distances through the same deterministic IEEE 754 ops, and the upper
// triangle mirrors exactly.

const INST_COORDS: u8 = 0;
const INST_UPPER_TRI: u8 = 1;

/// Family tag opening every v2 `INST` section. The pipeline's corpus
/// and bundle artifacts are TSP-typed today; the tag makes the section
/// self-describing so future family-typed artifacts can share the
/// layout without a further payload bump.
const INST_FAMILY: &str = "tsp";

fn put_instance_v2(w: &mut ByteWriter, inst: &TspInstance) {
    w.put_str(inst.name());
    match inst.coords() {
        Some(coords) => {
            w.put_u8(INST_COORDS);
            w.put_usize(coords.len());
            for &(x, y) in coords {
                w.put_f64(x);
                w.put_f64(y);
            }
        }
        None => {
            let n = inst.num_cities();
            w.put_u8(INST_UPPER_TRI);
            w.put_usize(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    w.put_f64(inst.distance(i, j));
                }
            }
        }
    }
}

fn get_instance_v2(r: &mut ByteReader<'_>) -> Result<TspInstance, StoreError> {
    let name = r.get_str()?;
    let kind = r.get_u8()?;
    let n = r.get_usize()?;
    match kind {
        INST_COORDS => {
            if n.checked_mul(16)
                .map(|bytes| bytes > r.remaining())
                .unwrap_or(true)
            {
                return Err(corrupt(format!(
                    "instance `{name}`: {n} coordinate pairs outrun the input"
                )));
            }
            let mut coords = Vec::with_capacity(n);
            for _ in 0..n {
                coords.push((r.get_f64()?, r.get_f64()?));
            }
            for (i, &(x, y)) in coords.iter().enumerate() {
                if !x.is_finite() || !y.is_finite() {
                    return Err(corrupt(format!(
                        "instance `{name}`: non-finite coordinate at city {i}"
                    )));
                }
            }
            Ok(TspInstance::from_coords(&name, &coords))
        }
        INST_UPPER_TRI => {
            let cells = n
                .checked_mul(n.saturating_sub(1))
                .map(|c| c / 2)
                .ok_or_else(|| corrupt("city count overflows"))?;
            if cells
                .checked_mul(8)
                .map(|bytes| bytes > r.remaining())
                .unwrap_or(true)
            {
                return Err(corrupt(format!(
                    "instance `{name}`: {n}-city upper triangle outruns the input"
                )));
            }
            let mut dist = Matrix::zeros(n, n);
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = r.get_f64()?;
                    dist[(i, j)] = d;
                    dist[(j, i)] = d;
                }
            }
            TspInstance::from_matrix(&name, dist)
                .map_err(|e| corrupt(format!("instance `{name}`: {e}")))
        }
        other => Err(corrupt(format!(
            "instance `{name}`: unknown storage kind {other:#04x}"
        ))),
    }
}

fn put_instances_v2(w: &mut ByteWriter, instances: &[TspInstance]) {
    w.put_usize(instances.len());
    for inst in instances {
        put_instance_v2(w, inst);
    }
}

fn get_instances_v2(r: &mut ByteReader<'_>) -> Result<Vec<TspInstance>, StoreError> {
    // Each instance costs ≥ 17 bytes (name length + kind byte + count).
    let n = r.get_len(17)?;
    (0..n).map(|_| get_instance_v2(r)).collect()
}

/// Writes the v2 `INST` section body (family tag + train + test).
fn put_instance_section_v2(w: &mut ByteWriter, train: &[TspInstance], test: &[TspInstance]) {
    w.put_str(INST_FAMILY);
    put_instances_v2(w, train);
    put_instances_v2(w, test);
}

/// Reads an `INST` section at either payload version.
fn get_instance_section(
    r: &mut ByteReader<'_>,
    payload_version: u32,
) -> Result<(Vec<TspInstance>, Vec<TspInstance>), StoreError> {
    if payload_version >= 2 {
        let family = r.get_str()?;
        if family != INST_FAMILY {
            return Err(corrupt(format!(
                "instance section is `{family}`-typed, expected `{INST_FAMILY}`"
            )));
        }
        Ok((get_instances_v2(r)?, get_instances_v2(r)?))
    } else {
        Ok((get_instances(r)?, get_instances(r)?))
    }
}

fn put_dataset(w: &mut ByteWriter, ds: &SurrogateDataset) {
    w.put_usize(ds.feat_dim());
    w.put_usize(ds.len());
    for row in ds.rows() {
        w.put_f64_slice(&row.features);
        w.put_f64(row.a);
        w.put_f64(row.pf);
        w.put_f64(row.e_avg);
        w.put_f64(row.e_std);
    }
}

fn get_dataset(r: &mut ByteReader<'_>) -> Result<SurrogateDataset, StoreError> {
    let feat_dim = r.get_usize()?;
    // A row is at least 40 bytes (feature length prefix + 4 scalars).
    let n = r.get_len(40)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(DatasetRow {
            features: r.get_f64_vec()?,
            a: r.get_f64()?,
            pf: r.get_f64()?,
            e_avg: r.get_f64()?,
            e_std: r.get_f64()?,
        });
    }
    SurrogateDataset::try_from_rows(feat_dim, rows).map_err(|e| corrupt(e.to_string()))
}

fn put_history(w: &mut ByteWriter, h: &TrainHistory) {
    w.put_f64_slice(&h.train_loss);
    w.put_f64_slice(&h.val_loss);
    w.put_bool(h.diverged);
}

fn get_history(r: &mut ByteReader<'_>) -> Result<TrainHistory, StoreError> {
    Ok(TrainHistory {
        train_loss: r.get_f64_vec()?,
        val_loss: r.get_f64_vec()?,
        diverged: r.get_bool()?,
    })
}

fn put_report(w: &mut ByteWriter, report: &TrainReport) {
    put_history(w, &report.pf);
    put_history(w, &report.energy);
    w.put_usize(report.train_rows);
    w.put_usize(report.val_rows);
}

fn get_report(r: &mut ByteReader<'_>) -> Result<TrainReport, StoreError> {
    Ok(TrainReport {
        pf: get_history(r)?,
        energy: get_history(r)?,
        train_rows: r.get_usize()?,
        val_rows: r.get_usize()?,
    })
}

const FEAT_STATISTICAL: u8 = 0;
const FEAT_RANDOM_GCN: u8 = 1;

fn put_featurizer_spec(w: &mut ByteWriter, spec: &FeaturizerSpec) {
    match *spec {
        FeaturizerSpec::Statistical => w.put_u8(FEAT_STATISTICAL),
        FeaturizerSpec::RandomGcn { hidden, seed } => {
            w.put_u8(FEAT_RANDOM_GCN);
            w.put_usize(hidden);
            w.put_u64(seed);
        }
    }
}

fn get_featurizer_spec(r: &mut ByteReader<'_>) -> Result<FeaturizerSpec, StoreError> {
    match r.get_u8()? {
        FEAT_STATISTICAL => Ok(FeaturizerSpec::Statistical),
        FEAT_RANDOM_GCN => Ok(FeaturizerSpec::RandomGcn {
            hidden: r.get_usize()?,
            seed: r.get_u64()?,
        }),
        other => Err(corrupt(format!("unknown featurizer tag {other:#04x}"))),
    }
}

fn put_pipeline_config(w: &mut ByteWriter, cfg: &PipelineConfig) {
    w.put_usize(cfg.generator.min_cities);
    w.put_usize(cfg.generator.max_cities);
    w.put_f64(cfg.generator.uniform_side);
    w.put_f64(cfg.generator.exp_rate_range.0);
    w.put_f64(cfg.generator.exp_rate_range.1);
    w.put_usize(cfg.train_instances);
    w.put_usize(cfg.test_instances);
    w.put_f64(cfg.collect.a_init);
    w.put_f64(cfg.collect.probe_factor);
    w.put_f64(cfg.collect.a_bounds.0);
    w.put_f64(cfg.collect.a_bounds.1);
    w.put_usize(cfg.collect.sweep_points);
    w.put_f64(cfg.collect.plateau_margin);
    w.put_usize(cfg.collect.batch);
    w.put_usize(cfg.surrogate.hidden);
    w.put_usize(cfg.surrogate.epochs);
    w.put_f64(cfg.surrogate.learning_rate);
    w.put_usize(cfg.surrogate.batch_size);
    w.put_f64(cfg.surrogate.val_fraction);
    w.put_u64(cfg.surrogate.seed);
    w.put_u64(cfg.seed);
    w.put_usize(cfg.workers);
}

fn get_pipeline_config(r: &mut ByteReader<'_>) -> Result<PipelineConfig, StoreError> {
    Ok(PipelineConfig {
        generator: problems::tsp::generator::GeneratorConfig {
            min_cities: r.get_usize()?,
            max_cities: r.get_usize()?,
            uniform_side: r.get_f64()?,
            exp_rate_range: (r.get_f64()?, r.get_f64()?),
        },
        train_instances: r.get_usize()?,
        test_instances: r.get_usize()?,
        collect: CollectConfig {
            a_init: r.get_f64()?,
            probe_factor: r.get_f64()?,
            a_bounds: (r.get_f64()?, r.get_f64()?),
            sweep_points: r.get_usize()?,
            plateau_margin: r.get_f64()?,
            batch: r.get_usize()?,
        },
        surrogate: SurrogateConfig {
            hidden: r.get_usize()?,
            epochs: r.get_usize()?,
            learning_rate: r.get_f64()?,
            batch_size: r.get_usize()?,
            val_fraction: r.get_f64()?,
            seed: r.get_u64()?,
        },
        seed: r.get_u64()?,
        workers: r.get_usize()?,
    })
}

fn put_observation(w: &mut ByteWriter, obs: &SolverObservation) {
    w.put_f64(obs.a);
    w.put_f64(obs.pf);
    w.put_f64(obs.e_avg);
    w.put_f64(obs.e_std);
    w.put_opt_f64(obs.best_fitness);
    w.put_f64(obs.min_energy);
}

fn get_observation(r: &mut ByteReader<'_>) -> Result<SolverObservation, StoreError> {
    Ok(SolverObservation {
        a: r.get_f64()?,
        pf: r.get_f64()?,
        e_avg: r.get_f64()?,
        e_std: r.get_f64()?,
        best_fitness: r.get_opt_f64()?,
        min_energy: r.get_f64()?,
    })
}

// ---------------------------------------------------------------------------
// Artifact implementations
// ---------------------------------------------------------------------------

impl Artifact for SurrogateDataset {
    const KIND: [u8; 4] = *b"DSET";

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"DATA", |w| put_dataset(w, self));
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut r = reader.section(*b"DATA")?;
        let ds = get_dataset(&mut r)?;
        r.finish()?;
        Ok(ds)
    }
}

impl Artifact for Scalers {
    const KIND: [u8; 4] = *b"SCLR";

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"DATA", |w| put_scalers(w, self));
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut r = reader.section(*b"DATA")?;
        let s = get_scalers(&mut r)?;
        r.finish()?;
        Ok(s)
    }
}

impl Artifact for SurrogateState {
    const KIND: [u8; 4] = *b"SURR";

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"SURR", |w| put_surrogate_state(w, self));
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut r = reader.section(*b"SURR")?;
        let state = get_surrogate_state(&mut r)?;
        r.finish()?;
        Ok(state)
    }
}

fn put_lineage(w: &mut ByteWriter, l: &LineageHeader) {
    w.put_u64(l.generation);
    w.put_u64(l.parent_generation);
    w.put_u64(l.seed);
    w.put_u64(l.retrain_index);
    w.put_u64(l.feedback_count);
    w.put_u64(l.replay_len);
}

fn get_lineage(r: &mut ByteReader<'_>) -> Result<LineageHeader, StoreError> {
    Ok(LineageHeader {
        generation: r.get_u64()?,
        parent_generation: r.get_u64()?,
        seed: r.get_u64()?,
        retrain_index: r.get_u64()?,
        feedback_count: r.get_u64()?,
        replay_len: r.get_u64()?,
    })
}

/// The online checkpoint: `SURR` payload **v2** — the v1 surrogate
/// snapshot plus an optional `LINE` lineage section. Reads v1 files too
/// (lineage decodes to `None`), so a checkpoint-aware loader subsumes
/// plain snapshots; a v1 reader ([`SurrogateState`]) encountering a v2
/// checkpoint gets a typed `UnsupportedVersion`, never a misparse.
impl Artifact for SurrogateCheckpoint {
    const KIND: [u8; 4] = *b"SURR";
    const VERSION: u32 = 2;

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"SURR", |w| put_surrogate_state(w, &self.state));
        if let Some(lineage) = &self.lineage {
            out.section(*b"LINE", |w| put_lineage(w, lineage));
        }
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut sur = reader.section(*b"SURR")?;
        let state = get_surrogate_state(&mut sur)?;
        sur.finish()?;
        let lineage = if reader.tags().contains(b"LINE") {
            let mut line = reader.section(*b"LINE")?;
            let lineage = get_lineage(&mut line)?;
            line.finish()?;
            if lineage.generation <= lineage.parent_generation {
                return Err(corrupt(format!(
                    "lineage runs backwards: generation {} from parent {}",
                    lineage.generation, lineage.parent_generation
                )));
            }
            Some(lineage)
        } else {
            None
        };
        Ok(SurrogateCheckpoint { lineage, state })
    }
}

impl Artifact for PipelineConfig {
    const KIND: [u8; 4] = *b"PCFG";

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"DATA", |w| put_pipeline_config(w, self));
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut r = reader.section(*b"DATA")?;
        let cfg = get_pipeline_config(&mut r)?;
        r.finish()?;
        Ok(cfg)
    }
}

/// Corpus payload **v2**: the `INST` section is family-tagged and
/// sparse (see the module docs). The reader still decodes v1 payloads
/// with their dense matrices.
impl Artifact for CollectedCorpus {
    const KIND: [u8; 4] = *b"CORP";
    const VERSION: u32 = 2;

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"PCFG", |w| put_pipeline_config(w, &self.config));
        out.section(*b"FEAT", |w| put_featurizer_spec(w, &self.featurizer));
        out.section(*b"INST", |w| {
            put_instance_section_v2(w, &self.train_instances, &self.test_instances);
        });
        out.section(*b"DSET", |w| put_dataset(w, &self.dataset));
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut cfg = reader.section(*b"PCFG")?;
        let config = get_pipeline_config(&mut cfg)?;
        cfg.finish()?;
        let mut feat = reader.section(*b"FEAT")?;
        let featurizer = get_featurizer_spec(&mut feat)?;
        feat.finish()?;
        let mut inst = reader.section(*b"INST")?;
        let (train_instances, test_instances) =
            get_instance_section(&mut inst, reader.payload_version)?;
        inst.finish()?;
        let mut ds = reader.section(*b"DSET")?;
        let dataset = get_dataset(&mut ds)?;
        ds.finish()?;
        // Cross-section invariant: the featurizer recipe must produce
        // the dataset's feature width, or the serve stage would panic on
        // width mismatch after an expensive training run.
        if featurizer.dim() != dataset.feat_dim() {
            return Err(corrupt(format!(
                "featurizer produces {} features but the dataset holds {}",
                featurizer.dim(),
                dataset.feat_dim()
            )));
        }
        Ok(CollectedCorpus {
            config,
            featurizer,
            train_instances,
            test_instances,
            dataset,
        })
    }
}

/// Bundle payload **v2**: same family-tagged sparse `INST` section as
/// [`CollectedCorpus`]; the reader still decodes v1 payloads.
impl Artifact for QrossBundle {
    const KIND: [u8; 4] = *b"BNDL";
    const VERSION: u32 = 2;

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"PCFG", |w| put_pipeline_config(w, &self.config));
        out.section(*b"FEAT", |w| put_featurizer_spec(w, &self.featurizer));
        out.section(*b"SURR", |w| put_surrogate_state(w, &self.surrogate));
        out.section(*b"INST", |w| {
            put_instance_section_v2(w, &self.train_instances, &self.test_instances);
        });
        out.section(*b"RPRT", |w| {
            w.put_usize(self.dataset_len);
            put_report(w, &self.report);
        });
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut cfg = reader.section(*b"PCFG")?;
        let config = get_pipeline_config(&mut cfg)?;
        cfg.finish()?;
        let mut feat = reader.section(*b"FEAT")?;
        let featurizer = get_featurizer_spec(&mut feat)?;
        feat.finish()?;
        let mut sur = reader.section(*b"SURR")?;
        let surrogate = get_surrogate_state(&mut sur)?;
        sur.finish()?;
        let mut inst = reader.section(*b"INST")?;
        let (train_instances, test_instances) =
            get_instance_section(&mut inst, reader.payload_version)?;
        inst.finish()?;
        let mut rp = reader.section(*b"RPRT")?;
        let dataset_len = rp.get_usize()?;
        let report = get_report(&mut rp)?;
        rp.finish()?;
        // Cross-section invariant beyond the snapshot's own checks: the
        // featurizer's output width (plus the ln-A column) must match
        // what the surrogate was trained on.
        if featurizer.dim() + 1 != surrogate.scalers.input_dim() {
            return Err(corrupt(format!(
                "featurizer produces {} features but the surrogate expects {}",
                featurizer.dim(),
                surrogate.scalers.input_dim() - 1
            )));
        }
        Ok(QrossBundle {
            config,
            featurizer,
            surrogate,
            train_instances,
            test_instances,
            dataset_len,
            report,
        })
    }
}

impl CollectedCorpus {
    /// Encodes this corpus as a **payload v1** container (dense n×n
    /// instance matrices), exactly as pre-v2 writers produced. Kept for
    /// the v1-reader compatibility gate and as the size baseline the
    /// sparse layout is measured against; new code should use
    /// [`Artifact::to_store_bytes`].
    pub fn to_v1_bytes(&self) -> Vec<u8> {
        let mut out = SectionWriter::new();
        out.section(*b"PCFG", |w| put_pipeline_config(w, &self.config));
        out.section(*b"FEAT", |w| put_featurizer_spec(w, &self.featurizer));
        out.section(*b"INST", |w| {
            put_instances(w, &self.train_instances);
            put_instances(w, &self.test_instances);
        });
        out.section(*b"DSET", |w| put_dataset(w, &self.dataset));
        out.encode(Self::KIND, 1)
    }
}

impl QrossBundle {
    /// Encodes this bundle as a **payload v1** container (dense n×n
    /// instance matrices); see [`CollectedCorpus::to_v1_bytes`].
    pub fn to_v1_bytes(&self) -> Vec<u8> {
        let mut out = SectionWriter::new();
        out.section(*b"PCFG", |w| put_pipeline_config(w, &self.config));
        out.section(*b"FEAT", |w| put_featurizer_spec(w, &self.featurizer));
        out.section(*b"SURR", |w| put_surrogate_state(w, &self.surrogate));
        out.section(*b"INST", |w| {
            put_instances(w, &self.train_instances);
            put_instances(w, &self.test_instances);
        });
        out.section(*b"RPRT", |w| {
            w.put_usize(self.dataset_len);
            put_report(w, &self.report);
        });
        out.encode(Self::KIND, 1)
    }
}

impl Artifact for MethodCurve {
    const KIND: [u8; 4] = *b"MCRV";

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"DATA", |w| {
            w.put_str(&self.method);
            w.put_f64_slice(&self.mean);
            w.put_f64_slice(&self.ci95);
        });
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut r = reader.section(*b"DATA")?;
        let curve = MethodCurve {
            method: r.get_str()?,
            mean: r.get_f64_vec()?,
            ci95: r.get_f64_vec()?,
        };
        r.finish()?;
        if curve.mean.len() != curve.ci95.len() {
            return Err(corrupt(format!(
                "curve `{}`: {} means vs {} CI half-widths",
                curve.method,
                curve.mean.len(),
                curve.ci95.len()
            )));
        }
        Ok(curve)
    }
}

impl Artifact for StrategyRun {
    const KIND: [u8; 4] = *b"SRUN";

    fn write_sections(&self, out: &mut SectionWriter) {
        out.section(*b"DATA", |w| {
            w.put_str(&self.strategy);
            w.put_str(&self.instance);
            w.put_usize(self.trials.len());
            for obs in &self.trials {
                put_observation(w, obs);
            }
        });
    }

    fn read_sections(reader: &SectionReader<'_>) -> Result<Self, StoreError> {
        let mut r = reader.section(*b"DATA")?;
        let strategy = r.get_str()?;
        let instance = r.get_str()?;
        // An observation is 41 bytes minimum (5 f64 + option tag).
        let n = r.get_len(41)?;
        let mut trials = Vec::with_capacity(n);
        for _ in 0..n {
            trials.push(get_observation(&mut r)?);
        }
        r.finish()?;
        Ok(StrategyRun {
            strategy,
            instance,
            trials,
        })
    }
}

/// Compile-time guard: the module is written against container format 1;
/// bumping `qross-store`'s `FORMAT_VERSION` must be a conscious decision
/// revisiting every payload layout here.
const _: () = assert!(FORMAT_VERSION == 1);

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scalers() -> Scalers {
        Scalers {
            features: vec![
                ZScore {
                    mean: 0.5,
                    std: 2.0,
                },
                ZScore {
                    mean: -3.25,
                    std: 0.125,
                },
            ],
            log_a: ZScore {
                mean: 0.0,
                std: 1.5,
            },
            e_avg: ZScore {
                mean: 100.0,
                std: 12.5,
            },
            e_std: ZScore {
                mean: 4.0,
                std: 0.5,
            },
        }
    }

    fn sample_dataset() -> SurrogateDataset {
        let mut ds = SurrogateDataset::new(2);
        for i in 0..7 {
            ds.push(DatasetRow {
                features: vec![i as f64, -0.5 * i as f64],
                a: 0.25 + i as f64,
                pf: i as f64 / 7.0,
                e_avg: 10.0 - i as f64,
                e_std: 1.0 + 0.1 * i as f64,
            });
        }
        ds
    }

    #[test]
    fn dataset_roundtrips_bit_exact() {
        let ds = sample_dataset();
        let back = SurrogateDataset::from_store_bytes(&ds.to_store_bytes()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn scalers_roundtrip() {
        let s = sample_scalers();
        let back = Scalers::from_store_bytes(&s.to_store_bytes()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pipeline_config_roundtrip() {
        for cfg in [
            PipelineConfig::micro(),
            PipelineConfig::quick(),
            PipelineConfig::paper(),
        ] {
            let back = PipelineConfig::from_store_bytes(&cfg.to_store_bytes()).unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn method_curve_and_run_roundtrip() {
        let curve = MethodCurve {
            method: "qross".to_string(),
            mean: vec![0.5, 0.25, 0.1],
            ci95: vec![0.05, 0.04, 0.02],
        };
        let back = MethodCurve::from_store_bytes(&curve.to_store_bytes()).unwrap();
        assert_eq!(back, curve);

        let run = StrategyRun {
            strategy: "tpe".to_string(),
            instance: "t9".to_string(),
            trials: vec![
                SolverObservation {
                    a: 1.5,
                    pf: 0.5,
                    e_avg: 3.0,
                    e_std: 0.25,
                    best_fitness: Some(12.0),
                    min_energy: 2.5,
                },
                SolverObservation {
                    a: 0.5,
                    pf: 0.0,
                    e_avg: 1.0,
                    e_std: 0.5,
                    best_fitness: None,
                    min_energy: 0.75,
                },
            ],
        };
        let back = StrategyRun::from_store_bytes(&run.to_store_bytes()).unwrap();
        assert_eq!(back, run);
    }

    #[test]
    fn curve_length_mismatch_rejected() {
        let curve = MethodCurve {
            method: "x".to_string(),
            mean: vec![0.1, 0.2],
            ci95: vec![0.01],
        };
        // Encoding is possible; decoding must reject the inconsistency.
        let bytes = curve.to_store_bytes();
        assert!(matches!(
            MethodCurve::from_store_bytes(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn corrupted_dataset_row_is_typed_error_not_panic() {
        let ds = sample_dataset();
        let bytes = ds.to_store_bytes();
        // Overwrite the `a` field of the first row with NaN *and* refresh
        // nothing else: the CRC must reject it. (A hostile writer could
        // also refresh the CRC — then `try_from_rows` validation catches
        // the non-finite value; both paths are errors, not panics.)
        let mut evil = bytes.clone();
        let len = evil.len();
        for byte in &mut evil[len - 64..] {
            *byte ^= 0xFF;
        }
        assert!(SurrogateDataset::from_store_bytes(&evil).is_err());
    }

    #[test]
    fn json_load_enforces_binary_invariants() {
        // The JSON format silently degrades non-finite values to `null`
        // (→ NaN on decode); `load_json`/`load_auto` must catch that via
        // revalidation instead of returning an invariant-violating
        // dataset that poisons downstream scaler fits.
        let ds = sample_dataset();
        let json = serde_json::to_string_pretty(&ds).unwrap();
        let evil = json.replacen("\"pf\":", "\"pf\": null, \"ignored\":", 1);
        assert_ne!(evil, json, "test setup failed to corrupt the JSON");
        let dir = std::env::temp_dir().join("qross_core_store_json");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evil.json");
        std::fs::write(&path, &evil).unwrap();
        assert!(matches!(
            SurrogateDataset::load_json(&path),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            SurrogateDataset::load_auto(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // The untampered JSON still loads fine through both paths.
        std::fs::write(&path, &json).unwrap();
        assert_eq!(SurrogateDataset::load_json(&path).unwrap(), ds);
        assert_eq!(SurrogateDataset::load_auto(&path).unwrap(), ds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn instances_roundtrip_via_corpus() {
        let inst = TspInstance::from_coords(
            "tri",
            &[(0.0, 0.0), (3.0, 0.0), (0.0, 4.0), (1.0, 1.0), (2.5, 2.5)],
        );
        // RandomGcn with 4 hidden channels produces 2*4+2 = 10 features;
        // the dataset's width must agree or decoding rejects the corpus.
        let mut dataset = SurrogateDataset::new(10);
        for i in 0..5 {
            dataset.push(DatasetRow {
                features: (0..10).map(|c| (i * 10 + c) as f64 / 7.0).collect(),
                a: 0.5 + i as f64,
                pf: i as f64 / 5.0,
                e_avg: 3.0 - i as f64,
                e_std: 0.5,
            });
        }
        let corpus = CollectedCorpus {
            config: PipelineConfig::micro(),
            featurizer: FeaturizerSpec::RandomGcn { hidden: 4, seed: 9 },
            train_instances: vec![inst.clone()],
            test_instances: vec![inst.clone(), inst],
            dataset,
        };
        let back = CollectedCorpus::from_store_bytes(&corpus.to_store_bytes()).unwrap();
        assert_eq!(back.config, corpus.config);
        assert_eq!(back.featurizer, corpus.featurizer);
        assert_eq!(back.train_instances, corpus.train_instances);
        assert_eq!(back.test_instances, corpus.test_instances);
        assert_eq!(back.dataset, corpus.dataset);
    }

    fn coord_corpus(cities: usize, instances: usize) -> CollectedCorpus {
        let train: Vec<TspInstance> = (0..instances)
            .map(|k| {
                let coords: Vec<(f64, f64)> = (0..cities)
                    .map(|i| {
                        let t = (k * cities + i) as f64;
                        (t * 1.25 + 0.5, (t * 0.75).sin() * 10.0)
                    })
                    .collect();
                TspInstance::from_coords(&format!("c{k}"), &coords)
            })
            .collect();
        CollectedCorpus {
            config: PipelineConfig::micro(),
            featurizer: FeaturizerSpec::RandomGcn { hidden: 4, seed: 9 },
            train_instances: train.clone(),
            test_instances: train,
            dataset: {
                let mut ds = SurrogateDataset::new(10);
                ds.push(DatasetRow {
                    features: vec![0.5; 10],
                    a: 1.0,
                    pf: 0.5,
                    e_avg: 1.0,
                    e_std: 0.1,
                });
                ds
            },
        }
    }

    #[test]
    fn v1_payload_still_decodes() {
        // A legacy dense-matrix corpus loads through the v2 reader with
        // bit-identical distances; only the coordinate provenance (not
        // representable in v1) is lost.
        let corpus = coord_corpus(6, 3);
        let v1 = corpus.to_v1_bytes();
        let back = CollectedCorpus::from_store_bytes(&v1).unwrap();
        assert_eq!(back.config, corpus.config);
        assert_eq!(back.dataset, corpus.dataset);
        for (a, b) in back.train_instances.iter().zip(&corpus.train_instances) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
            assert!(a.coords().is_none());
        }
    }

    #[test]
    fn v2_roundtrip_preserves_coords_and_explicit_instances() {
        let mut corpus = coord_corpus(6, 2);
        // Mix in an explicit-matrix instance (coords dropped by scaling):
        // it takes the upper-triangle path.
        let explicit = corpus.train_instances[0].scaled(2.0);
        assert!(explicit.coords().is_none());
        corpus.train_instances.push(explicit);
        let back = CollectedCorpus::from_store_bytes(&corpus.to_store_bytes()).unwrap();
        assert_eq!(back.train_instances, corpus.train_instances);
        assert_eq!(back.test_instances, corpus.test_instances);
    }

    #[test]
    fn v2_corpus_is_smaller_than_dense_v1() {
        // The headline saving: 2n coordinates instead of n² matrix cells.
        let corpus = coord_corpus(12, 4);
        let v2 = corpus.to_store_bytes().len();
        let v1 = corpus.to_v1_bytes().len();
        assert!(
            v2 < v1,
            "sparse v2 ({v2} bytes) did not shrink vs dense v1 ({v1} bytes)"
        );
    }

    #[test]
    fn corpus_featurizer_width_mismatch_rejected() {
        // feat_dim 2 dataset with a 10-wide featurizer recipe: encodes,
        // but decoding must reject the cross-section inconsistency.
        let corpus = CollectedCorpus {
            config: PipelineConfig::micro(),
            featurizer: FeaturizerSpec::RandomGcn { hidden: 4, seed: 9 },
            train_instances: Vec::new(),
            test_instances: Vec::new(),
            dataset: sample_dataset(),
        };
        assert!(matches!(
            CollectedCorpus::from_store_bytes(&corpus.to_store_bytes()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    fn sample_surrogate_state() -> SurrogateState {
        use neural::network::MlpBuilder;
        SurrogateState {
            pf_net: MlpBuilder::new(3)
                .dense(4)
                .relu()
                .dense(1)
                .sigmoid()
                .build(5)
                .to_state(),
            e_net: MlpBuilder::new(3)
                .dense(4)
                .relu()
                .dense(2)
                .build(6)
                .to_state(),
            scalers: sample_scalers(),
        }
    }

    #[test]
    fn checkpoint_roundtrips_with_lineage() {
        let ckpt = SurrogateCheckpoint {
            lineage: Some(LineageHeader {
                generation: 7,
                parent_generation: 6,
                seed: 42,
                retrain_index: 7,
                feedback_count: 448,
                replay_len: 128,
            }),
            state: sample_surrogate_state(),
        };
        let bytes = ckpt.to_store_bytes();
        let back = SurrogateCheckpoint::from_store_bytes(&bytes).unwrap();
        assert_eq!(back.lineage, ckpt.lineage);
        assert_eq!(back.state.pf_net, ckpt.state.pf_net);
        assert_eq!(back.state.e_net, ckpt.state.e_net);
        assert_eq!(back.state.scalers, ckpt.state.scalers);
    }

    #[test]
    fn checkpoint_reader_accepts_v1_snapshots() {
        // A plain v1 SurrogateState file loads as a lineage-less
        // checkpoint: the payload bump is backwards compatible.
        let state = sample_surrogate_state();
        let v1_bytes = state.to_store_bytes();
        let back = SurrogateCheckpoint::from_store_bytes(&v1_bytes).unwrap();
        assert!(back.lineage.is_none());
        assert_eq!(back.state.pf_net, state.pf_net);
    }

    #[test]
    fn v1_reader_rejects_v2_checkpoints_typed() {
        // The old reader must refuse the newer payload instead of
        // silently dropping the lineage it does not understand.
        let ckpt = SurrogateCheckpoint {
            lineage: Some(LineageHeader {
                generation: 1,
                parent_generation: 0,
                seed: 0,
                retrain_index: 1,
                feedback_count: 8,
                replay_len: 8,
            }),
            state: sample_surrogate_state(),
        };
        assert!(matches!(
            SurrogateState::from_store_bytes(&ckpt.to_store_bytes()),
            Err(StoreError::UnsupportedVersion { found: 2, .. })
        ));
    }

    #[test]
    fn backwards_lineage_rejected() {
        let ckpt = SurrogateCheckpoint {
            lineage: Some(LineageHeader {
                generation: 3,
                parent_generation: 3,
                seed: 0,
                retrain_index: 1,
                feedback_count: 1,
                replay_len: 1,
            }),
            state: sample_surrogate_state(),
        };
        assert!(matches!(
            SurrogateCheckpoint::from_store_bytes(&ckpt.to_store_bytes()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn surrogate_state_cross_section_mismatch_rejected() {
        use neural::network::MlpBuilder;
        // Heads consuming 25 inputs, scalers producing 3: every section
        // is individually valid (CRCs pass), but the snapshot as a whole
        // would panic at predict time — decode must refuse it.
        let state = SurrogateState {
            pf_net: MlpBuilder::new(25)
                .dense(4)
                .relu()
                .dense(1)
                .build(1)
                .to_state(),
            e_net: MlpBuilder::new(25)
                .dense(4)
                .relu()
                .dense(2)
                .build(2)
                .to_state(),
            scalers: sample_scalers(),
        };
        assert!(matches!(
            SurrogateState::from_store_bytes(&state.to_store_bytes()),
            Err(StoreError::Corrupt { .. })
        ));
        // Wrong head output widths are rejected too (Pf must emit 1).
        let state = SurrogateState {
            pf_net: MlpBuilder::new(3)
                .dense(4)
                .relu()
                .dense(2)
                .build(1)
                .to_state(),
            e_net: MlpBuilder::new(3)
                .dense(4)
                .relu()
                .dense(2)
                .build(2)
                .to_state(),
            scalers: sample_scalers(),
        };
        assert!(matches!(
            SurrogateState::from_store_bytes(&state.to_store_bytes()),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
