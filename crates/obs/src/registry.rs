//! Lock-free sharded metrics: counters, gauges, log₂ histograms behind
//! one [`Registry`].
//!
//! Recording never locks and never allocates: each metric is an array of
//! cache-line-padded shards and a thread records into the shard assigned
//! to it (round-robin at first touch), so concurrent writers on
//! different threads touch different cache lines. Reads merge the shards
//! — a read racing writers sees some prefix of them, which is the usual
//! monotonic-counter contract.
//!
//! Registration (the only allocating, locking path) happens once per
//! metric at startup; handles are `Arc`s the call sites keep, so the hot
//! path is handle-deref + one relaxed `fetch_add`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::ENABLED;

/// Number of per-metric shards (power of two).
const SHARDS: usize = 8;

/// Log₂ buckets per histogram: bucket `b` counts values `v` with
/// `floor(log2(max(v, 1))) == b`, i.e. `[2^b, 2^(b+1))`, with 0 landing
/// in bucket 0 and everything up to `u64::MAX` representable (bucket 63
/// is the saturation bucket only in the sense that it is the last one —
/// no u64 value can overflow past it).
pub const HIST_BUCKETS: usize = 64;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// The calling thread's shard index, assigned round-robin on first use.
#[inline]
fn shard_idx() -> usize {
    MY_SHARD.with(|cell| {
        let mut s = cell.get();
        if s == usize::MAX {
            s = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            cell.set(s);
        }
        s
    })
}

/// One cache line per shard so concurrent writers never false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn zero() -> Self {
        PaddedU64(AtomicU64::new(0))
    }
}

/// A monotonically increasing counter.
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A fresh zero counter (prefer registering via [`Registry::counter`]).
    pub fn new() -> Self {
        Counter {
            shards: [(); SHARDS].map(|_| PaddedU64::zero()),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if ENABLED {
            self.shards[shard_idx()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sum over shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// An instantaneous signed value (queue depths, generations). Gauges are
/// set from cold paths, so a single atomic suffices.
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge (prefer registering via [`Registry::gauge`]).
    pub fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if ENABLED {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if ENABLED {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

struct HistShard {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl HistShard {
    fn zero() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram of `u64` observations (typically
/// nanoseconds). Same bucketing as the serving engine's historical
/// latency histogram: resolution is a factor of 2, enough for p50/p99
/// over microsecond-to-second latencies without any configuration.
pub struct Histogram {
    shards: [HistShard; SHARDS],
}

impl Histogram {
    /// A fresh empty histogram (prefer [`Registry::histogram`]).
    pub fn new() -> Self {
        Histogram {
            shards: [(); SHARDS].map(|_| HistShard::zero()),
        }
    }

    /// The bucket index `value` lands in: `floor(log2(max(value, 1)))`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (63 - (value | 1).leading_zeros()) as usize
    }

    /// Records one observation. Two relaxed RMWs (bucket + sum); the
    /// total count is derived from the buckets at snapshot time so the
    /// hot path doesn't pay a third.
    #[inline]
    pub fn record(&self, value: u64) {
        if ENABLED {
            let shard = &self.shards[shard_idx()];
            shard.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            shard.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Merges all shards into one consistent-enough snapshot (reads race
    /// writers; each shard cell is read once, and the count is the sum
    /// of the merged buckets).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut out = HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        };
        for shard in &self.shards {
            for (b, cell) in shard.buckets.iter().enumerate() {
                out.buckets[b] = out.buckets[b].wrapping_add(cell.load(Ordering::Relaxed));
            }
            out.sum = out.sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        out.count = out.buckets.iter().fold(0u64, |a, &c| a.wrapping_add(c));
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A merged point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// per-bucket observation counts (see [`Histogram::bucket_of`])
    pub buckets: [u64; HIST_BUCKETS],
    /// total observations
    pub count: u64,
    /// sum of observed values (wrapping)
    pub sum: u64,
}

impl HistSnapshot {
    /// Estimates quantile `q` (in `[0, 1]`) as the geometric midpoint
    /// `2^(bucket + 0.5)` of the bucket holding the `q`-th observation —
    /// the same estimator the serving engine has always used for its
    /// p50/p99, so wall-clock semantics are unchanged. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(2f64.powf(b as f64 + 0.5));
            }
        }
        None
    }
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: &'static str,
    slot: Slot,
}

/// A read-only view of one registered metric, for exposition.
pub enum MetricView {
    /// counter value
    Counter(u64),
    /// gauge value
    Gauge(i64),
    /// merged histogram snapshot (boxed: 64 buckets dwarf the scalars)
    Histogram(Box<HistSnapshot>),
}

/// A named collection of metrics. Registration is idempotent by name
/// (re-registering returns the existing handle), locking, and meant for
/// startup; recording through the returned handles is lock-free.
///
/// Metric names follow Prometheus conventions and may carry one inline
/// label set: `qross_solver_samples_total{solver="sa"}` (see
/// [`crate::labeled`]). The renderer groups entries sharing a base name
/// under one `# HELP`/`# TYPE` header.
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers (or looks up) a counter. A name already registered as a
    /// different kind yields a fresh *unregistered* handle rather than a
    /// panic: recording still works, the metric just isn't exported
    /// twice under a conflicting type.
    pub fn counter(&self, name: impl Into<String>, help: &'static str) -> Arc<Counter> {
        let name = name.into();
        let mut entries = lock(&self.entries);
        match entries.get(&name) {
            Some(Entry {
                slot: Slot::Counter(c),
                ..
            }) => c.clone(),
            Some(_) => Arc::new(Counter::new()),
            None => {
                let c = Arc::new(Counter::new());
                entries.insert(
                    name,
                    Entry {
                        help,
                        slot: Slot::Counter(c.clone()),
                    },
                );
                c
            }
        }
    }

    /// Registers (or looks up) a gauge; see [`Registry::counter`] for
    /// the conflict rule.
    pub fn gauge(&self, name: impl Into<String>, help: &'static str) -> Arc<Gauge> {
        let name = name.into();
        let mut entries = lock(&self.entries);
        match entries.get(&name) {
            Some(Entry {
                slot: Slot::Gauge(g),
                ..
            }) => g.clone(),
            Some(_) => Arc::new(Gauge::new()),
            None => {
                let g = Arc::new(Gauge::new());
                entries.insert(
                    name,
                    Entry {
                        help,
                        slot: Slot::Gauge(g.clone()),
                    },
                );
                g
            }
        }
    }

    /// Registers (or looks up) a histogram; see [`Registry::counter`]
    /// for the conflict rule.
    pub fn histogram(&self, name: impl Into<String>, help: &'static str) -> Arc<Histogram> {
        let name = name.into();
        let mut entries = lock(&self.entries);
        match entries.get(&name) {
            Some(Entry {
                slot: Slot::Histogram(h),
                ..
            }) => h.clone(),
            Some(_) => Arc::new(Histogram::new()),
            None => {
                let h = Arc::new(Histogram::new());
                entries.insert(
                    name,
                    Entry {
                        help,
                        slot: Slot::Histogram(h.clone()),
                    },
                );
                h
            }
        }
    }

    /// Snapshots every registered metric, sorted by name (labeled
    /// variants of one base name sort adjacently).
    pub fn collect(&self) -> Vec<(String, &'static str, MetricView)> {
        let entries = lock(&self.entries);
        entries
            .iter()
            .map(|(name, e)| {
                let view = match &e.slot {
                    Slot::Counter(c) => MetricView::Counter(c.get()),
                    Slot::Gauge(g) => MetricView::Gauge(g.get()),
                    Slot::Histogram(h) => MetricView::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), e.help, view)
            })
            .collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "h");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        if ENABLED {
            assert_eq!(c.get(), 4000);
        } else {
            assert_eq!(c.get(), 0);
        }
    }

    #[test]
    fn registration_is_idempotent_by_name() {
        let reg = Registry::new();
        let a = reg.counter("same", "h");
        let b = reg.counter("same", "h");
        a.add(2);
        b.add(3);
        if ENABLED {
            assert_eq!(a.get(), 5);
        }
        assert_eq!(reg.collect().len(), 1);
    }

    #[test]
    fn kind_conflict_yields_detached_handle() {
        let reg = Registry::new();
        let _c = reg.counter("clash", "h");
        let g = reg.gauge("clash", "h");
        g.set(9); // must not panic, must not corrupt the counter entry
        assert_eq!(reg.collect().len(), 1);
        assert!(matches!(reg.collect()[0].2, MetricView::Counter(_)));
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        if ENABLED {
            assert_eq!(g.get(), 7);
        } else {
            assert_eq!(g.get(), 0);
        }
    }

    // ---- histogram edge cases: log₂ bucket boundaries ----

    #[test]
    fn bucket_boundaries_at_exact_powers_of_two() {
        // 2^k lands in bucket k; 2^k - 1 lands in bucket k - 1.
        for k in 1..64u32 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_of(v), k as usize, "2^{k}");
            assert_eq!(Histogram::bucket_of(v - 1), (k - 1) as usize, "2^{k}-1");
        }
        assert_eq!(Histogram::bucket_of(1), 0);
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        assert_eq!(Histogram::bucket_of(0), 0);
        let h = Histogram::new();
        h.record(0);
        let snap = h.snapshot();
        if ENABLED {
            assert_eq!(snap.buckets[0], 1);
            assert_eq!(snap.count, 1);
            assert_eq!(snap.sum, 0);
        } else {
            assert_eq!(snap.count, 0);
        }
    }

    #[test]
    fn u64_max_saturates_into_last_bucket() {
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let snap = h.snapshot();
        if ENABLED {
            assert_eq!(snap.buckets[HIST_BUCKETS - 1], 2);
            // The sum wraps (documented); the count stays exact.
            assert_eq!(snap.count, 2);
        }
    }

    #[test]
    fn concurrent_shard_merge_matches_single_threaded_oracle() {
        if !ENABLED {
            return;
        }
        // The same observation multiset recorded from 8 threads must
        // merge to exactly what a single thread records.
        let values: Vec<u64> = (0..4096u64)
            .map(|i| {
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left((i % 64) as u32)
            })
            .collect();
        let oracle = Histogram::new();
        for &v in &values {
            oracle.record(v);
        }
        let shared = Arc::new(Histogram::new());
        let threads: Vec<_> = values
            .chunks(512)
            .map(|chunk| {
                let h = shared.clone();
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    for v in chunk {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(shared.snapshot(), oracle.snapshot());
    }

    #[test]
    fn quantile_midpoint_and_bounds() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), None);
        for _ in 0..10 {
            h.record(1000); // bucket 9: [512, 1024)
        }
        if ENABLED {
            let p50 = h.snapshot().quantile(0.5).unwrap();
            assert_eq!(p50, 2f64.powf(9.5));
            // All mass in one bucket: p0 == p99.
            assert_eq!(h.snapshot().quantile(0.0), h.snapshot().quantile(0.99));
        }
    }
}
