//! Per-request spans: a trace ID minted at decode plus a fixed array of
//! per-stage durations, carried *by value* through the request plumbing
//! (codec → admission → batch → infer → encode). No allocation, no
//! shared state, `Copy` — a span can ride any channel the request
//! already rides.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{clock, ENABLED};

/// Number of pipeline stages a span records.
pub const STAGES: usize = 6;

/// The serving pipeline stages, in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// wire bytes → validated request (NDJSON parse or QBIN decode)
    Decode = 0,
    /// admission → batch drain (time spent queued)
    Queue = 1,
    /// batch drain → forward start (grouping, staging scratch)
    Batch = 2,
    /// surrogate forward pass
    Forward = 3,
    /// prediction-cache probe + insert
    Cache = 4,
    /// response → wire bytes (serialize or QBIN encode + frame write)
    Encode = 5,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGES] = [
        Stage::Decode,
        Stage::Queue,
        Stage::Batch,
        Stage::Forward,
        Stage::Cache,
        Stage::Encode,
    ];

    /// Stable lowercase name (used as a metric label and in `trace`
    /// dumps).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Queue => "queue",
            Stage::Batch => "batch",
            Stage::Forward => "forward",
            Stage::Cache => "cache",
            Stage::Encode => "encode",
        }
    }
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// One request's trace: an ID plus nanoseconds spent in each [`Stage`].
///
/// Under `obs-off` spans still exist (the plumbing is identical) but the
/// ID is always 0 and recording is a no-op the optimizer removes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Span {
    id: u64,
    stage_ns: [u64; STAGES],
}

impl Span {
    /// Mints a span with a fresh process-unique trace ID.
    #[inline]
    pub fn begin() -> Span {
        Span {
            id: if ENABLED {
                NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
            } else {
                0
            },
            stage_ns: [0; STAGES],
        }
    }

    /// The trace ID (0 under `obs-off` or for a default span).
    #[inline]
    pub fn trace_id(&self) -> u64 {
        self.id
    }

    /// Adds `ns` to the time attributed to `stage` (stages touched more
    /// than once accumulate).
    #[inline]
    pub fn record(&mut self, stage: Stage, ns: u64) {
        if ENABLED {
            self.stage_ns[stage as usize] = self.stage_ns[stage as usize].saturating_add(ns);
        }
    }

    /// Nanoseconds attributed to `stage`.
    #[inline]
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns[stage as usize]
    }

    /// The raw per-stage array, pipeline order.
    #[inline]
    pub fn stages(&self) -> [u64; STAGES] {
        self.stage_ns
    }

    /// Sum of all recorded stage durations.
    #[inline]
    pub fn total_ns(&self) -> u64 {
        self.stage_ns
            .iter()
            .fold(0u64, |acc, &v| acc.saturating_add(v))
    }
}

/// A start-time capture that compiles away under `obs-off`: no clock
/// read is made when observability is disabled, so the uninstrumented
/// build pays literally nothing. When enabled, reads go through
/// [`clock::now_ns`] — the calibrated TSC fast path where available —
/// instead of a `clock_gettime` call per read.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Captures the current time (or nothing, under `obs-off`).
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch {
            start_ns: if ENABLED { clock::now_ns() } else { 0 },
        }
    }

    /// Nanoseconds since start; 0 under `obs-off`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        if ENABLED {
            clock::now_ns().saturating_sub(self.start_ns)
        } else {
            0
        }
    }

    /// Returns the elapsed nanoseconds and restarts the watch — for
    /// chaining consecutive stage measurements off one timeline.
    #[inline]
    pub fn lap(&mut self) -> u64 {
        if ENABLED {
            let now = clock::now_ns();
            let ns = now.saturating_sub(self.start_ns);
            self.start_ns = now;
            ns
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_when_enabled() {
        let a = Span::begin();
        let b = Span::begin();
        if ENABLED {
            assert_ne!(a.trace_id(), b.trace_id());
            assert_ne!(a.trace_id(), 0);
        } else {
            assert_eq!(a.trace_id(), 0);
        }
    }

    #[test]
    fn stages_accumulate_and_total() {
        let mut s = Span::begin();
        s.record(Stage::Decode, 10);
        s.record(Stage::Decode, 5);
        s.record(Stage::Forward, 100);
        if ENABLED {
            assert_eq!(s.stage_ns(Stage::Decode), 15);
            assert_eq!(s.total_ns(), 115);
        } else {
            assert_eq!(s.total_ns(), 0);
        }
    }

    #[test]
    fn total_saturates() {
        let mut s = Span::begin();
        s.record(Stage::Queue, u64::MAX);
        s.record(Stage::Forward, u64::MAX);
        if ENABLED {
            assert_eq!(s.total_ns(), u64::MAX);
        }
    }

    #[test]
    fn stopwatch_monotone() {
        let mut sw = Stopwatch::start();
        let a = sw.lap();
        let b = sw.elapsed_ns();
        if ENABLED {
            // laps restart the timeline; both reads are well-defined
            let _ = (a, b);
        } else {
            assert_eq!(a, 0);
            assert_eq!(b, 0);
        }
    }

    #[test]
    fn stage_names_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["decode", "queue", "batch", "forward", "cache", "encode"]
        );
    }
}
