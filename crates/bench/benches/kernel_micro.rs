//! Micro-benchmarks of the compute kernels behind inference and the
//! annealers: blocked vs reference matmul at serving shapes, the
//! fast-math training tier, and lockstep multi-replica sweeps vs the
//! same work done one replica at a time.
//!
//! Every comparison is gated by a bit-equality assertion in setup — the
//! blocked serve kernel and the batched replica sweep are only
//! interesting as *exact* replacements, so the bench refuses to measure
//! a pair that has drifted apart.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bench::experiments::micro_encoding;
use mathkit::rng::derive_rng;
use mathkit::Matrix;
use problems::RelaxableProblem;
use qubo::{QuboState, ReplicaBatch};
use rand::Rng;

/// Deterministic dense matrix with entries spread across magnitudes.
fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = derive_rng(seed, 0x3A7);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-2.0..2.0);
    }
    m
}

fn bench_matmul(c: &mut Criterion) {
    // Serving shapes: (batch x features) · (features x hidden) for the
    // surrogate's hidden layers, plus the 1-row interactive case.
    for &(m, k, n) in &[(64usize, 25usize, 64usize), (64, 64, 64), (1, 65, 64)] {
        let a = filled(m, k, 11);
        let b = filled(k, n, 13);

        // Gate: the blocked serve kernel must be bit-identical to the
        // historical ikj reference before it is worth timing.
        let blocked = a.matmul(&b);
        let reference = a.matmul_reference(&b);
        for (x, y) in blocked.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "serve kernel drifted from reference"
            );
        }

        let mut group = c.benchmark_group(&format!("matmul_{m}x{k}x{n}"));
        group.bench_function("blocked_serve", |bch| bch.iter(|| a.matmul(&b)));
        group.bench_function("reference_ikj", |bch| bch.iter(|| a.matmul_reference(&b)));
        group.bench_function("fastmath", |bch| bch.iter(|| a.matmul_fastmath(&b)));
        group.finish();
    }
}

fn bench_replica_sweep(c: &mut Criterion) {
    let encoding = micro_encoding(8, 21);
    let qubo = encoding.to_qubo(2.0);
    let n = qubo.num_vars();
    const LANES: usize = 8;

    // Gate: a lockstep batch must apply bit-identical flip deltas to N
    // independent single-replica states fed the same flip sequence.
    {
        let mut batch = ReplicaBatch::new(&qubo, LANES);
        let mut singles: Vec<QuboState> = (0..LANES)
            .map(|_| QuboState::new(&qubo, vec![0; n]))
            .collect();
        for step in 0..4 * n {
            let i = (step * 7 + 3) % n;
            for (r, single) in singles.iter_mut().enumerate() {
                assert_eq!(
                    batch.flip_delta(r, i).to_bits(),
                    single.flip_delta(i).to_bits(),
                    "lockstep sweep drifted from sequential replicas"
                );
                batch.flip(r, i);
                single.flip(i);
            }
        }
        for (r, single) in singles.iter().enumerate() {
            assert_eq!(batch.energy(r).to_bits(), single.energy().to_bits());
        }
    }

    let mut group = c.benchmark_group(&format!("replica_sweep_{n}vars_{LANES}lanes"));
    // The annealers' hot read: scan every candidate flip's delta across
    // all replicas (DA does exactly this once per Monte-Carlo step). The
    // batch stores each variable's deltas as one contiguous lane row, so
    // the variable-major scan is sequential memory; independent states
    // make it a gather across `LANES` separate arrays.
    group.bench_function("candidate_scan_lockstep", |b| {
        let batch = ReplicaBatch::new(&qubo, LANES);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..n {
                for &d in batch.flip_deltas_at(i) {
                    acc += d;
                }
            }
            acc
        })
    });
    group.bench_function("candidate_scan_sequential", |b| {
        let states: Vec<QuboState> = (0..LANES)
            .map(|_| QuboState::new(&qubo, vec![0; n]))
            .collect();
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..n {
                for state in &states {
                    acc += state.flip_delta(i);
                }
            }
            acc
        })
    });
    // One full deterministic sweep (flip every variable once per lane).
    group.bench_function("lockstep_batch", |b| {
        b.iter_batched(
            || ReplicaBatch::new(&qubo, LANES),
            |mut batch| {
                for i in 0..n {
                    for r in 0..LANES {
                        batch.flip(r, i);
                    }
                }
                batch.energy(LANES - 1)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("sequential_states", |b| {
        b.iter_batched(
            || {
                (0..LANES)
                    .map(|_| QuboState::new(&qubo, vec![0; n]))
                    .collect::<Vec<_>>()
            },
            |mut states| {
                for state in &mut states {
                    for i in 0..n {
                        state.flip(i);
                    }
                }
                states[LANES - 1].energy()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_replica_sweep);
criterion_main!(benches);
