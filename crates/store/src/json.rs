//! JSON fallback for every artifact — human-readable and diffable.
//!
//! The binary container is the production format (bit-exact, checksummed,
//! versioned); JSON is the debugging format. Both decode to the same
//! structs. JSON cannot represent NaN or infinities, so the fallback is
//! restricted to finite values — the binary codec has no such limit.
//!
//! These helpers are also the single JSON write path for the experiment
//! harness: `bench`'s figure binaries route their `results/*.json`
//! artefacts through [`write_json_file`] instead of hand-rolling paths
//! and `fs::write` calls.

use std::path::Path;

use crate::StoreError;

/// Serialises `value` as pretty-printed JSON.
///
/// # Errors
///
/// [`StoreError::Json`] when serialisation fails.
pub fn to_json_string<T: serde::Serialize>(value: &T) -> Result<String, StoreError> {
    serde_json::to_string_pretty(value).map_err(|e| StoreError::Json {
        message: e.to_string(),
    })
}

/// Deserialises a value from a JSON string.
///
/// # Errors
///
/// [`StoreError::Json`] for malformed input.
pub fn from_json_str<T: serde::Deserialize>(json: &str) -> Result<T, StoreError> {
    serde_json::from_str(json).map_err(|e| StoreError::Json {
        message: e.to_string(),
    })
}

/// Writes `value` as pretty-printed JSON to `path`, creating parent
/// directories on demand.
///
/// # Errors
///
/// [`StoreError::Io`] / [`StoreError::Json`].
pub fn write_json_file<T: serde::Serialize>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), StoreError> {
    let path = path.as_ref();
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io {
            message: format!("create {}: {e}", dir.display()),
        })?;
    }
    let json = to_json_string(value)?;
    std::fs::write(path, json).map_err(|e| StoreError::Io {
        message: format!("write {}: {e}", path.display()),
    })
}

/// Reads a JSON value from `path`.
///
/// # Errors
///
/// [`StoreError::Io`] / [`StoreError::Json`].
pub fn read_json_file<T: serde::Deserialize>(path: impl AsRef<Path>) -> Result<T, StoreError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| StoreError::Io {
        message: format!("read {}: {e}", path.display()),
    })?;
    from_json_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip() {
        let v = vec![1.5f64, -2.25, 0.0];
        let json = to_json_string(&v).unwrap();
        let back: Vec<f64> = from_json_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_json_is_typed_error() {
        let r: Result<Vec<f64>, _> = from_json_str("{nope");
        assert!(matches!(r, Err(StoreError::Json { .. })));
    }

    #[test]
    fn file_roundtrip_creates_dirs() {
        let dir = std::env::temp_dir().join("qross_store_json_io");
        let path = dir.join("nested/value.json");
        write_json_file(&path, &42u64).unwrap();
        let back: u64 = read_json_file(&path).unwrap();
        assert_eq!(back, 42);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
