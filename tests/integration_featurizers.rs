//! Featurizer ablation (DESIGN.md): both the statistical featurizer and
//! the fixed-random-GCN featurizer must train working surrogates, and
//! their qualitative predictions must agree.

use qross_repro::qross::features::{FeatureExtractor, RandomGcnFeaturizer, StatisticalFeaturizer};
use qross_repro::qross::pipeline::{Pipeline, PipelineConfig, A_DOMAIN};
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};

fn solver() -> SimulatedAnnealer {
    SimulatedAnnealer::new(SaConfig {
        sweeps: 64,
        ..Default::default()
    })
}

fn tiny_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::micro();
    cfg.train_instances = 10;
    cfg.test_instances = 2;
    cfg.surrogate.epochs = 120;
    cfg
}

#[test]
fn both_featurizers_train_sigmoid_surrogates() {
    for featurizer in [
        Box::new(StatisticalFeaturizer::new()) as Box<dyn FeatureExtractor>,
        Box::new(RandomGcnFeaturizer::new(8, 42)) as Box<dyn FeatureExtractor>,
    ] {
        let name = featurizer.name().to_string();
        let trained = Pipeline::new(tiny_config())
            .with_featurizer(featurizer)
            .try_run(&solver())
            .expect("micro pipeline trains");
        let enc = &trained.test_encodings[0];
        let features = trained.featurizer.extract(enc.qubo_instance());
        let low = trained.surrogate.predict(&features, A_DOMAIN.0);
        let high = trained.surrogate.predict(&features, A_DOMAIN.1);
        assert!(
            high.pf > low.pf + 0.3,
            "{name}: no sigmoid trend ({} vs {})",
            low.pf,
            high.pf
        );
    }
}

#[test]
fn featurizers_have_stable_distinct_signatures() {
    let stat = StatisticalFeaturizer::new();
    let gcn = RandomGcnFeaturizer::new(8, 42);
    assert_eq!(stat.name(), "stat");
    assert_eq!(gcn.name(), "gcn");
    assert_ne!(stat.dim(), 0);
    assert_ne!(gcn.dim(), 0);
}
