//! Special functions: error function, Gaussian density/distribution and its
//! inverse, numerically-stable sigmoid utilities.
//!
//! The Minimum Fitness Strategy (paper eq. 2 / appendix F) integrates powers
//! of the Gaussian survival function, so an accurate `erf` matters: we use
//! the rational-polynomial `erfc` approximation from Numerical Recipes
//! (relative error below `1.2e-7` everywhere), which is more than enough for
//! integrands raised to batch-size powers.

/// Error function `erf(x)`.
///
/// Accuracy: absolute error below `1.2e-7` over the whole real line.
///
/// # Examples
///
/// ```
/// use mathkit::special::erf;
/// assert!((erf(0.0)).abs() < 1e-12);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the Chebyshev-fitted rational approximation of Numerical Recipes
/// §6.2.2, which keeps relative accuracy in the deep tail where
/// `1 - erf(x)` would cancel catastrophically.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients for erfc, Numerical Recipes (3rd ed.), §6.2.
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Probability density of `N(mean, std^2)` at `x`.
///
/// # Panics
///
/// Panics in debug builds if `std <= 0`.
pub fn normal_pdf(x: f64, mean: f64, std: f64) -> f64 {
    debug_assert!(std > 0.0, "normal_pdf requires std > 0");
    let z = (x - mean) / std;
    (-0.5 * z * z).exp() / (std * (2.0 * std::f64::consts::PI).sqrt())
}

/// Cumulative distribution function of `N(mean, std^2)` at `x`.
///
/// For `std == 0` this degenerates to a step function at `mean`.
///
/// # Examples
///
/// ```
/// use mathkit::special::normal_cdf;
/// assert!((normal_cdf(1.96, 0.0, 1.0) - 0.975).abs() < 1e-3);
/// ```
pub fn normal_cdf(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 0.0 {
        return if x < mean { 0.0 } else { 1.0 };
    }
    0.5 * erfc(-(x - mean) / (std * std::f64::consts::SQRT_2))
}

/// Survival function `1 - CDF` of `N(mean, std^2)` at `x`, computed without
/// cancellation in the upper tail.
pub fn normal_sf(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 0.0 {
        return if x < mean { 1.0 } else { 0.0 };
    }
    0.5 * erfc((x - mean) / (std * std::f64::consts::SQRT_2))
}

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// Peter Acklam's rational approximation (relative error `< 1.15e-9`),
/// refined with one Halley step using the forward CDF.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
///
/// # Examples
///
/// ```
/// use mathkit::special::normal_quantile;
/// assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
/// assert!(normal_quantile(0.5).abs() < 1e-9);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires 0 < p < 1");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step sharpens the tail behaviour.
    let e = normal_cdf(x, 0.0, 1.0) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Numerically-stable logistic sigmoid `1 / (1 + exp(-x))`.
///
/// # Examples
///
/// ```
/// use mathkit::special::sigmoid;
/// assert_eq!(sigmoid(0.0), 0.5);
/// assert!(sigmoid(40.0) > 0.999999);
/// assert!(sigmoid(-40.0) < 1e-6);
/// ```
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse of the logistic sigmoid; input is clamped to `[eps, 1-eps]`.
///
/// # Examples
///
/// ```
/// use mathkit::special::{logit, sigmoid};
/// let x = 1.7;
/// assert!((logit(sigmoid(x), 1e-12) - x).abs() < 1e-9);
/// ```
pub fn logit(p: f64, eps: f64) -> f64 {
    let q = p.clamp(eps, 1.0 - eps);
    (q / (1.0 - q)).ln()
}

/// Stable `log(1 + exp(x))` (softplus).
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (1.5, 0.9661051465),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_deep_tail_positive() {
        // erfc(5) ~ 1.537e-12; must stay positive and finite.
        let v = erfc(5.0);
        assert!(v > 0.0 && v < 1e-10);
        assert!((erfc(-5.0) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn cdf_sf_complementarity() {
        for &x in &[-3.0, -0.5, 0.0, 1.2, 4.0] {
            let c = normal_cdf(x, 0.5, 2.0);
            let s = normal_sf(x, 0.5, 2.0);
            assert!((c + s - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = 0.0;
        for i in 0..200 {
            let x = -5.0 + i as f64 * 0.05;
            let c = normal_cdf(x, 0.0, 1.0);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn degenerate_std_is_step() {
        assert_eq!(normal_cdf(0.9, 1.0, 0.0), 0.0);
        assert_eq!(normal_cdf(1.1, 1.0, 0.0), 1.0);
        assert_eq!(normal_sf(0.9, 1.0, 0.0), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x, 0.0, 1.0) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "normal_quantile")]
    fn quantile_domain() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Riemann sum over +-8 sigma.
        let mut acc = 0.0;
        let h = 0.001;
        let mut x = -8.0;
        while x < 8.0 {
            acc += normal_pdf(x, 0.0, 1.0) * h;
            x += h;
        }
        assert!((acc - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[-7.0, -1.0, 0.0, 2.0, 9.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softplus_limits() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(-100.0) < 1e-30);
        assert!((softplus(0.0) - 2.0_f64.ln()).abs() < 1e-12);
    }
}
