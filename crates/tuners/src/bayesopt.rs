//! Gaussian-process Bayesian Optimisation with Expected Improvement.
//!
//! The GPyOpt-style baseline of §5.1: a zero-mean GP with an RBF kernel is
//! fitted to the (standardised) observations, and the next candidate
//! maximises the Expected Improvement acquisition over a dense grid. The
//! paper's protocol draws 5 uniform random warm-up samples per instance
//! before the model-guided phase; [`BayesOpt`] does the same.

use rand::rngs::StdRng;
use rand::Rng;

use mathkit::linalg::Cholesky;
use mathkit::rng::seeded_rng;
use mathkit::special::{normal_cdf, normal_pdf};
use mathkit::stats::ZScore;
use mathkit::Matrix;

use crate::{validate_observation, Observation, Tuner};

/// Configuration for [`BayesOpt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesOptConfig {
    /// number of uniform random warm-up trials (paper: 5)
    pub warmup: usize,
    /// RBF length-scale as a fraction of the domain width
    pub lengthscale_fraction: f64,
    /// observation-noise standard deviation (in standardised units)
    pub noise_std: f64,
    /// acquisition-grid resolution
    pub grid_points: usize,
}

impl Default for BayesOptConfig {
    fn default() -> Self {
        BayesOptConfig {
            warmup: 5,
            lengthscale_fraction: 0.1,
            noise_std: 0.05,
            grid_points: 512,
        }
    }
}

/// GP + Expected Improvement tuner.
#[derive(Debug)]
pub struct BayesOpt {
    lo: f64,
    hi: f64,
    config: BayesOptConfig,
    rng: StdRng,
    observations: Vec<Observation>,
}

impl BayesOpt {
    /// Creates a tuner on `[lo, hi]` with default configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, seed: u64) -> Self {
        Self::with_config(lo, hi, seed, BayesOptConfig::default())
    }

    /// Creates a tuner with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid domain or non-positive configuration values.
    pub fn with_config(lo: f64, hi: f64, seed: u64, config: BayesOptConfig) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid domain [{lo}, {hi}]"
        );
        assert!(
            config.lengthscale_fraction > 0.0,
            "lengthscale must be positive"
        );
        assert!(config.grid_points >= 2, "grid needs at least 2 points");
        BayesOpt {
            lo,
            hi,
            config,
            rng: seeded_rng(seed ^ 0xB0),
            observations: Vec::new(),
        }
    }

    fn kernel(&self, a: f64, b: f64) -> f64 {
        let ell = self.config.lengthscale_fraction * (self.hi - self.lo);
        let d = (a - b) / ell;
        (-0.5 * d * d).exp()
    }

    /// Posterior mean/std at `x` given standardised targets, using the
    /// precomputed Cholesky factor and `K⁻¹ y`.
    ///
    /// Degrades to the GP *prior* `(0, √(1 + σₙ²))` when the triangular
    /// solve fails (a factor whose dimension disagrees with the
    /// observation set — this used to be an `expect` panic path): a
    /// prior-only posterior keeps the acquisition well-defined and the
    /// tuner serving proposals.
    fn posterior(&self, x: f64, xs: &[f64], alpha: &[f64], chol: &Cholesky) -> (f64, f64) {
        let prior_std = (1.0 + self.config.noise_std.powi(2)).sqrt();
        let kvec: Vec<f64> = xs.iter().map(|&xi| self.kernel(x, xi)).collect();
        let Ok(v) = chol.solve_lower(&kvec) else {
            return (0.0, prior_std);
        };
        let mean: f64 = kvec.iter().zip(alpha.iter()).map(|(k, a)| k * a).sum();
        // var = k(x,x) − kᵀ K⁻¹ k, via the triangular solve L v = k.
        let explained: f64 = v.iter().map(|vi| vi * vi).sum();
        let var = (1.0 + self.config.noise_std.powi(2) - explained).max(1e-12);
        (mean, var.sqrt())
    }
}

impl Tuner for BayesOpt {
    fn name(&self) -> &str {
        "bo"
    }

    fn ask(&mut self) -> f64 {
        let n = self.observations.len();
        if n < self.config.warmup {
            return self.rng.gen_range(self.lo..=self.hi);
        }
        // Standardise targets for a zero-mean unit-scale GP.
        let ys: Vec<f64> = self.observations.iter().map(|o| o.y).collect();
        let z = ZScore::fit(&ys);
        let xs: Vec<f64> = self.observations.iter().map(|o| o.x).collect();
        let targets: Vec<f64> = ys.iter().map(|&y| z.transform(y)).collect();

        // Gram matrix with noise on the diagonal.
        let mut gram = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                gram[(i, j)] = self.kernel(xs[i], xs[j]);
            }
            gram[(i, i)] += self.config.noise_std.powi(2) + 1e-9;
        }
        let chol = match Cholesky::factor_with_jitter(&gram, 1e-8, 10) {
            Ok(c) => c,
            // Pathological duplicates: fall back to random exploration.
            Err(_) => return self.rng.gen_range(self.lo..=self.hi),
        };
        // A solve failure (degenerate/ill-conditioned Gram the jitter
        // could not rescue) falls back to random exploration too — the
        // GP is unusable this round, not the tuner.
        let Ok(alpha) = chol.solve(&targets) else {
            return self.rng.gen_range(self.lo..=self.hi);
        };

        let y_best = targets.iter().cloned().fold(f64::INFINITY, f64::min);

        // Maximise EI on a dense grid (1-D domain: grid is exhaustive).
        let mut best_x = self.lo;
        let mut best_ei = f64::NEG_INFINITY;
        let g = self.config.grid_points;
        for k in 0..g {
            let x = self.lo + (self.hi - self.lo) * k as f64 / (g - 1) as f64;
            let (mu, sigma) = self.posterior(x, &xs, &alpha, &chol);
            let ei = if sigma <= 1e-12 {
                0.0
            } else {
                let zscore = (y_best - mu) / sigma;
                (y_best - mu) * normal_cdf(zscore, 0.0, 1.0) + sigma * normal_pdf(zscore, 0.0, 1.0)
            };
            if ei > best_ei {
                best_ei = ei;
                best_x = x;
            }
        }
        // Degenerate acquisition (all zero): explore randomly.
        if best_ei <= 1e-15 {
            return self.rng.gen_range(self.lo..=self.hi);
        }
        best_x
    }

    fn tell(&mut self, x: f64, y: f64) {
        validate_observation(self.lo, self.hi, x, y);
        self.observations.push(Observation { x, y });
    }

    fn observations(&self) -> &[Observation] {
        &self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_is_random_then_model_guided() {
        let mut t = BayesOpt::new(0.0, 100.0, 7);
        for i in 0..5 {
            let x = t.ask();
            t.tell(x, (x - 30.0).powi(2) / 100.0);
            assert_eq!(t.observations().len(), i + 1);
        }
        // After warm-up the proposal should head for the basin near 30.
        let mut proposals = Vec::new();
        for _ in 0..10 {
            let x = t.ask();
            t.tell(x, (x - 30.0).powi(2) / 100.0);
            proposals.push(x);
        }
        let best = t.best().unwrap();
        assert!(
            (best.0 - 30.0).abs() < 10.0,
            "BO best {best:?} far from optimum"
        );
    }

    #[test]
    fn converges_on_smooth_quadratic() {
        let mut t = BayesOpt::new(0.0, 10.0, 3);
        for _ in 0..20 {
            let x = t.ask();
            t.tell(x, (x - 7.0).powi(2));
        }
        let (bx, _) = t.best().unwrap();
        assert!((bx - 7.0).abs() < 1.0, "best at {bx}");
    }

    #[test]
    fn posterior_interpolates_observations() {
        let mut t = BayesOpt::new(0.0, 10.0, 1);
        // Feed exact observations; posterior mean near data should match.
        let data = [(1.0, 0.5), (5.0, -0.5), (9.0, 0.8)];
        for &(x, y) in &data {
            t.tell(x, y);
        }
        let xs: Vec<f64> = data.iter().map(|d| d.0).collect();
        let ys: Vec<f64> = data.iter().map(|d| d.1).collect();
        let z = ZScore::fit(&ys);
        let targets: Vec<f64> = ys.iter().map(|&y| z.transform(y)).collect();
        let n = 3;
        let mut gram = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                gram[(i, j)] = t.kernel(xs[i], xs[j]);
            }
            gram[(i, i)] += t.config.noise_std.powi(2) + 1e-9;
        }
        let chol = Cholesky::factor(&gram).unwrap();
        let alpha = chol.solve(&targets).unwrap();
        for (i, &(x, y)) in data.iter().enumerate() {
            let (mu, sigma) = t.posterior(x, &xs, &alpha, &chol);
            let mu_orig = z.inverse(mu);
            assert!(
                (mu_orig - y).abs() < 0.2,
                "obs {i}: posterior {mu_orig} vs {y}"
            );
            assert!(sigma < 0.5, "posterior not confident at datum: {sigma}");
        }
        // Far from data the predictive std must be larger.
        let (_, sigma_far) = t.posterior(3.0, &xs, &alpha, &chol);
        let (_, sigma_near) = t.posterior(5.0, &xs, &alpha, &chol);
        assert!(sigma_far > sigma_near);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut t = BayesOpt::new(0.0, 10.0, seed);
            let mut xs = Vec::new();
            for _ in 0..12 {
                let x = t.ask();
                t.tell(x, (x - 2.0).abs());
                xs.push(x);
            }
            xs
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn identical_observations_fall_back_gracefully() {
        let mut t = BayesOpt::new(0.0, 10.0, 2);
        for _ in 0..8 {
            t.tell(5.0, 1.0);
        }
        // Gram matrix is rank-1; ask must still return a valid point.
        let x = t.ask();
        assert!((0.0..=10.0).contains(&x));
    }

    #[test]
    fn degenerate_gram_with_zero_noise_is_handled() {
        // noise_std = 0 removes the diagonal regularisation that normally
        // rescues a rank-deficient Gram built from duplicated
        // observations — the worst-conditioned matrix the GP path can
        // see. Every ask must still produce an in-domain proposal through
        // the fallible solve/fallback paths, never a panic.
        let mut t = BayesOpt::with_config(
            0.0,
            10.0,
            9,
            BayesOptConfig {
                warmup: 2,
                noise_std: 0.0,
                ..Default::default()
            },
        );
        for _ in 0..12 {
            t.tell(5.0, 1.0);
            t.tell(5.0 + 1e-13, 1.0); // near-duplicate: ill-conditioned
            let x = t.ask();
            assert!((0.0..=10.0).contains(&x), "proposal {x} out of domain");
        }
    }

    #[test]
    fn posterior_with_mismatched_factor_degrades_to_prior() {
        // Regression for the former `expect("dimensions match")` panic:
        // a Cholesky factor whose dimension disagrees with the
        // observation set now yields the GP prior instead of aborting.
        let t = BayesOpt::new(0.0, 10.0, 1);
        let xs = [1.0, 5.0, 9.0];
        let alpha = [0.1, -0.2, 0.3];
        let small = Matrix::from_rows(&[&[1.1, 0.2], &[0.2, 1.1]]);
        let chol = Cholesky::factor(&small).unwrap();
        let (mu, sigma) = t.posterior(4.0, &xs, &alpha, &chol);
        assert_eq!(mu, 0.0);
        let prior_std = (1.0 + t.config.noise_std.powi(2)).sqrt();
        assert_eq!(sigma, prior_std);
    }
}
