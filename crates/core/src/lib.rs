//! # qross — QUBO Relaxation parameter Optimisation via Solver Surrogates
//!
//! The paper's primary contribution (Huang et al., ICDCS 2021): learn a
//! *solver surrogate* — a neural network predicting, for a problem instance
//! `g` and relaxation parameter `A`, the probability of feasibility
//! `Pf(g, A)` and the batch energy statistics `Eavg(g, A)`, `Estd(g, A)` of
//! a stochastic QUBO solver — then use the surrogate to propose promising
//! `A` values *without* calling the expensive solver.
//!
//! Pipeline (paper Fig. 2):
//!
//! 1. **Featurise** instances into fixed-size vectors ([`features`] — the
//!    stand-in for the pre-trained GCN of appendix C/G);
//! 2. **Collect** solver batches over an `A` schedule covering the sigmoid
//!    slope and both plateaus ([`collect`], §3.3);
//! 3. **Train** the two-headed surrogate: BCE on `Pf`, Huber on the energy
//!    statistics ([`surrogate`], §3.2);
//! 4. **Propose** parameters with the offline strategies — Minimum Fitness
//!    Strategy ([`strategy::mfs`], eq. 2) and Pf-based Strategy
//!    ([`strategy::pbs`], eq. 3) — then refine online with the Online
//!    Fitting Strategy ([`strategy::ofs`], Algorithm 1);
//! 5. **Evaluate** against the baseline tuners with the optimality-gap
//!    harness ([`eval`], Figs. 3–5 and Table 1).
//!
//! [`pipeline`] wires steps 1–3 into a single reproducible call.
//!
//! # Examples
//!
//! End-to-end at toy scale (a few seconds):
//!
//! ```no_run
//! use qross::pipeline::{Pipeline, PipelineConfig};
//! use solvers::SimulatedAnnealer;
//!
//! let config = PipelineConfig::quick();
//! let solver = SimulatedAnnealer::default();
//! let trained = Pipeline::new(config).try_run(&solver)?;
//! println!("surrogate trained on {} samples", trained.dataset_len);
//! # Ok::<(), qross::QrossError>(())
//! ```

pub mod collect;
pub mod dataset;
pub mod eval;
pub mod features;
pub mod landscape;
pub mod online;
pub mod pipeline;
pub mod serve;
pub mod store;
pub mod strategy;
pub mod surrogate;

pub use features::{FeatureExtractor, FeaturizerSpec, RandomGcnFeaturizer, StatisticalFeaturizer};
pub use online::{FeedbackRecord, LineageHeader, OnlineConfig, ReplayBuffer, SurrogateCheckpoint};
pub use pipeline::{CollectedCorpus, QrossBundle};
pub use serve::{ServeConfig, ServeEngine, ServeModel, ServeObs, ServeStats, VersionedModel};
pub use surrogate::{PredictScratch, Surrogate, SurrogatePrediction};

/// Errors from the QROSS pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum QrossError {
    /// The dataset is empty or degenerate (e.g. a single A value).
    BadDataset {
        /// explanation
        message: String,
    },
    /// Surrogate training diverged (non-finite loss).
    TrainingDiverged,
    /// Model persistence failed.
    Persistence {
        /// explanation
        message: String,
    },
    /// A strategy could not produce a candidate (e.g. surrogate predicts
    /// Pf = 0 everywhere in the domain).
    NoCandidate {
        /// explanation
        message: String,
    },
    /// A solver returned an empty sample set for a positive batch request
    /// — its statistics (`Pf`, `Eavg`, `Estd`, `min_energy`) are
    /// undefined, so the observation must be rejected rather than recorded
    /// as NaN.
    EmptyBatch {
        /// the relaxation parameter that was being evaluated
        a: f64,
    },
    /// A serving request was malformed (wrong feature width, non-finite
    /// values, non-positive relaxation parameter, unparseable payload…).
    /// Client error: the request is rejected, the engine keeps serving.
    BadRequest {
        /// explanation
        message: String,
    },
    /// The serving queue is at capacity. Backpressure error: the request
    /// is rejected immediately instead of growing the queue without bound
    /// — the caller should retry later or shed load upstream.
    Overloaded {
        /// the configured queue capacity (in pending prediction rows)
        capacity: usize,
    },
    /// An internal serving-engine fault (e.g. a worker thread died while
    /// holding a request). Should not happen in normal operation.
    Serve {
        /// explanation
        message: String,
    },
}

impl std::fmt::Display for QrossError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QrossError::BadDataset { message } => write!(f, "bad dataset: {message}"),
            QrossError::TrainingDiverged => write!(f, "surrogate training diverged"),
            QrossError::Persistence { message } => write!(f, "persistence: {message}"),
            QrossError::NoCandidate { message } => write!(f, "no candidate: {message}"),
            QrossError::EmptyBatch { a } => {
                write!(f, "solver returned an empty sample set at A = {a}")
            }
            QrossError::BadRequest { message } => write!(f, "bad request: {message}"),
            QrossError::Overloaded { capacity } => {
                write!(f, "serving queue full ({capacity} rows): request rejected")
            }
            QrossError::Serve { message } => write!(f, "serving engine: {message}"),
        }
    }
}

impl std::error::Error for QrossError {}
