//! # qross-repro — workspace umbrella
//!
//! Re-exports the workspace crates so the `examples/` and `tests/`
//! directories can exercise the whole QROSS reproduction through one
//! dependency. See the individual crates for documentation:
//!
//! * [`qross`] — the paper's contribution (surrogate + strategies);
//! * [`qubo`] — QUBO models and penalty relaxation;
//! * [`solvers`] — SA / Digital Annealer / tabu / qbsolv / noise models;
//! * [`problems`] — TSP, MVC, QAP with generators and parsers;
//! * [`neural`] — the from-scratch NN substrate;
//! * [`tuners`] — Random / Bayesian-optimisation / TPE baselines;
//! * [`mathkit`] — numerical routines.

pub use mathkit;
pub use neural;
pub use problems;
pub use qross;
pub use qubo;
pub use solvers;
pub use tuners;
