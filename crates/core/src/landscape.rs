//! Predicted objective landscapes.
//!
//! One of QROSS's headline features (§1): "Given a new problem of the same
//! class, QROSS is able to predict the landscape of the objective function
//! and help users understand the expectations **without resorting to the
//! expensive QUBO solving step**." This module materialises that: a dense
//! `A`-sweep of surrogate predictions plus the derived expected-minimum-
//! fitness curve, with an ASCII rendering for terminal inspection.

use serde::{Deserialize, Serialize};

use crate::strategy::mfs::expected_min_fitness;
use crate::surrogate::Surrogate;

/// A predicted landscape over the relaxation parameter.
///
/// # Examples
///
/// ```no_run
/// use qross::landscape::PredictedLandscape;
/// # fn demo(surrogate: &qross::Surrogate, features: &[f64]) {
/// let ls = PredictedLandscape::compute(surrogate, features, (0.05, 20.0), 64, 128);
/// println!("{}", ls.render_ascii(60, 12));
/// if let Some((a, _)) = ls.predicted_optimum() {
///     println!("predicted optimal A = {a}");
/// }
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictedLandscape {
    /// swept relaxation parameters (log-spaced)
    pub a: Vec<f64>,
    /// predicted probability of feasibility per point
    pub pf: Vec<f64>,
    /// predicted batch mean energy per point
    pub e_avg: Vec<f64>,
    /// predicted batch energy standard deviation per point
    pub e_std: Vec<f64>,
    /// derived expected minimum fitness per point; `None` where fewer
    /// than one feasible solution is expected (JSON-safe stand-in for the
    /// paper's `+inf`)
    pub expected_min: Vec<Option<f64>>,
    /// batch size used for the expected-minimum derivation
    pub batch: usize,
}

impl PredictedLandscape {
    /// Sweeps the surrogate over `points` log-spaced values of `A` in
    /// `domain` and derives the expected-minimum curve for batch size
    /// `batch`.
    ///
    /// # Panics
    ///
    /// Panics for an invalid domain, fewer than 2 points or zero batch.
    pub fn compute(
        surrogate: &Surrogate,
        features: &[f64],
        domain: (f64, f64),
        points: usize,
        batch: usize,
    ) -> Self {
        assert!(
            domain.0 > 0.0 && domain.0 < domain.1,
            "invalid A domain [{}, {}]",
            domain.0,
            domain.1
        );
        assert!(points >= 2, "need at least two sweep points");
        assert!(batch > 0, "batch must be positive");
        let (lo, hi) = (domain.0.ln(), domain.1.ln());
        let a: Vec<f64> = (0..points)
            .map(|k| (lo + (hi - lo) * k as f64 / (points - 1) as f64).exp())
            .collect();
        let preds = surrogate.predict_sweep(features, &a);
        let pf: Vec<f64> = preds.iter().map(|p| p.pf).collect();
        let e_avg: Vec<f64> = preds.iter().map(|p| p.e_avg).collect();
        let e_std: Vec<f64> = preds.iter().map(|p| p.e_std).collect();
        let expected_min: Vec<Option<f64>> = preds
            .iter()
            .map(|p| {
                let v = expected_min_fitness(p.pf, p.e_avg, p.e_std, batch);
                v.is_finite().then_some(v)
            })
            .collect();
        PredictedLandscape {
            a,
            pf,
            e_avg,
            e_std,
            expected_min,
            batch,
        }
    }

    /// The sweep point minimising the expected minimum fitness, or `None`
    /// when the whole landscape is predicted infeasible.
    pub fn predicted_optimum(&self) -> Option<(f64, f64)> {
        self.a
            .iter()
            .zip(self.expected_min.iter())
            .filter_map(|(&a, &v)| v.map(|v| (a, v)))
            .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The predicted slope interval `{A | lo_pf < Pf < hi_pf}`, or `None`
    /// when the sweep never enters it.
    pub fn slope_interval(&self, lo_pf: f64, hi_pf: f64) -> Option<(f64, f64)> {
        let on: Vec<f64> = self
            .a
            .iter()
            .zip(self.pf.iter())
            .filter(|(_, &p)| p > lo_pf && p < hi_pf)
            .map(|(&a, _)| a)
            .collect();
        match (on.first(), on.last()) {
            (Some(&lo), Some(&hi)) => Some((lo, hi)),
            _ => None,
        }
    }

    /// Renders a two-panel ASCII chart (Pf on top, expected minimum below)
    /// of the given character dimensions — the terminal counterpart of the
    /// paper's Fig. 1.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        let width = width.clamp(16, 200);
        let height = height.clamp(4, 60);
        let mut out = String::new();
        out.push_str(&format!(
            "Pf(A), predicted              A ∈ [{:.3}, {:.3}] (log axis)\n",
            self.a.first().copied().unwrap_or(0.0),
            self.a.last().copied().unwrap_or(0.0)
        ));
        out.push_str(&render_series(&self.pf, width, height, 0.0, 1.0));
        let finite: Vec<f64> = self.expected_min.iter().copied().flatten().collect();
        if finite.is_empty() {
            out.push_str("expected minimum fitness: infeasible everywhere\n");
            return out;
        }
        let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        out.push_str(&format!(
            "E[min fitness](A), predicted   range [{lo:.3}, {hi:.3}] ('·' = infeasible)\n"
        ));
        let emin_values: Vec<f64> = self
            .expected_min
            .iter()
            .map(|v| v.unwrap_or(f64::INFINITY))
            .collect();
        out.push_str(&render_series(
            &emin_values,
            width,
            height,
            lo,
            hi.max(lo + 1e-9),
        ));
        out
    }
}

/// Renders one series as an ASCII strip chart; non-finite values print as
/// a dotted bottom row.
#[allow(clippy::needless_range_loop)] // col drives both the grid and the resampling index
fn render_series(values: &[f64], width: usize, height: usize, lo: f64, hi: f64) -> String {
    let mut grid = vec![vec![' '; width]; height];
    let n = values.len();
    for col in 0..width {
        let idx = col * (n - 1) / (width - 1).max(1);
        let v = values[idx];
        if !v.is_finite() {
            grid[height - 1][col] = '·';
            continue;
        }
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        let row = ((1.0 - t) * (height - 1) as f64).round() as usize;
        grid[row][col] = '*';
    }
    let mut s = String::with_capacity((width + 4) * height);
    for row in grid {
        s.push_str("  |");
        s.extend(row);
        s.push('\n');
    }
    s.push_str("  +");
    s.push_str(&"-".repeat(width));
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetRow, SurrogateDataset};
    use crate::surrogate::SurrogateConfig;
    use mathkit::special::sigmoid;

    fn trained() -> Surrogate {
        let mut ds = SurrogateDataset::new(1);
        for g in 0..6 {
            let f = g as f64 * 0.1;
            for k in 0..15 {
                let ln_a = -3.0 + 6.0 * k as f64 / 14.0;
                ds.push(DatasetRow {
                    features: vec![f],
                    a: ln_a.exp(),
                    pf: sigmoid(3.0 * ln_a),
                    e_avg: 10.0 + 2.0 * ln_a,
                    e_std: 1.0,
                });
            }
        }
        let cfg = SurrogateConfig {
            hidden: 16,
            epochs: 150,
            val_fraction: 0.0,
            ..Default::default()
        };
        Surrogate::train(&ds, &cfg).unwrap().0
    }

    #[test]
    fn compute_shapes_and_monotone_pf_trend() {
        let sur = trained();
        let ls = PredictedLandscape::compute(&sur, &[0.3], (0.05, 20.0), 48, 32);
        assert_eq!(ls.a.len(), 48);
        assert_eq!(ls.pf.len(), 48);
        assert_eq!(ls.expected_min.len(), 48);
        assert!(ls.pf.first().unwrap() < ls.pf.last().unwrap());
        // log-spaced grid
        let r1 = ls.a[1] / ls.a[0];
        let r2 = ls.a[47] / ls.a[46];
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn optimum_lies_on_the_slope() {
        let sur = trained();
        let ls = PredictedLandscape::compute(&sur, &[0.3], (0.05, 20.0), 64, 32);
        let (a_opt, v) = ls.predicted_optimum().expect("finite somewhere");
        assert!(v.is_finite());
        assert!(ls.expected_min.iter().any(|v| v.is_some()));
        let (lo, hi) = ls.slope_interval(0.01, 0.999).expect("slope exists");
        assert!(
            a_opt >= lo * 0.5 && a_opt <= hi * 2.0,
            "optimum {a_opt} far from slope [{lo}, {hi}]"
        );
    }

    #[test]
    fn ascii_rendering_is_wellformed() {
        let sur = trained();
        let ls = PredictedLandscape::compute(&sur, &[0.3], (0.05, 20.0), 32, 32);
        let chart = ls.render_ascii(40, 8);
        assert!(chart.contains('*'));
        let lines: Vec<&str> = chart.lines().collect();
        // Two panels with borders and headers.
        assert!(lines.len() > 16);
        assert!(lines.iter().any(|l| l.starts_with("Pf(A)")));
        assert!(lines.iter().any(|l| l.starts_with("E[min")));
    }

    #[test]
    fn infeasible_everywhere_renders_gracefully() {
        // Build a landscape by hand with all-infinite expected minima.
        let ls = PredictedLandscape {
            a: vec![0.1, 1.0, 10.0],
            pf: vec![0.0, 0.0, 0.0],
            e_avg: vec![1.0; 3],
            e_std: vec![0.1; 3],
            expected_min: vec![None; 3],
            batch: 16,
        };
        assert!(ls.predicted_optimum().is_none());
        let chart = ls.render_ascii(30, 6);
        assert!(chart.contains("infeasible everywhere"));
    }

    #[test]
    fn serde_roundtrip() {
        let sur = trained();
        let ls = PredictedLandscape::compute(&sur, &[0.1], (0.1, 10.0), 16, 8);
        let json = serde_json::to_string(&ls).unwrap();
        let back: PredictedLandscape = serde_json::from_str(&json).unwrap();
        // This serde_json build loses the last ULP on some floats, so
        // compare with a tight tolerance rather than bitwise.
        assert_eq!(ls.a.len(), back.a.len());
        assert_eq!(ls.batch, back.batch);
        for (x, y) in ls.a.iter().zip(back.a.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in ls.expected_min.iter().zip(back.expected_min.iter()) {
            match (x, y) {
                (None, None) => {}
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                other => panic!("mismatched feasibility: {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid A domain")]
    fn rejects_bad_domain() {
        let sur = trained();
        let _ = PredictedLandscape::compute(&sur, &[0.1], (5.0, 1.0), 16, 8);
    }
}
