//! `qross-serve` — the serving daemon of the train-once / serve-many
//! loop: load a model once, answer NDJSON prediction requests forever.
//!
//! Two transports, one protocol (`bench::protocol`):
//!
//! * **stdio** (default): requests on stdin, responses on stdout, exit at
//!   EOF. Composable — `qross-serve --model m.qross < requests.ndjson`.
//! * **TCP** (`--listen ADDR`): accept connections, one NDJSON session
//!   per connection, each on its own thread over the *same* shared
//!   engine — concurrent clients' requests micro-batch together.
//!
//! The model may be a full `.qross` bundle (TSP: enables the `tsp`
//! upload op) or a bare surrogate snapshot (MVC/QAP: `predict` only),
//! binary or JSON, sniffed by magic bytes.
//!
//! All diagnostics go to stderr; stdout carries protocol lines only.

use std::sync::Arc;

use bench::protocol::{serve_connection, serve_connection_aborting};
use bench::serve::usage_exit;
use qross::dataset::SurrogateDataset;
use qross::online::{OnlineConfig, SurrogateCheckpoint};
use qross::pipeline::{CollectedCorpus, TrainedQross};
use qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross::surrogate::{Surrogate, SurrogateState};
use qross_store::Artifact;

const USAGE: &str = "qross-serve --model PATH [--listen ADDR] [--workers N] \
                     [--batch ROWS] [--queue ROWS] [--cache ENTRIES] \
                     [--online] [--refresh-after N] [--checkpoint-dir DIR] \
                     [--corpus PATH] [--online-seed N] [--online-epochs N]";

struct ServeCli {
    model: String,
    listen: Option<String>,
    config: ServeConfig,
    online: bool,
    online_config: OnlineConfig,
    corpus: Option<String>,
}

fn parse_cli() -> ServeCli {
    let mut cli = ServeCli {
        model: String::new(),
        listen: None,
        config: ServeConfig::default(),
        online: false,
        online_config: OnlineConfig::default(),
        corpus: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        if flag == "--help" || flag == "-h" {
            usage_exit(USAGE, "");
        }
        if flag == "--online" {
            cli.online = true;
            i += 1;
            continue;
        }
        if !matches!(
            flag.as_str(),
            "--model"
                | "--listen"
                | "--workers"
                | "--batch"
                | "--queue"
                | "--cache"
                | "--refresh-after"
                | "--checkpoint-dir"
                | "--corpus"
                | "--online-seed"
                | "--online-epochs"
        ) {
            usage_exit(USAGE, &format!("unknown argument `{flag}`"));
        }
        i += 1;
        let Some(value) = argv
            .get(i)
            .filter(|v| !v.is_empty() && !v.starts_with("--"))
        else {
            usage_exit(USAGE, &format!("flag `{flag}` needs a value"));
        };
        let parse_count = |what: &str, v: &str| -> usize {
            v.parse::<usize>()
                .unwrap_or_else(|_| usage_exit(USAGE, &format!("bad {what} value `{v}`")))
        };
        match flag.as_str() {
            "--model" => cli.model = value.clone(),
            "--listen" => cli.listen = Some(value.clone()),
            "--workers" => cli.config.workers = parse_count("--workers", value),
            "--batch" => {
                cli.config.max_batch_rows = parse_count("--batch", value).max(1);
            }
            "--queue" => cli.config.queue_capacity = parse_count("--queue", value).max(1),
            "--cache" => cli.config.cache_capacity = parse_count("--cache", value),
            "--refresh-after" => {
                cli.online_config.refresh_after = parse_count("--refresh-after", value);
            }
            "--checkpoint-dir" => {
                cli.online_config.checkpoint_dir = Some(std::path::PathBuf::from(value));
            }
            "--corpus" => cli.corpus = Some(value.clone()),
            "--online-seed" => {
                cli.online_config.seed = value.parse::<u64>().unwrap_or_else(|_| {
                    usage_exit(USAGE, &format!("bad --online-seed value `{value}`"))
                });
            }
            "--online-epochs" => {
                cli.online_config.epochs = parse_count("--online-epochs", value);
            }
            _ => unreachable!("flag already screened"),
        }
        i += 1;
    }
    if cli.model.is_empty() {
        usage_exit(USAGE, "--model is required");
    }
    cli
}

/// Loads a bundle if the artifact is one, otherwise a bare surrogate
/// snapshot (v1) or an online checkpoint (`SURR` v2 with lineage) —
/// a serving process can resume from its own checkpoints.
fn load_model(path: &str) -> Result<ServeModel, String> {
    let bundle_err = match TrainedQross::load(path) {
        Ok(trained) => return Ok(ServeModel::Bundle(Arc::new(trained))),
        Err(e) => e,
    };
    let state_err = match SurrogateState::load_auto(path) {
        Ok(state) => return surrogate_model(state),
        Err(e) => e,
    };
    match SurrogateCheckpoint::load_auto(path) {
        Ok(checkpoint) => {
            if let Some(l) = &checkpoint.lineage {
                eprintln!(
                    "qross-serve: checkpoint lineage: generation {} (parent {}, \
                     retrain {}, {} feedback records)",
                    l.generation, l.parent_generation, l.retrain_index, l.feedback_count
                );
            }
            surrogate_model(checkpoint.state)
        }
        // Every attempt failed: report each decoder's own diagnosis —
        // a corrupt checkpoint must surface its precise error, not the
        // unrelated kind-mismatch from the bundle attempt.
        Err(checkpoint_err) => Err(format!(
            "loading model failed — as bundle: {bundle_err}; as surrogate snapshot: \
             {state_err}; as checkpoint: {checkpoint_err}"
        )),
    }
}

fn surrogate_model(state: qross::surrogate::SurrogateState) -> Result<ServeModel, String> {
    Surrogate::from_state(state)
        .map(|surrogate| ServeModel::Surrogate(Arc::new(surrogate)))
        .map_err(|e| format!("restoring surrogate failed: {e}"))
}

/// Loads the original training corpus merged under every online
/// fine-tune: a bare `DSET` dataset or a full `CORP` collect-stage
/// corpus (its dataset is used).
fn load_corpus(path: &str) -> Result<SurrogateDataset, String> {
    if let Ok(ds) = SurrogateDataset::load_auto(path) {
        return Ok(ds);
    }
    CollectedCorpus::load_auto(path)
        .map(|corpus| corpus.dataset)
        .map_err(|e| format!("loading corpus failed: {e}"))
}

fn main() {
    let cli = parse_cli();
    let model = load_model(&cli.model).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let kind = if model.trained().is_some() {
        "bundle"
    } else {
        "surrogate"
    };
    let feature_dim = model.feature_dim();
    let base = cli.corpus.as_deref().map(|path| {
        load_corpus(path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    });
    let engine = if cli.online {
        ServeEngine::with_online(model, cli.config, cli.online_config.clone(), base).unwrap_or_else(
            |e| {
                eprintln!("error: starting online engine failed: {e}");
                std::process::exit(1);
            },
        )
    } else {
        if base.is_some() {
            eprintln!("warning: --corpus is only used with --online; ignoring it");
        }
        ServeEngine::new(model, cli.config)
    };
    eprintln!(
        "qross-serve: loaded {kind} from {} ({feature_dim} features); {engine:?}{}",
        cli.model,
        if cli.online {
            format!(
                "; online (refresh-after {}, checkpoints {})",
                cli.online_config.refresh_after,
                cli.online_config
                    .checkpoint_dir
                    .as_ref()
                    .map(|d| d.display().to_string())
                    .unwrap_or_else(|| "disabled".to_string())
            )
        } else {
            String::new()
        }
    );

    match cli.listen {
        None => {
            // StdinLock is !Send and the staging thread owns the reader,
            // so buffer the Send-able handle instead of locking.
            let stdin = std::io::BufReader::new(std::io::stdin());
            let stdout = std::io::stdout();
            if let Err(e) = serve_connection(&engine, stdin, stdout.lock()) {
                eprintln!("error: stdio session failed: {e}");
                std::process::exit(1);
            }
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
                eprintln!("error: cannot listen on {addr}: {e}");
                std::process::exit(1);
            });
            eprintln!("qross-serve: listening on {addr}");
            std::thread::scope(|scope| {
                for stream in listener.incoming() {
                    let stream = match stream {
                        Ok(stream) => stream,
                        Err(e) => {
                            eprintln!("warning: accept failed: {e}");
                            continue;
                        }
                    };
                    let peer = stream
                        .peer_addr()
                        .map(|p| p.to_string())
                        .unwrap_or_else(|_| "<unknown>".to_string());
                    let engine = &engine;
                    scope.spawn(move || {
                        eprintln!("qross-serve: {peer} connected");
                        let reader = match stream.try_clone() {
                            Ok(clone) => std::io::BufReader::new(clone),
                            Err(e) => {
                                eprintln!("warning: {peer}: clone failed: {e}");
                                return;
                            }
                        };
                        // If the client stops reading responses, the write
                        // side errors first — shut the socket down so the
                        // blocked reader exits too instead of leaking this
                        // thread until the client's next line.
                        let abort = {
                            let stream = stream.try_clone();
                            move || {
                                if let Ok(s) = &stream {
                                    let _ = s.shutdown(std::net::Shutdown::Both);
                                }
                            }
                        };
                        let writer = std::io::BufWriter::new(stream);
                        match serve_connection_aborting(engine, reader, writer, abort) {
                            Ok(()) => eprintln!("qross-serve: {peer} done"),
                            Err(e) => eprintln!("warning: {peer}: session failed: {e}"),
                        }
                    });
                }
            });
        }
    }
    let stats = engine.stats();
    eprintln!(
        "qross-serve: {} requests ({} rows, {} cache hits, {} batches, {} rejected, \
         {} feedback, {} refreshes, final generation {})",
        stats.requests,
        stats.rows,
        stats.cache_hits,
        stats.batches,
        stats.rejected,
        stats.feedback,
        stats.refreshes,
        engine.generation()
    );
}
