//! Qbsolv-style decomposition hybrid.
//!
//! Follows the published qbsolv algorithm (Booth, Reinhardt & Roy,
//! *Partitioning optimization problems for hybrid classical/quantum
//! execution*, D-Wave TR 2017): maintain a global assignment, repeatedly
//! carve out sub-QUBOs of at most `subproblem_size` variables — chosen by
//! flip-impact ranking — clamp the remaining variables, optimise each
//! sub-QUBO with a (tabu) subsolver, and write improvements back. The outer
//! loop perturbs the incumbent on stall, mimicking qbsolv's restart logic.
//!
//! The paper ran qbsolv with a *simulator backend* rather than quantum
//! hardware (§5 fn. 3); this implementation's tabu subsolver plays that
//! role.

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;
use qubo::{QuboBuilder, QuboModel, QuboState};

use crate::parallel::parallel_map_with;
use crate::sample::{Sample, SampleSet};
use crate::tabu::{TabuConfig, TabuSearch};
use crate::Solver;

/// Configuration for [`Qbsolv`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QbsolvConfig {
    /// maximum variables per sub-QUBO (hardware-embeddable size)
    pub subproblem_size: usize,
    /// outer decomposition passes per replica
    pub max_passes: usize,
    /// passes without improvement before the incumbent is perturbed
    pub stall_passes: usize,
    /// fraction of variables flipped on perturbation
    pub perturb_fraction: f64,
    /// subsolver settings for each sub-QUBO
    pub tabu: TabuConfig,
}

impl Default for QbsolvConfig {
    fn default() -> Self {
        QbsolvConfig {
            subproblem_size: 48,
            max_passes: 12,
            stall_passes: 3,
            perturb_fraction: 0.15,
            tabu: TabuConfig {
                max_iters: 500,
                stall_limit: 120,
                tenure: None,
            },
        }
    }
}

/// The qbsolv decomposition hybrid solver.
///
/// # Examples
///
/// ```
/// use qubo::QuboBuilder;
/// use solvers::{qbsolv::Qbsolv, Solver};
/// let mut b = QuboBuilder::new(4);
/// for i in 0..4 {
///     b.add_linear(i, -1.0);
/// }
/// let model = b.build();
/// let set = Qbsolv::default().sample(&model, 2, 3);
/// assert_eq!(set.best().unwrap().energy, -4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Qbsolv {
    config: QbsolvConfig,
}

impl Qbsolv {
    /// Creates a solver with the given configuration.
    pub fn new(config: QbsolvConfig) -> Self {
        Qbsolv { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &QbsolvConfig {
        &self.config
    }

    /// Extracts the sub-QUBO over `vars` with every other variable clamped
    /// to its value in `state`. Clamped couplings fold into the sub-model's
    /// linear terms; the clamped-part energy goes into the offset so that
    /// sub-model energies equal full-model energies.
    ///
    /// The offset — the full-model energy with every free variable zeroed —
    /// is derived from the incremental state's cached energy and local
    /// fields in O(Σ deg(vars)) instead of a full `model.energy()` pass:
    /// subtracting the field of each switched-on free variable removes its
    /// linear term and clamped couplings once, but removes free–free
    /// couplings twice, so those are added back while the neighbour scan
    /// runs anyway.
    ///
    /// `index_of` is caller-owned scratch of length `num_vars` with every
    /// entry `usize::MAX`; it is restored to that state before returning,
    /// so one allocation serves every chunk of every pass.
    fn sub_qubo(
        model: &QuboModel,
        state: &QuboState<'_>,
        vars: &[usize],
        index_of: &mut [usize],
    ) -> QuboModel {
        debug_assert!(index_of.iter().all(|&s| s == usize::MAX));
        for (k, &v) in vars.iter().enumerate() {
            index_of[v] = k;
        }
        let mut b = QuboBuilder::new(vars.len());
        let mut offset = state.energy();
        for (k, &i) in vars.iter().enumerate() {
            let i_on = state.bit(i) != 0;
            if i_on {
                offset -= state.field(i);
            }
            // Linear term: l_i plus couplings to clamped-on neighbours.
            let mut lin = model.linear(i);
            for (j, w) in model.neighbors(i) {
                let j = j as usize;
                let slot = index_of[j];
                if slot == usize::MAX {
                    if state.bit(j) != 0 {
                        lin += w;
                    }
                } else if slot > k {
                    b.add_quadratic(k, slot, w);
                    if i_on && state.bit(j) != 0 {
                        offset += w; // double-subtracted free–free coupling
                    }
                }
            }
            b.add_linear(k, lin);
        }
        b.add_offset(offset);
        for &v in vars {
            index_of[v] = usize::MAX;
        }
        b.build()
    }

    fn run_replica(&self, state: &mut QuboState<'_>, index_of: &mut [usize], seed: u64) -> Sample {
        let model = state.model();
        let n = model.num_vars();
        let mut rng = derive_rng(seed, 0x9B);
        state.randomize(&mut rng);
        let mut best_x = state.assignment().to_vec();
        let mut best_e = state.energy();
        let tabu = TabuSearch::new(self.config.tabu);
        let k = self.config.subproblem_size.max(1).min(n.max(1));
        let mut stall = 0usize;

        for pass in 0..self.config.max_passes {
            // Rank variables by flip impact (|ΔE|), descending — qbsolv's
            // "most promising variables first" selection.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                state
                    .flip_delta(b)
                    .abs()
                    .partial_cmp(&state.flip_delta(a).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let improved_before = best_e;
            for chunk in order.chunks(k) {
                let vars: Vec<usize> = chunk.to_vec();
                let sub = Self::sub_qubo(model, state, &vars, index_of);
                let sub_start: Vec<u8> = vars.iter().map(|&v| state.bit(v)).collect();
                let result = tabu.improve(
                    &sub,
                    sub_start,
                    mathkit::rng::derive_seed(seed, 1000 + pass as u64),
                );
                // Write back only if the sub-solution improves the whole.
                let current_e = state.energy();
                if result.energy < current_e - 1e-12 {
                    for (slot, &v) in vars.iter().enumerate() {
                        if state.bit(v) != result.assignment[slot] {
                            state.flip(v);
                        }
                    }
                    debug_assert!((state.energy() - result.energy).abs() < 1e-6);
                }
                if state.energy() < best_e - 1e-12 {
                    best_e = state.energy();
                    best_x.copy_from_slice(state.assignment());
                }
            }
            if best_e >= improved_before - 1e-12 {
                stall += 1;
                if stall >= self.config.stall_passes {
                    // Perturb: restart the walk from a shaken incumbent.
                    let flips = ((n as f64) * self.config.perturb_fraction).ceil() as usize;
                    let mut shaken = best_x.clone();
                    let mut idx: Vec<usize> = (0..n).collect();
                    idx.shuffle(&mut rng);
                    for &i in idx.iter().take(flips.min(n)) {
                        shaken[i] ^= 1;
                    }
                    state.reset(shaken);
                    stall = 0;
                }
            } else {
                stall = 0;
            }
        }
        Sample {
            assignment: best_x,
            energy: best_e,
        }
    }
}

impl Solver for Qbsolv {
    fn name(&self) -> &str {
        "qbsolv"
    }

    fn sample(&self, model: &QuboModel, batch: usize, seed: u64) -> SampleSet {
        let sw = obs::Stopwatch::start();
        if model.num_vars() == 0 {
            return SampleSet::from_samples(
                (0..batch)
                    .map(|_| Sample {
                        assignment: Vec::new(),
                        energy: model.offset(),
                    })
                    .collect(),
            );
        }
        let samples = parallel_map_with(
            batch,
            || {
                (
                    QuboState::new(model, vec![0; model.num_vars()]),
                    vec![usize::MAX; model.num_vars()],
                )
            },
            |(state, index_of), replica| {
                self.run_replica(
                    state,
                    index_of,
                    mathkit::rng::derive_seed(seed, replica as u64),
                )
            },
        );
        let set = SampleSet::from_samples(samples);
        // Sub-QUBO refinement sweeps are attributed to `tabu` by the
        // embedded refiner; qbsolv records only the end-to-end duration.
        crate::metrics::record_sample("qbsolv", sw.elapsed_ns(), 0, 0);
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::rng::seeded_rng;
    use qubo::QuboBuilder;
    use rand::Rng;

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = seeded_rng(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.gen_range(-1.0..1.0));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f64>() < 0.3 {
                    b.add_quadratic(i, j, rng.gen_range(-1.0..1.0));
                }
            }
        }
        b.build()
    }

    fn exact_minimum(model: &QuboModel) -> f64 {
        let n = model.num_vars();
        let mut best = f64::INFINITY;
        for bits in 0..(1u32 << n) {
            let x: Vec<u8> = (0..n).map(|k| ((bits >> k) & 1) as u8).collect();
            best = best.min(model.energy(&x));
        }
        best
    }

    #[test]
    fn matches_exact_on_small_models() {
        for seed in 0..3 {
            let m = random_model(12, seed);
            let truth = exact_minimum(&m);
            let set = Qbsolv::default().sample(&m, 4, seed);
            assert!(
                (set.best().unwrap().energy - truth).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                set.best().unwrap().energy,
                truth
            );
        }
    }

    #[test]
    fn decomposition_actually_splits() {
        // Force subproblems smaller than the model to exercise sub_qubo.
        let m = random_model(16, 9);
        let truth = exact_minimum(&m);
        let cfg = QbsolvConfig {
            subproblem_size: 5,
            max_passes: 20,
            ..Default::default()
        };
        let set = Qbsolv::new(cfg).sample(&m, 4, 1);
        assert!((set.best().unwrap().energy - truth).abs() < 1e-9);
    }

    #[test]
    fn sub_qubo_energy_identity() {
        // For any sub-assignment, sub-model energy == full-model energy
        // with the complement clamped.
        let m = random_model(10, 4);
        let mut rng = seeded_rng(3);
        let x: Vec<u8> = (0..10).map(|_| rng.gen_range(0..2)).collect();
        let state = QuboState::new(&m, x.clone());
        let vars = vec![1usize, 4, 7];
        let mut index_of = vec![usize::MAX; 10];
        let sub = Qbsolv::sub_qubo(&m, &state, &vars, &mut index_of);
        // Scratch restored for the next chunk.
        assert!(index_of.iter().all(|&s| s == usize::MAX));
        for bits in 0..8u8 {
            let sub_x: Vec<u8> = (0..3).map(|k| (bits >> k) & 1).collect();
            let mut full_x = x.clone();
            for (k, &v) in vars.iter().enumerate() {
                full_x[v] = sub_x[k];
            }
            assert!(
                (sub.energy(&sub_x) - m.energy(&full_x)).abs() < 1e-9,
                "bits={bits}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = random_model(14, 5);
        let q = Qbsolv::default();
        assert_eq!(q.sample(&m, 3, 42), q.sample(&m, 3, 42));
    }

    #[test]
    fn energies_consistent_with_assignments() {
        let m = random_model(14, 6);
        for s in Qbsolv::default().sample(&m, 4, 8).iter() {
            assert!((m.energy(&s.assignment) - s.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_model() {
        let m = QuboBuilder::new(0).build();
        let set = Qbsolv::default().sample(&m, 2, 1);
        assert_eq!(set.len(), 2);
    }
}
