//! # problems — constrained combinatorial problems and QUBO encodings
//!
//! The paper's case study is the Travelling Salesman Problem (§4), its
//! appendix uses Minimum Vertex Cover (appendix B), and it confirms the
//! core hypothesis on QAPLIB (§3.1 fn. 2). This crate implements all
//! three problem families end to end:
//!
//! * [`tsp`] — instances, the synthetic generators of appendix D, the n²
//!   QUBO encoding of Lucas (2014) used in §4.1, the MVODM pre-processing
//!   of appendix E, and classical reference heuristics (nearest-neighbour,
//!   2-opt, Or-opt) that provide the "near-optimal fitness" the paper
//!   normalises against;
//! * [`tsplib`] — a TSPLIB95 parser (EUC_2D, CEIL_2D, MAN_2D, MAX_2D, ATT,
//!   GEO and EXPLICIT matrices);
//! * [`realworld`] — the out-of-distribution benchmark set standing in for
//!   the paper's 11 TSPLIB instances (see DESIGN.md: the original data
//!   files are not redistributable here, so deterministic generators with
//!   matching sizes and diverse spatial structure are used instead — load
//!   genuine `.tsp` files through [`tsplib`] when available);
//! * [`mvc`] — weighted Minimum Vertex Cover with the appendix-B QUBO
//!   penalty form;
//! * [`qap`] — Quadratic Assignment Problem with the permutation QUBO
//!   encoding;
//! * [`maxcut`] — balanced Max-Cut (cardinality constraint relaxed with
//!   penalty `A`);
//! * [`knapsack`] — 0/1 knapsack with slack-bit capacity encoding
//!   (Lucas 2014 §5.2).
//!
//! All encodings implement [`RelaxableProblem`], the interface the QROSS
//! pipeline consumes: build a QUBO for a relaxation parameter `A`, test
//! feasibility of solver outputs, and score feasible solutions in original
//! objective units. The [`family`] module raises that contract to the
//! *family* level: a [`family::ProblemFamily`] owns generation,
//! featurization and a compact instance encoding, and a static registry
//! makes families addressable by name — adding one means touching only
//! this crate plus one registration line.

pub mod family;
pub mod knapsack;
pub mod maxcut;
pub mod mvc;
pub mod qap;
pub mod realworld;
pub mod tsp;
pub mod tsplib;

pub use family::{
    known_families, lookup_family, registry, CorpusTier, FamilyProblem, InstanceData,
    ProblemFamily, FAMILY_FEATURE_DIM,
};
pub use knapsack::KnapsackInstance;
pub use maxcut::MaxCutInstance;
pub use mvc::MvcInstance;
pub use qap::QapInstance;
pub use tsp::{TspEncoding, TspInstance};

use qubo::QuboModel;

/// A constrained problem relaxed into QUBO form with a penalty parameter.
///
/// This is the contract between problem encodings and the QROSS pipeline:
/// the surrogate learns `Pf(g, A)` and energy statistics of the QUBO built
/// by [`RelaxableProblem::to_qubo`], while [`RelaxableProblem::fitness`]
/// scores feasible assignments in the *original* objective units (for TSP,
/// tour length under the unmodified distance matrix — appendix E).
pub trait RelaxableProblem: Send + Sync {
    /// Human-readable instance identifier.
    fn name(&self) -> &str;

    /// Number of binary variables of the QUBO encoding.
    fn num_vars(&self) -> usize;

    /// Builds the penalty relaxation for parameter `relaxation`.
    fn to_qubo(&self, relaxation: f64) -> QuboModel;

    /// Whether `x` satisfies every constraint of the original problem.
    fn is_feasible(&self, x: &[u8]) -> bool;

    /// Original-units objective of `x`, or `None` when `x` is infeasible.
    fn fitness(&self, x: &[u8]) -> Option<f64>;
}

impl<T: RelaxableProblem + ?Sized> RelaxableProblem for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn num_vars(&self) -> usize {
        (**self).num_vars()
    }

    fn to_qubo(&self, relaxation: f64) -> QuboModel {
        (**self).to_qubo(relaxation)
    }

    fn is_feasible(&self, x: &[u8]) -> bool {
        (**self).is_feasible(x)
    }

    fn fitness(&self, x: &[u8]) -> Option<f64> {
        (**self).fitness(x)
    }
}

/// Errors from problem construction and data parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// A TSPLIB file could not be parsed.
    Parse {
        /// line number (1-based) where parsing failed, when known
        line: usize,
        /// explanation
        message: String,
    },
    /// The instance data is structurally invalid (wrong matrix shape,
    /// negative dimension, unknown edge-weight type, ...).
    InvalidInstance {
        /// explanation
        message: String,
    },
    /// A problem-family name did not match any registered family.
    UnknownFamily {
        /// the name that failed to resolve
        name: String,
        /// ` | `-joined registered family names
        known: String,
    },
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ProblemError::InvalidInstance { message } => {
                write!(f, "invalid instance: {message}")
            }
            ProblemError::UnknownFamily { name, known } => {
                write!(f, "unknown problem family `{name}` (known: {known})")
            }
        }
    }
}

impl std::error::Error for ProblemError {}
