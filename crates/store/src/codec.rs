//! Length-framed little-endian binary primitives.
//!
//! Every multi-byte integer is little-endian; `f64` values travel as
//! their IEEE-754 bit pattern ([`f64::to_bits`]), so the codec is
//! *bit-exact* — NaN payloads, signed zeros and infinities all round-trip
//! unchanged. Variable-length values (strings, vectors) carry a `u64`
//! element-count prefix.
//!
//! Decoding never panics: every read is bounds-checked and returns
//! [`StoreError::Truncated`] when the input runs out, and length prefixes
//! are validated against the remaining bytes *before* any allocation, so
//! a corrupted 8-byte length cannot trigger an OOM allocation.

use crate::StoreError;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) of `bytes` —
/// the per-section checksum of the container format.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small branchless bitwise implementation: the sections being summed
    // are kilobytes at most, so a table is not worth its cache lines.
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append-only buffer of codec primitives.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` (LE).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (LE).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Writes `Some(x)` as `1 + bits`, `None` as `0`.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Writes raw bytes without a length prefix (caller frames them).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` (LE).
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` (LE).
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` encoded as `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input, or
    /// [`StoreError::Corrupt`] when the value exceeds `usize::MAX`.
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| StoreError::Corrupt {
            message: format!("length {v} exceeds the platform's usize"),
        })
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool, rejecting anything other than `0`/`1`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of input, [`StoreError::Corrupt`]
    /// for a non-boolean byte.
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Corrupt {
                message: format!("invalid bool byte {other:#04x}"),
            }),
        }
    }

    /// Reads a length-prefixed count, validating that `count * elem_size`
    /// bytes are actually available before the caller allocates.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the declared payload cannot fit in
    /// the remaining bytes.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, StoreError> {
        let n = self.get_usize()?;
        let bytes = n.checked_mul(elem_size).ok_or(StoreError::Corrupt {
            message: format!("length {n} overflows"),
        })?;
        if bytes > self.remaining() {
            return Err(StoreError::Truncated {
                needed: bytes,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] / [`StoreError::Corrupt`] for truncated
    /// or non-UTF-8 payloads.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| StoreError::Corrupt {
            message: format!("invalid UTF-8 string: {e}"),
        })
    }

    /// Reads a length-prefixed `f64` vector.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the declared length outruns the
    /// input.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, StoreError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Reads an optional `f64` written by [`ByteWriter::put_opt_f64`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] / [`StoreError::Corrupt`] for malformed
    /// input.
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>, StoreError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_f64()?)),
            other => Err(StoreError::Corrupt {
                message: format!("invalid Option tag {other:#04x}"),
            }),
        }
    }

    /// Asserts the reader is exhausted — decoders call this after the last
    /// field so trailing garbage is rejected rather than ignored.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when bytes remain.
    pub fn finish(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt {
                message: format!("{} trailing bytes after payload", self.remaining()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_bool(true);
        w.put_str("héllo");
        w.put_f64_slice(&[1.5, f64::INFINITY, f64::NEG_INFINITY]);
        w.put_opt_f64(None);
        w.put_opt_f64(Some(3.25));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(
            r.get_f64_vec().unwrap(),
            vec![1.5, f64::INFINITY, f64::NEG_INFINITY]
        );
        assert_eq!(r.get_opt_f64().unwrap(), None);
        assert_eq!(r.get_opt_f64().unwrap(), Some(3.25));
        r.finish().unwrap();
    }

    #[test]
    fn nan_payload_bits_survive() {
        // A quiet NaN with a distinctive payload must come back bit-equal.
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut w = ByteWriter::new();
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                r.get_f64_vec().is_err(),
                "truncation at {cut} went undetected"
            );
        }
    }

    #[test]
    fn huge_length_prefix_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX / 2); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_f64_vec(),
            Err(StoreError::Truncated { .. }) | Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_bool_and_option_tags_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(r.get_bool(), Err(StoreError::Corrupt { .. })));
        let mut r = ByteReader::new(&[2, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(r.get_opt_f64(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
