//! Synthetic TSP dataset generation (paper appendix D).
//!
//! "We use uniform distribution and exponential distribution as our random
//! number generators to create the coordinates of the cities. The parameter
//! for the exponential distribution is generated from uniform distributions
//! over a range. The uniform distribution is generated on a bounded domain.
//! After we generated the coordinate data, we then compute the
//! corresponding Euclidean distance."
//!
//! [`SyntheticDataset`] reproduces the experiment-scale dataset of §5: 300
//! instances with 20–30 cities, split 270 train / 30 test (sizes and counts
//! configurable for the `quick` experiment scale).

use rand::Rng;
use serde::{Deserialize, Serialize};

use mathkit::rng::derive_rng;

use super::TspInstance;

/// Coordinate distribution used for a generated instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordDistribution {
    /// i.i.d. uniform on `[0, side] x [0, side]`
    Uniform,
    /// i.i.d. exponential per axis, rate drawn per instance
    Exponential,
}

/// Configuration for [`SyntheticDataset`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// inclusive city-count range
    pub min_cities: usize,
    /// inclusive upper bound on city count
    pub max_cities: usize,
    /// side length of the uniform domain
    pub uniform_side: f64,
    /// inclusive range from which the exponential rate is drawn
    pub exp_rate_range: (f64, f64),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_cities: 20,
            max_cities: 30,
            uniform_side: 100.0,
            exp_rate_range: (0.02, 0.2),
        }
    }
}

/// Generates one synthetic instance.
///
/// Even indices use the uniform generator, odd indices the exponential
/// one, so a dataset interleaves both families deterministically.
///
/// # Panics
///
/// Panics if the configuration ranges are inverted or non-positive.
pub fn generate_instance(config: &GeneratorConfig, seed: u64, index: u64) -> TspInstance {
    assert!(
        config.min_cities >= 3 && config.min_cities <= config.max_cities,
        "invalid city range {}..={}",
        config.min_cities,
        config.max_cities
    );
    assert!(config.uniform_side > 0.0, "uniform domain must be positive");
    assert!(
        config.exp_rate_range.0 > 0.0 && config.exp_rate_range.0 <= config.exp_rate_range.1,
        "invalid exponential rate range"
    );
    let mut rng = derive_rng(seed, index);
    let n = rng.gen_range(config.min_cities..=config.max_cities);
    let dist_kind = if index.is_multiple_of(2) {
        CoordDistribution::Uniform
    } else {
        CoordDistribution::Exponential
    };
    let coords: Vec<(f64, f64)> = match dist_kind {
        CoordDistribution::Uniform => (0..n)
            .map(|_| {
                (
                    rng.gen_range(0.0..config.uniform_side),
                    rng.gen_range(0.0..config.uniform_side),
                )
            })
            .collect(),
        CoordDistribution::Exponential => {
            let rate = rng.gen_range(config.exp_rate_range.0..=config.exp_rate_range.1);
            (0..n)
                .map(|_| {
                    // Inverse-CDF exponential draws per axis.
                    let u1: f64 = rng.gen::<f64>().max(1e-300);
                    let u2: f64 = rng.gen::<f64>().max(1e-300);
                    (-u1.ln() / rate, -u2.ln() / rate)
                })
                .collect()
        }
    };
    let tag = match dist_kind {
        CoordDistribution::Uniform => "u",
        CoordDistribution::Exponential => "e",
    };
    TspInstance::from_coords(&format!("synth_{tag}{n}_{index:03}"), &coords)
}

/// A reproducible synthetic dataset with a train/test split.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    train: Vec<TspInstance>,
    test: Vec<TspInstance>,
}

impl SyntheticDataset {
    /// Generates `train + test` instances from one root seed, assigning
    /// the last `test` instances to the held-out split (matching the
    /// paper's 270/30 protocol at `train = 270, test = 30`).
    pub fn generate(config: &GeneratorConfig, train: usize, test: usize, seed: u64) -> Self {
        let total = train + test;
        let mut instances: Vec<TspInstance> = (0..total as u64)
            .map(|i| generate_instance(config, seed, i))
            .collect();
        let test_set = instances.split_off(train);
        SyntheticDataset {
            train: instances,
            test: test_set,
        }
    }

    /// Training instances.
    pub fn train(&self) -> &[TspInstance] {
        &self.train
    }

    /// Held-out test instances.
    pub fn test(&self) -> &[TspInstance] {
        &self.test
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = GeneratorConfig::default();
        let a = generate_instance(&cfg, 42, 7);
        let b = generate_instance(&cfg, 42, 7);
        assert_eq!(a, b);
        let c = generate_instance(&cfg, 42, 8);
        assert_ne!(a.matrix(), c.matrix());
    }

    #[test]
    fn city_counts_in_range() {
        let cfg = GeneratorConfig {
            min_cities: 5,
            max_cities: 9,
            ..Default::default()
        };
        for i in 0..40 {
            let inst = generate_instance(&cfg, 1, i);
            assert!((5..=9).contains(&inst.num_cities()), "{}", inst.name());
        }
    }

    #[test]
    fn both_families_appear() {
        let cfg = GeneratorConfig {
            min_cities: 5,
            max_cities: 6,
            ..Default::default()
        };
        let u = generate_instance(&cfg, 3, 0);
        let e = generate_instance(&cfg, 3, 1);
        assert!(u.name().starts_with("synth_u"));
        assert!(e.name().starts_with("synth_e"));
    }

    #[test]
    fn split_sizes() {
        let cfg = GeneratorConfig {
            min_cities: 5,
            max_cities: 7,
            ..Default::default()
        };
        let ds = SyntheticDataset::generate(&cfg, 12, 4, 9);
        assert_eq!(ds.train().len(), 12);
        assert_eq!(ds.test().len(), 4);
        // Train and test are disjoint streams of the same generator.
        assert_ne!(ds.train()[0].matrix(), ds.test()[0].matrix());
    }

    #[test]
    fn distances_positive_and_finite() {
        let cfg = GeneratorConfig {
            min_cities: 8,
            max_cities: 8,
            ..Default::default()
        };
        for i in 0..6 {
            let inst = generate_instance(&cfg, 5, i);
            for a in 0..8 {
                for b in 0..8 {
                    let d = inst.distance(a, b);
                    assert!(d.is_finite());
                    if a != b {
                        assert!(d > 0.0, "degenerate duplicate city");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid city range")]
    fn rejects_bad_range() {
        let cfg = GeneratorConfig {
            min_cities: 10,
            max_cities: 5,
            ..Default::default()
        };
        let _ = generate_instance(&cfg, 0, 0);
    }
}
