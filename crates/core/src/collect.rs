//! Solver-data collection (paper §3.3, "Data Preparation").
//!
//! For each training instance the solver is sampled over a schedule of
//! relaxation-parameter values. The paper's guidance:
//!
//! * "make sure that `{A | 0 < Pf(g,A) < 1}` are well sampled" — the
//!   sigmoid *slope* carries the signal;
//! * "at least a sizable number of samples in `{A | Pf = 0 or 1}`" — the
//!   *plateaus* prevent over-fitting.
//!
//! [`collect_profile`] implements that: exponential probing locates the
//! slope (`A_left` with `Pf = 0`, `A_right` with `Pf = 1`), then the probe
//! observations are densified with a log-spaced sweep between
//! `A_left / margin` and `A_right · margin`, so both plateaus and the slope
//! are covered.

use problems::RelaxableProblem;
use serde::{Deserialize, Serialize};
use solvers::Solver;

use crate::QrossError;

/// One solver call's summary at a given relaxation parameter — exactly the
/// targets the surrogate learns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverObservation {
    /// relaxation parameter used
    pub a: f64,
    /// fraction of feasible solutions in the batch (paper eq. 1)
    pub pf: f64,
    /// batch mean QUBO energy
    pub e_avg: f64,
    /// batch energy standard deviation
    pub e_std: f64,
    /// best original-units fitness among feasible solutions, if any
    pub best_fitness: Option<f64>,
    /// lowest QUBO energy in the batch
    pub min_energy: f64,
}

/// Configuration of the A-sampling schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectConfig {
    /// starting probe value
    pub a_init: f64,
    /// probe growth/shrink factor for the exponential search
    pub probe_factor: f64,
    /// hard bounds for any sampled A
    pub a_bounds: (f64, f64),
    /// number of log-spaced sweep points between the located bounds
    pub sweep_points: usize,
    /// multiplicative margin extending the sweep into both plateaus
    pub plateau_margin: f64,
    /// solutions per solver call (the paper's B = 128)
    pub batch: usize,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            a_init: 1.0,
            probe_factor: 2.0,
            a_bounds: (1e-3, 1e3),
            sweep_points: 12,
            plateau_margin: 2.0,
            batch: 32,
        }
    }
}

/// Evaluates one `(instance, A)` pair on the solver, rejecting empty
/// sample sets.
///
/// # Errors
///
/// Returns [`QrossError::EmptyBatch`] when the solver returns zero
/// samples — batch statistics are undefined there, and recording them as
/// NaN would poison downstream dataset normalisation.
pub fn try_observe<P: RelaxableProblem + ?Sized, S: Solver + ?Sized>(
    problem: &P,
    solver: &S,
    a: f64,
    batch: usize,
    seed: u64,
) -> Result<SolverObservation, QrossError> {
    let qubo = problem.to_qubo(a);
    let set = solver.sample(&qubo, batch, seed);
    let Some(best) = set.best() else {
        return Err(QrossError::EmptyBatch { a });
    };
    let min_energy = best.energy;
    let pf = set.feasibility_fraction(|x| problem.is_feasible(x));
    let best_fitness = set
        .best_feasible(|x| problem.is_feasible(x))
        .and_then(|s| problem.fitness(&s.assignment));
    Ok(SolverObservation {
        a,
        pf,
        e_avg: set.mean_energy(),
        e_std: set.std_energy(),
        best_fitness,
        min_energy,
    })
}

/// Evaluates one `(instance, A)` pair on the solver.
///
/// Infallible variant of [`try_observe`] for callers that must always
/// record a trial (the evaluation harness charges one trial per solver
/// call whatever happens): an empty sample set degrades to a neutral
/// all-infeasible observation (`pf = 0`, zeroed finite statistics, no
/// fitness) instead of propagating NaN.
pub fn observe<P: RelaxableProblem + ?Sized, S: Solver + ?Sized>(
    problem: &P,
    solver: &S,
    a: f64,
    batch: usize,
    seed: u64,
) -> SolverObservation {
    try_observe(problem, solver, a, batch, seed).unwrap_or(SolverObservation {
        a,
        pf: 0.0,
        e_avg: 0.0,
        e_std: 0.0,
        best_fitness: None,
        min_energy: 0.0,
    })
}

/// Collects a full A-profile of one instance: exponential slope location
/// plus a log-spaced sweep with plateau margins. Observations are returned
/// sorted by `a` (probe duplicates merged).
///
/// # Panics
///
/// Panics if the configuration is degenerate (non-positive bounds or
/// factors, zero sweep points or batch).
pub fn collect_profile<P: RelaxableProblem + ?Sized, S: Solver + ?Sized>(
    problem: &P,
    solver: &S,
    config: &CollectConfig,
    seed: u64,
) -> Vec<SolverObservation> {
    assert!(
        config.a_bounds.0 > 0.0 && config.a_bounds.0 < config.a_bounds.1,
        "invalid A bounds"
    );
    assert!(config.probe_factor > 1.0, "probe factor must exceed 1");
    assert!(config.plateau_margin >= 1.0, "margin must be at least 1");
    assert!(
        config.sweep_points >= 2 && config.batch > 0,
        "sweep points and batch must be positive"
    );
    let (lo_bound, hi_bound) = config.a_bounds;
    let mut observations: Vec<SolverObservation> = Vec::new();
    let mut stream = 0u64;
    // Empty solver batches are skipped (not recorded): their statistics
    // are undefined and would otherwise flow NaN into the training
    // dataset. The seed stream still advances, so well-behaved solvers
    // see exactly the seeds they always did, and the probe loop treats
    // the point as infeasible (pf = 0), which the bounded A-range walk
    // terminates on regardless.
    let mut probe = |a: f64, observations: &mut Vec<SolverObservation>| -> f64 {
        stream += 1;
        match try_observe(
            problem,
            solver,
            a,
            config.batch,
            mathkit::rng::derive_seed(seed, stream),
        ) {
            Ok(obs) => {
                let pf = obs.pf;
                observations.push(obs);
                pf
            }
            Err(_) => 0.0,
        }
    };

    // Locate A_right: smallest probed A with Pf = 1.
    let mut a_right = config.a_init.clamp(lo_bound, hi_bound);
    let mut pf = probe(a_right, &mut observations);
    while pf < 1.0 && a_right < hi_bound {
        a_right = (a_right * config.probe_factor).min(hi_bound);
        pf = probe(a_right, &mut observations);
    }
    // Locate A_left: largest probed A with Pf = 0.
    let mut a_left = (config.a_init / config.probe_factor).clamp(lo_bound, hi_bound);
    let mut pf = probe(a_left, &mut observations);
    while pf > 0.0 && a_left > lo_bound {
        a_left = (a_left / config.probe_factor).max(lo_bound);
        pf = probe(a_left, &mut observations);
    }

    // Log-spaced sweep with plateau margins.
    let sweep_lo = (a_left / config.plateau_margin).max(lo_bound);
    let sweep_hi = (a_right * config.plateau_margin).min(hi_bound);
    let (log_lo, log_hi) = (sweep_lo.ln(), sweep_hi.ln());
    for k in 0..config.sweep_points {
        let t = k as f64 / (config.sweep_points - 1) as f64;
        let a = (log_lo + t * (log_hi - log_lo)).exp();
        probe(a, &mut observations);
    }

    observations.sort_by(|x, y| x.a.partial_cmp(&y.a).unwrap_or(std::cmp::Ordering::Equal));
    observations.dedup_by(|b, a| {
        if (a.a - b.a).abs() < 1e-12 {
            true // keep the first of near-identical A values
        } else {
            false
        }
    });
    observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use problems::{TspEncoding, TspInstance};
    use solvers::sa::{SaConfig, SimulatedAnnealer};

    fn small_problem() -> TspEncoding {
        TspEncoding::preprocessed(TspInstance::from_coords(
            "t5",
            &[(0.0, 0.0), (2.0, 0.3), (3.0, 2.0), (1.0, 3.0), (-1.0, 1.5)],
        ))
    }

    fn fast_solver() -> SimulatedAnnealer {
        SimulatedAnnealer::new(SaConfig {
            sweeps: 64,
            ..Default::default()
        })
    }

    #[test]
    fn observe_consistency() {
        let p = small_problem();
        let s = fast_solver();
        let obs = observe(&p, &s, 2.0, 16, 1);
        assert_eq!(obs.a, 2.0);
        assert!((0.0..=1.0).contains(&obs.pf));
        assert!(obs.e_std >= 0.0);
        if obs.pf > 0.0 {
            assert!(obs.best_fitness.is_some());
        } else {
            assert!(obs.best_fitness.is_none());
        }
    }

    #[test]
    fn profile_covers_slope_and_plateaus() {
        let p = small_problem();
        let s = fast_solver();
        let cfg = CollectConfig {
            batch: 16,
            sweep_points: 10,
            ..Default::default()
        };
        let profile = collect_profile(&p, &s, &cfg, 7);
        assert!(profile.len() >= 10);
        // Sorted by A.
        for w in profile.windows(2) {
            assert!(w[0].a <= w[1].a);
        }
        // Plateau coverage: at least one Pf=0-ish and one Pf=1 observation.
        assert!(
            profile.first().unwrap().pf < 0.5,
            "low-A end should be infeasible-dominated: {:?}",
            profile.first()
        );
        assert!(
            profile.last().unwrap().pf > 0.5,
            "high-A end should be feasible-dominated"
        );
        // Slope coverage: some observation strictly between.
        assert!(
            profile.iter().any(|o| o.pf > 0.0 && o.pf < 1.0),
            "no slope samples collected"
        );
    }

    #[test]
    fn pf_is_nondecreasing_in_trend() {
        // Not strictly monotone (stochastic), but the low-third average
        // must not exceed the high-third average.
        let p = small_problem();
        let s = fast_solver();
        let cfg = CollectConfig {
            batch: 16,
            ..Default::default()
        };
        let profile = collect_profile(&p, &s, &cfg, 3);
        let third = profile.len() / 3;
        let low: f64 = profile[..third].iter().map(|o| o.pf).sum::<f64>() / third.max(1) as f64;
        let high: f64 = profile[profile.len() - third..]
            .iter()
            .map(|o| o.pf)
            .sum::<f64>()
            / third.max(1) as f64;
        assert!(high >= low, "Pf trend inverted: low {low}, high {high}");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = small_problem();
        let s = fast_solver();
        let cfg = CollectConfig {
            batch: 8,
            sweep_points: 6,
            ..Default::default()
        };
        let a = collect_profile(&p, &s, &cfg, 11);
        let b = collect_profile(&p, &s, &cfg, 11);
        assert_eq!(a, b);
    }

    /// A broken solver that returns zero samples regardless of the batch
    /// request.
    struct EmptySolver;

    impl Solver for EmptySolver {
        fn name(&self) -> &str {
            "empty"
        }

        fn sample(
            &self,
            _model: &qubo::QuboModel,
            _batch: usize,
            _seed: u64,
        ) -> solvers::SampleSet {
            solvers::SampleSet::new()
        }
    }

    #[test]
    fn empty_batch_is_rejected_not_nan() {
        let p = small_problem();
        let err = try_observe(&p, &EmptySolver, 1.0, 16, 3);
        assert!(matches!(err, Err(crate::QrossError::EmptyBatch { .. })));
        // The infallible path degrades to a neutral, finite observation.
        let obs = observe(&p, &EmptySolver, 1.0, 16, 3);
        assert_eq!(obs.pf, 0.0);
        assert!(obs.e_avg.is_finite() && obs.e_std.is_finite() && obs.min_energy.is_finite());
        assert!(obs.best_fitness.is_none());
    }

    #[test]
    fn profile_skips_empty_batches_and_terminates() {
        let p = small_problem();
        let cfg = CollectConfig {
            batch: 8,
            sweep_points: 6,
            ..Default::default()
        };
        let profile = collect_profile(&p, &EmptySolver, &cfg, 5);
        assert!(profile.is_empty(), "no observation should be recorded");
        // Nothing NaN can reach the dataset: pushing the (empty) profile
        // is a no-op rather than a poisoned row.
        let mut ds = crate::dataset::SurrogateDataset::new(1);
        ds.push_profile(&[1.0], &profile);
        assert!(ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid A bounds")]
    fn rejects_bad_bounds() {
        let p = small_problem();
        let s = fast_solver();
        let cfg = CollectConfig {
            a_bounds: (1.0, 0.5),
            ..Default::default()
        };
        let _ = collect_profile(&p, &s, &cfg, 0);
    }
}
