//! Classical TSP heuristics: nearest-neighbour construction, 2-opt and
//! Or-opt local search.
//!
//! The paper reports the *normalised optimality gap* against a
//! "near-optimal fitness" per instance (Figs. 3–4). These heuristics
//! produce that reference: multi-start nearest-neighbour tours polished by
//! 2-opt and Or-opt, which is near-optimal on instances of the sizes used
//! (14–90 cities).

use super::TspInstance;

/// Builds a nearest-neighbour tour starting from `start`.
///
/// # Panics
///
/// Panics if `start >= num_cities` or the instance has no cities.
///
/// # Examples
///
/// ```
/// use problems::{tsp::heuristics, TspInstance};
/// let inst = TspInstance::from_coords("line", &[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
/// let tour = heuristics::nearest_neighbor(&inst, 0);
/// assert_eq!(tour, vec![0, 1, 2]);
/// ```
#[allow(clippy::needless_range_loop)] // next indexes visited and distances
pub fn nearest_neighbor(instance: &TspInstance, start: usize) -> Vec<usize> {
    let n = instance.num_cities();
    assert!(n > 0, "instance has no cities");
    assert!(start < n, "start city out of range");
    let mut tour = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut current = start;
    tour.push(current);
    visited[current] = true;
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for next in 0..n {
            if !visited[next] {
                let d = instance.distance(current, next);
                if d < best_d {
                    best_d = d;
                    best = next;
                }
            }
        }
        if best == usize::MAX {
            // Every remaining distance is NaN or +inf, so no comparison
            // succeeded. Take the first unvisited city instead of
            // indexing with the sentinel — construction stays total on
            // hostile (NaN-bearing) instances.
            best = (0..n).find(|&c| !visited[c]).expect("cities remain");
        }
        current = best;
        tour.push(current);
        visited[current] = true;
    }
    tour
}

/// Improves a tour in place with 2-opt (first-improvement sweeps until no
/// improving exchange exists). Returns the number of improving moves made.
///
/// # Panics
///
/// Panics if `tour` is not a permutation of the instance's cities.
pub fn two_opt(instance: &TspInstance, tour: &mut [usize]) -> usize {
    let n = tour.len();
    assert!(
        super::is_permutation(tour, instance.num_cities()),
        "2-opt requires a complete tour"
    );
    if n < 4 {
        return 0;
    }
    let mut moves = 0;
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n - 1 {
            for k in i + 2..n {
                // Skip the wrap-around edge pair (it is the same edge).
                if i == 0 && k == n - 1 {
                    continue;
                }
                let a = tour[i];
                let b = tour[i + 1];
                let c = tour[k];
                let d = tour[(k + 1) % n];
                let delta = instance.distance(a, c) + instance.distance(b, d)
                    - instance.distance(a, b)
                    - instance.distance(c, d);
                if delta < -1e-12 {
                    tour[i + 1..=k].reverse();
                    moves += 1;
                    improved = true;
                }
            }
        }
    }
    moves
}

/// Or-opt: relocates segments of 1–3 consecutive cities to better
/// positions. Returns the number of improving moves.
///
/// # Panics
///
/// Panics if `tour` is not a permutation of the instance's cities.
pub fn or_opt(instance: &TspInstance, tour: &mut Vec<usize>) -> usize {
    let n = tour.len();
    assert!(
        super::is_permutation(tour, instance.num_cities()),
        "Or-opt requires a complete tour"
    );
    if n < 5 {
        return 0;
    }
    let mut moves = 0;
    let mut improved = true;
    while improved {
        improved = false;
        for seg_len in 1..=3usize {
            for start in 0..n {
                if seg_len >= n - 2 {
                    continue;
                }
                let current_len = instance.tour_length(tour);
                // Extract the segment.
                let mut rest: Vec<usize> = Vec::with_capacity(n - seg_len);
                let mut segment: Vec<usize> = Vec::with_capacity(seg_len);
                for (idx, &c) in tour.iter().enumerate() {
                    let in_segment = (idx + n - start) % n < seg_len;
                    if in_segment {
                        segment.push(c);
                    } else {
                        rest.push(c);
                    }
                }
                // Try every reinsertion point.
                let mut best_tour: Option<(f64, Vec<usize>)> = None;
                for pos in 0..rest.len() {
                    let mut cand = rest.clone();
                    for (o, &c) in segment.iter().enumerate() {
                        cand.insert(pos + o, c);
                    }
                    let len = instance.tour_length(&cand);
                    if len < current_len - 1e-12
                        && best_tour.as_ref().is_none_or(|(bl, _)| len < *bl)
                    {
                        best_tour = Some((len, cand));
                    }
                }
                if let Some((_, cand)) = best_tour {
                    *tour = cand;
                    moves += 1;
                    improved = true;
                }
            }
        }
    }
    moves
}

/// The trivial tour of a degenerate (`n < 3`) instance: the identity
/// order, which for 0, 1 or 2 cities is the *only* tour up to symmetry.
fn trivial_tour(instance: &TspInstance) -> (Vec<usize>, f64) {
    let tour: Vec<usize> = (0..instance.num_cities()).collect();
    let len = instance.tour_length(&tour);
    (tour, len)
}

/// Fallible multi-start reference tour: best of `starts` nearest-neighbour
/// constructions, each polished with 2-opt then Or-opt then 2-opt again.
///
/// Returns `None` only when `starts == 0` on a non-degenerate instance —
/// no construction was attempted, so there is no "best" to return.
/// Degenerate instances (`n < 3`) yield the trivial tour: these used to
/// panic, which is unacceptable once instances arrive from untrusted
/// uploads (a serving process must survive a 2-city TSPLIB file).
pub fn try_reference_tour(instance: &TspInstance, starts: usize) -> Option<(Vec<usize>, f64)> {
    let n = instance.num_cities();
    if n < 3 {
        return Some(trivial_tour(instance));
    }
    let starts = starts.min(n);
    let mut best: Option<(Vec<usize>, f64)> = None;
    // Deterministic spread of start cities.
    for s in 0..starts {
        let start = s * n / starts;
        let mut tour = nearest_neighbor(instance, start);
        two_opt(instance, &mut tour);
        or_opt(instance, &mut tour);
        two_opt(instance, &mut tour);
        let len = instance.tour_length(&tour);
        if best.as_ref().is_none_or(|(_, bl)| len < *bl) {
            best = Some((tour, len));
        }
    }
    best
}

/// A reference (near-optimal) tour: best of `starts` nearest-neighbour
/// constructions, each polished with 2-opt then Or-opt then 2-opt again.
///
/// Returns `(tour, length)`. Total for every instance: degenerate
/// instances (`n < 3`) get the trivial tour, and `starts` is raised to at
/// least 1 — see [`try_reference_tour`] for the variant that reports an
/// empty multi-start as `None` instead.
pub fn reference_tour(instance: &TspInstance, starts: usize) -> (Vec<usize>, f64) {
    try_reference_tour(instance, starts.max(1)).expect("starts >= 1 always constructs a tour")
}

/// A cheap tour estimate — single nearest-neighbour construction plus one
/// 2-opt polish — used where only a length *feature* is needed (the
/// instance featurizer) rather than a high-quality reference.
///
/// Returns `(tour, length)`. Total for every instance (degenerate ones
/// get the trivial tour).
pub fn reference_tour_shallow(instance: &TspInstance) -> (Vec<usize>, f64) {
    if instance.num_cities() < 3 {
        return trivial_tour(instance);
    }
    let mut tour = nearest_neighbor(instance, 0);
    two_opt(instance, &mut tour);
    let len = instance.tour_length(&tour);
    (tour, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::rng::seeded_rng;
    use rand::Rng;

    fn circle_instance(n: usize) -> TspInstance {
        // Cities on a circle: the optimal tour follows the perimeter.
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (t.cos(), t.sin())
            })
            .collect();
        TspInstance::from_coords("circle", &coords)
    }

    fn optimal_circle_length(n: usize) -> f64 {
        let inst = circle_instance(n);
        let tour: Vec<usize> = (0..n).collect();
        inst.tour_length(&tour)
    }

    #[test]
    fn nn_on_line_is_optimal() {
        let inst =
            TspInstance::from_coords("line", &[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let tour = nearest_neighbor(&inst, 0);
        assert_eq!(tour, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_opt_uncrosses() {
        let inst = circle_instance(8);
        // Start from a deliberately crossed tour.
        let mut tour = vec![0, 4, 1, 5, 2, 6, 3, 7];
        two_opt(&inst, &mut tour);
        let len = inst.tour_length(&tour);
        assert!((len - optimal_circle_length(8)).abs() < 1e-9, "len={len}");
    }

    #[test]
    fn or_opt_relocates() {
        let inst = TspInstance::from_coords(
            "cluster",
            &[
                (0.0, 0.0),
                (1.0, 0.0),
                (2.0, 0.0),
                (10.0, 0.0),
                (11.0, 0.0),
                (2.5, 0.2),
            ],
        );
        // Bad order: city 5 (near the left cluster) stuck between the
        // right-cluster cities.
        let mut tour = vec![0, 1, 2, 3, 5, 4];
        let before = inst.tour_length(&tour);
        or_opt(&inst, &mut tour);
        let after = inst.tour_length(&tour);
        assert!(after < before);
    }

    #[test]
    fn reference_tour_near_optimal_on_circle() {
        for n in [6, 10, 16] {
            let inst = circle_instance(n);
            let (tour, len) = reference_tour(&inst, 4);
            assert!(super::super::is_permutation(&tour, n));
            assert!(
                (len - optimal_circle_length(n)).abs() < 1e-9,
                "n={n}: {len} vs {}",
                optimal_circle_length(n)
            );
        }
    }

    #[test]
    fn reference_beats_or_matches_plain_nn() {
        let mut rng = seeded_rng(5);
        let coords: Vec<(f64, f64)> = (0..20)
            .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let inst = TspInstance::from_coords("rand20", &coords);
        let nn_len = inst.tour_length(&nearest_neighbor(&inst, 0));
        let (_, ref_len) = reference_tour(&inst, 5);
        assert!(ref_len <= nn_len + 1e-9);
    }

    #[test]
    fn two_opt_returns_zero_on_optimal() {
        let inst = circle_instance(6);
        let mut tour: Vec<usize> = (0..6).collect();
        assert_eq!(two_opt(&inst, &mut tour), 0);
    }

    #[test]
    fn small_instances_no_panic() {
        let inst = circle_instance(3);
        let mut tour = vec![0, 1, 2];
        assert_eq!(two_opt(&inst, &mut tour), 0);
        let mut tour_v = vec![0, 1, 2];
        assert_eq!(or_opt(&inst, &mut tour_v), 0);
        let (t, _) = reference_tour(&inst, 10);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn degenerate_instances_get_trivial_tours() {
        // These used to panic (`assert!(n >= 3)` and, for n = 0, a
        // clamp(1, 0) inside); a serving process must survive them.
        let empty = TspInstance::from_coords("empty", &[]);
        assert_eq!(reference_tour(&empty, 4), (vec![], 0.0));
        assert_eq!(reference_tour_shallow(&empty), (vec![], 0.0));

        let one = TspInstance::from_coords("one", &[(1.0, 2.0)]);
        assert_eq!(reference_tour(&one, 4), (vec![0], 0.0));

        let two = TspInstance::from_coords("two", &[(0.0, 0.0), (3.0, 4.0)]);
        let (tour, len) = reference_tour(&two, 4);
        assert_eq!(tour, vec![0, 1]);
        assert!((len - 10.0).abs() < 1e-12); // out and back
        assert_eq!(reference_tour_shallow(&two).0, vec![0, 1]);
    }

    #[test]
    fn try_reference_tour_contract() {
        let inst = circle_instance(6);
        // starts == 0 on a real instance: nothing constructed.
        assert_eq!(try_reference_tour(&inst, 0), None);
        assert_eq!(try_reference_tour(&inst, 3), Some(reference_tour(&inst, 3)));
        // Degenerate instances always yield the trivial tour.
        let two = TspInstance::from_coords("two", &[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(try_reference_tour(&two, 0), Some((vec![0, 1], 2.0)));
    }

    #[test]
    fn nan_distances_never_panic_nn() {
        // A NaN row makes every comparison fail; construction must still
        // produce a permutation instead of indexing with a sentinel.
        let inst = TspInstance::from_coords(
            "nan",
            &[(0.0, 0.0), (f64::NAN, 0.0), (1.0, 0.0), (2.0, 0.0)],
        );
        let tour = nearest_neighbor(&inst, 0);
        assert!(super::super::is_permutation(&tour, 4));
        let (tour, _) = reference_tour_shallow(&inst);
        assert!(super::super::is_permutation(&tour, 4));
    }

    #[test]
    #[should_panic(expected = "complete tour")]
    fn two_opt_rejects_partial_tour() {
        let inst = circle_instance(5);
        let mut tour = vec![0, 1, 2];
        let _ = two_opt(&inst, &mut tour);
    }
}
