//! Replica-level parallelism for batch sampling.
//!
//! All solvers produce a batch of `B` independent replicas (the paper uses
//! `B = 128` solutions per call). Replicas share nothing but the read-only
//! CSR model, so they parallelise embarrassingly across threads with
//! `std::thread::scope`.
//!
//! # Determinism contract
//!
//! Both entry points guarantee **bit-identical output regardless of thread
//! count** (including the sequential fallback): the replica closure must
//! derive all randomness from the replica *index* (seed-derived RNG
//! streams), never from shared mutable state, and results are written into
//! their index slot. [`parallel_map_with`] additionally hands each worker
//! thread a long-lived scratch value so per-replica allocations (solver
//! states, RNGs, buffers) are paid once per *worker*, not once per
//! *replica* — the closure must therefore fully reset the scratch from the
//! index before use.

/// Runs `f(replica_index)` for `count` replicas across the available
/// cores and returns the results in replica order.
///
/// Falls back to a sequential loop when `count <= 1` or only one core is
/// available. `f` must be deterministic per index (seed-derived RNG) so the
/// parallel and sequential paths produce identical output.
///
/// # Examples
///
/// ```
/// use solvers::parallel::parallel_map_indexed;
/// let xs = parallel_map_indexed(8, |i| i * i);
/// assert_eq!(xs, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    parallel_map_with(count, || (), move |(), i| f(i))
}

/// Chunked variant of [`parallel_map_indexed`] with per-worker scratch
/// reuse.
///
/// Each worker thread calls `init()` once, then runs `f(&mut scratch, i)`
/// for every replica index in its contiguous chunk. The scratch lets
/// solvers keep one state/buffer set alive across a whole chunk instead of
/// reallocating per replica. `f` must reset the scratch from the index —
/// outputs stay bit-identical to the sequential path only if no state
/// leaks between indices.
///
/// # Examples
///
/// ```
/// use solvers::parallel::parallel_map_with;
/// // Reuse one scratch buffer per worker.
/// let xs = parallel_map_with(
///     4,
///     || Vec::with_capacity(16),
///     |buf, i| {
///         buf.clear();
///         buf.extend(0..=i);
///         buf.iter().sum::<usize>()
///     },
/// );
/// assert_eq!(xs, vec![0, 1, 3, 6]);
/// ```
pub fn parallel_map_with<T, S, I, F>(count: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Send + Sync,
    F: Fn(&mut S, usize) -> T + Send + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(count.max(1));
    if threads <= 1 || count <= 1 {
        let mut scratch = init();
        return (0..count).map(|i| f(&mut scratch, i)).collect();
    }

    let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let chunk = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let base = t * chunk;
                let mut scratch = init();
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(&mut scratch, base + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|x| x.expect("replica result missing"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let xs = parallel_map_indexed(100, |i| i as u64 * 3);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn runs_every_index_exactly_once() {
        let counter = AtomicUsize::new(0);
        let xs = parallel_map_indexed(64, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(xs.len(), 64);
    }

    #[test]
    fn zero_and_one_replicas() {
        let none: Vec<usize> = parallel_map_indexed(0, |i| i);
        assert!(none.is_empty());
        let one = parallel_map_indexed(1, |i| i + 10);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn matches_sequential_reference() {
        let par = parallel_map_indexed(37, |i| (i as f64).sin());
        let seq: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn scratch_initialised_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let xs = parallel_map_with(
            128,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |scratch, i| {
                *scratch += 1;
                i
            },
        );
        assert_eq!(xs, (0..128).collect::<Vec<_>>());
        // One scratch per worker, workers capped by cores and replica count.
        assert!(inits.load(Ordering::SeqCst) <= threads.min(128));
    }

    #[test]
    fn scratch_reuse_matches_fresh_state_when_reset() {
        // A closure that resets its scratch per index must match the
        // stateless path bit-for-bit.
        let with_scratch = parallel_map_with(50, Vec::new, |buf: &mut Vec<u64>, i| {
            buf.clear();
            buf.extend((0..i as u64).map(|k| k * k));
            buf.iter().sum::<u64>()
        });
        let stateless: Vec<u64> = (0..50)
            .map(|i| (0..i as u64).map(|k| k * k).sum())
            .collect();
        assert_eq!(with_scratch, stateless);
    }
}
