//! Criterion bench for the serving wire layer: the same predict-heavy
//! request mix pushed through the NDJSON codec and through QBIN, in
//! both directions — request decode (the server's hot path), response
//! encode, and a full engine round-trip through the blocking driver.
//!
//! The setup is a correctness gate before any timing: the QBIN and
//! NDJSON renditions of the mix are replayed against identically
//! configured engines and every response must carry **identical f64 bit
//! patterns** — if the binary path changes so much as one mantissa bit,
//! the bench fails rather than timing a wrong answer.

use std::io::Cursor;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::protocol::{bin, serve_connection, Request, Response};
use neural::network::MlpBuilder;
use qross::dataset::Scalers;
use qross::pipeline::{PipelineConfig, TrainedQross};
use qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross::surrogate::{Surrogate, SurrogateState, TrainReport};
use qross::StatisticalFeaturizer;

/// Feature width of [`StatisticalFeaturizer`].
const FEAT_DIM: usize = 24;

/// Requests in the benched mix.
const MIX: usize = 64;

/// Seed-derived serve-ready bundle (identical shape to the serving
/// integration suites: real code paths, no training time).
fn test_model() -> ServeModel {
    let zscore = |m: f64, s: f64| mathkit::stats::ZScore { mean: m, std: s };
    let state = SurrogateState {
        pf_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(1)
            .sigmoid()
            .build(41)
            .to_state(),
        e_net: MlpBuilder::new(FEAT_DIM + 1)
            .dense(24)
            .relu()
            .dense(2)
            .build(42)
            .to_state(),
        scalers: Scalers {
            features: (0..FEAT_DIM)
                .map(|c| zscore(0.2 * c as f64, 1.0 + 0.05 * c as f64))
                .collect(),
            log_a: zscore(0.0, 1.0),
            e_avg: zscore(8.0, 3.0),
            e_std: zscore(1.0, 0.4),
        },
    };
    let surrogate = Surrogate::from_state(state).expect("consistent state");
    ServeModel::Bundle(Arc::new(TrainedQross {
        surrogate,
        featurizer: Box::new(StatisticalFeaturizer::new()),
        train_encodings: Vec::new(),
        test_encodings: Vec::new(),
        dataset_len: 0,
        report: TrainReport::default(),
        config: PipelineConfig::micro(),
    }))
}

/// A predict-heavy mix: single-`a` requests interleaved with small
/// grids, deterministic features, one tenant tag in three.
fn request_mix() -> Vec<Request> {
    (0..MIX)
        .map(|k| {
            let features: Vec<f64> = (0..FEAT_DIM)
                .map(|c| ((k * 13 + c * 7) % 29) as f64 / 7.0 - 2.0)
                .collect();
            let tenant = (k % 3 == 0).then(|| format!("team-{}", k % 2));
            let (a, a_values) = if k % 4 == 0 {
                (None, Some(vec![0.25, 1.0, 4.0]))
            } else {
                (Some(0.1 + (k % 11) as f64 * 0.45), None)
            };
            Request {
                id: Some(k as u64),
                op: Some("predict".to_string()),
                features: Some(features),
                a,
                a_values,
                tenant,
                ..Default::default()
            }
        })
        .collect()
}

fn ndjson_request_lines(requests: &[Request]) -> Vec<String> {
    requests
        .iter()
        .map(|r| serde_json::to_string(r).expect("serializable request"))
        .collect()
}

fn qbin_request_stream(requests: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in requests {
        let a_values = match (&r.a_values, r.a) {
            (Some(grid), _) => grid.clone(),
            (None, Some(a)) => vec![a],
            (None, None) => Vec::new(),
        };
        bin::encode_predict(
            &mut out,
            r.id,
            r.tenant.as_deref().unwrap_or(""),
            &a_values,
            r.features.as_deref().unwrap_or(&[]),
        );
    }
    out
}

/// Sequential replay through the blocking driver (1 worker, no cache —
/// deterministic, so response bytes are comparable across formats).
fn replay(input: &[u8]) -> Vec<u8> {
    let engine = ServeEngine::new(
        test_model(),
        ServeConfig {
            workers: 1,
            max_batch_rows: 1,
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let mut out = Vec::new();
    serve_connection(&engine, Cursor::new(input.to_vec()), &mut out).expect("replay session");
    out
}

/// Bit-level summary of one response's payload.
type ResponseBits = (Option<u64>, bool, Vec<(u64, u64, u64, u64)>);

fn bits_of(response: &Response) -> ResponseBits {
    (
        response.id,
        response.ok,
        response
            .predictions
            .iter()
            .flatten()
            .map(|p| (p.a.to_bits(), p.pf_bits, p.e_avg_bits, p.e_std_bits))
            .collect(),
    )
}

fn bench_protocol_codec(c: &mut Criterion) {
    let requests = request_mix();
    let json_lines = ndjson_request_lines(&requests);
    let ndjson_stream: Vec<u8> = json_lines
        .iter()
        .flat_map(|l| l.bytes().chain(std::iter::once(b'\n')))
        .collect();
    let qbin_stream = qbin_request_stream(&requests);

    // --- correctness gate: identical f64 bits over both wires --------
    let ndjson_replay = replay(&ndjson_stream);
    let qbin_replay = replay(&qbin_stream);
    let from_ndjson: Vec<_> = String::from_utf8(ndjson_replay.clone())
        .expect("utf-8 responses")
        .lines()
        .map(|l| bits_of(&serde_json::from_str(l).expect("response line")))
        .collect();
    let from_qbin: Vec<_> = bin::decode_response_stream(&qbin_replay)
        .expect("clean response frames")
        .iter()
        .map(bits_of)
        .collect();
    assert_eq!(from_ndjson.len(), MIX);
    assert_eq!(
        from_ndjson, from_qbin,
        "QBIN and NDJSON responses disagree bit-for-bit"
    );
    let responses: Vec<Response> = String::from_utf8(ndjson_replay)
        .expect("utf-8 responses")
        .lines()
        .map(|l| serde_json::from_str(l).expect("response line"))
        .collect();
    println!(
        "request mix: {} requests, ndjson {} bytes, qbin {} bytes",
        MIX,
        ndjson_stream.len(),
        qbin_stream.len()
    );

    // --- request decode: the server's per-request hot path -----------
    let mut group = c.benchmark_group("protocol_codec_decode_requests");
    group.bench_function("ndjson", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for line in &json_lines {
                let request: Request = serde_json::from_str(line).expect("request line");
                rows += request.features.as_deref().map_or(0, <[f64]>::len);
            }
            rows
        })
    });
    group.bench_function("qbin", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            let mut codec = bin::FrameCodec::new();
            codec.feed(&qbin_stream);
            while let Some(frame) = codec.next_frame() {
                let frame = frame.expect("clean frame");
                match bin::decode_request(&frame).expect("well-formed request") {
                    bin::BinRequest::Predict { features, .. } => rows += features.len(),
                    _ => unreachable!("predict-only mix"),
                }
            }
            rows
        })
    });
    group.finish();

    // --- response encode: the server's per-response hot path ---------
    let mut group = c.benchmark_group("protocol_codec_encode_responses");
    group.bench_function("ndjson", |b| {
        let mut scratch = String::new();
        let mut out: Vec<u8> = Vec::new();
        b.iter(|| {
            out.clear();
            for response in &responses {
                scratch.clear();
                serde_json::to_string_into(response, &mut scratch).expect("serializable");
                out.extend_from_slice(scratch.as_bytes());
                out.push(b'\n');
            }
            out.len()
        })
    });
    group.bench_function("qbin", |b| {
        let mut out: Vec<u8> = Vec::new();
        b.iter(|| {
            out.clear();
            for response in &responses {
                bin::encode_response(&mut out, response);
            }
            out.len()
        })
    });
    group.finish();

    // --- decode + encode combined: the acceptance comparison ---------
    let mut group = c.benchmark_group("protocol_codec_decode_encode");
    group.bench_function("ndjson", |b| {
        let mut scratch = String::new();
        let mut out: Vec<u8> = Vec::new();
        b.iter(|| {
            out.clear();
            for line in &json_lines {
                let _request: Request = serde_json::from_str(line).expect("request line");
            }
            for response in &responses {
                scratch.clear();
                serde_json::to_string_into(response, &mut scratch).expect("serializable");
                out.extend_from_slice(scratch.as_bytes());
                out.push(b'\n');
            }
            out.len()
        })
    });
    group.bench_function("qbin", |b| {
        let mut out: Vec<u8> = Vec::new();
        b.iter(|| {
            out.clear();
            let mut codec = bin::FrameCodec::new();
            codec.feed(&qbin_stream);
            while let Some(frame) = codec.next_frame() {
                let frame = frame.expect("clean frame");
                bin::decode_request(&frame).expect("well-formed request");
            }
            for response in &responses {
                bin::encode_response(&mut out, response);
            }
            out.len()
        })
    });
    group.finish();

    // --- end-to-end: full engine round-trip over each wire -----------
    let mut group = c.benchmark_group("protocol_codec_roundtrip");
    group.sample_size(10);
    group.bench_function("ndjson", |b| b.iter(|| replay(&ndjson_stream).len()));
    group.bench_function("qbin", |b| b.iter(|| replay(&qbin_stream).len()));
    group.finish();
}

criterion_group!(benches, bench_protocol_codec);
criterion_main!(benches);
