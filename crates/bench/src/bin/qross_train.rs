//! `qross-train` — the offline half of the train-once / serve-many loop.
//!
//! Generates a problem corpus (TSP through the staged pipeline; every
//! other registered family through the problem-generic trainer), collects
//! solver data, trains the surrogate, and writes two artifacts:
//!
//! * the **model** — a `.qross` bundle (TSP) or surrogate snapshot
//!   (other families), binary by default, JSON with `--format json`;
//! * the **predictions manifest** — every grid prediction (and, for TSP,
//!   every planned strategy proposal) as exact `f64` bit patterns.
//!
//! `qross-predict` reloads the model in a fresh process and regenerates
//! the manifest; a byte-for-byte diff of the two files proves the
//! serve-side model is bit-identical to the trained one.
//!
//! The whole CLI and train/persist flow lives in
//! [`bench::serve::run_train`], shared with `qross-predict`'s parser —
//! this binary is only the entry point.

fn main() {
    bench::serve::run_train();
}
