//! Scaling bench for the parallel collection & evaluation engine.
//!
//! Measures the two fan-out layers introduced for the pipeline:
//!
//! * `collect_w{N}` — the pipeline's solver-data collection stage
//!   ([`qross::pipeline::collect_dataset`]) over a quick-scale instance
//!   set at an explicit worker count. `w1` is the fully sequential
//!   baseline (nested solver fan-out included); on a machine with ≥ 4
//!   cores `w4` should come in at least ~2× faster.
//! * `eval_grid_w{N}` — the `(strategy × instance)` evaluation grid
//!   ([`qross::eval::run_strategy_grid`]) at the same worker counts.
//!
//! Before timing anything, the harness asserts the determinism contract:
//! 1-worker and 4-worker runs must produce byte-identical datasets and
//! strategy runs — the speedup is scheduling-only.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::experiments::micro_encoding;
use problems::TspEncoding;
use qross::collect::CollectConfig;
use qross::eval::run_strategy_grid;
use qross::pipeline::collect_dataset;
use qross::strategy::{ProposalStrategy, TunerStrategy};
use solvers::sa::{SaConfig, SimulatedAnnealer};
use tuners::RandomSearch;

const WORKER_COUNTS: [usize; 2] = [1, 4];

fn instances() -> Vec<TspEncoding> {
    (0..8).map(|k| micro_encoding(9, 100 + k)).collect()
}

fn solver() -> SimulatedAnnealer {
    SimulatedAnnealer::new(SaConfig {
        sweeps: 64,
        ..Default::default()
    })
}

fn featurize(enc: &TspEncoding) -> Vec<f64> {
    vec![
        enc.num_cities() as f64,
        enc.qubo_instance().num_cities() as f64,
    ]
}

fn collect_cfg() -> CollectConfig {
    CollectConfig {
        batch: 16,
        sweep_points: 8,
        ..Default::default()
    }
}

fn bench_collect(c: &mut Criterion) {
    let encodings = instances();
    let s = solver();
    let cfg = collect_cfg();

    // Determinism gate: identical datasets at every worker count.
    let reference = collect_dataset(&encodings, featurize, 2, &cfg, &s, 7, 1);
    for workers in WORKER_COUNTS {
        let ds = collect_dataset(&encodings, featurize, 2, &cfg, &s, 7, workers);
        assert_eq!(ds, reference, "collection diverged at {workers} workers");
    }

    let mut group = c.benchmark_group("pipeline_scaling");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_function(&format!("collect_w{workers}"), |b| {
            b.iter(|| collect_dataset(&encodings, featurize, 2, &cfg, &s, 7, workers))
        });
    }
    group.finish();
}

fn bench_eval_grid(c: &mut Criterion) {
    let encodings = instances();
    let s = solver();
    let make = |strat: usize, _idx: usize, iseed: u64| -> Box<dyn ProposalStrategy> {
        Box::new(TunerStrategy::new(
            RandomSearch::new(0.05, 20.0, iseed.wrapping_add(strat as u64)),
            1e6,
        ))
    };
    let run = |workers: usize| run_strategy_grid(&encodings, &s, 3, make, 6, 16, 11, workers);

    // Determinism gate: identical strategy runs at every worker count.
    let reference = run(1);
    for workers in WORKER_COUNTS {
        assert_eq!(
            run(workers),
            reference,
            "eval grid diverged at {workers} workers"
        );
    }

    let mut group = c.benchmark_group("pipeline_scaling");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_function(&format!("eval_grid_w{workers}"), |b| {
            b.iter(|| run(workers))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collect, bench_eval_grid);
criterion_main!(benches);
