//! `qross-serve` — the serving daemon of the train-once / serve-many
//! loop: load a model once, answer NDJSON prediction requests forever.
//!
//! Two transports, one protocol (`bench::protocol`):
//!
//! * **stdio** (default): requests on stdin, responses on stdout, exit at
//!   EOF. Composable — `qross-serve --model m.qross < requests.ndjson`.
//! * **TCP** (`--listen ADDR`): accept connections, one NDJSON session
//!   per connection, each on its own thread over the *same* shared
//!   engine — concurrent clients' requests micro-batch together.
//!
//! The model may be a full `.qross` bundle (TSP: enables the `tsp`
//! upload op) or a bare surrogate snapshot (MVC/QAP: `predict` only),
//! binary or JSON, sniffed by magic bytes.
//!
//! All diagnostics go to stderr; stdout carries protocol lines only.

use std::sync::Arc;

use bench::protocol::{serve_connection, serve_connection_aborting};
use bench::serve::usage_exit;
use qross::pipeline::TrainedQross;
use qross::serve::{ServeConfig, ServeEngine, ServeModel};
use qross::surrogate::{Surrogate, SurrogateState};
use qross_store::Artifact;

const USAGE: &str = "qross-serve --model PATH [--listen ADDR] [--workers N] \
                     [--batch ROWS] [--queue ROWS] [--cache ENTRIES]";

struct ServeCli {
    model: String,
    listen: Option<String>,
    config: ServeConfig,
}

fn parse_cli() -> ServeCli {
    let mut cli = ServeCli {
        model: String::new(),
        listen: None,
        config: ServeConfig::default(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        if flag == "--help" || flag == "-h" {
            usage_exit(USAGE, "");
        }
        if !matches!(
            flag.as_str(),
            "--model" | "--listen" | "--workers" | "--batch" | "--queue" | "--cache"
        ) {
            usage_exit(USAGE, &format!("unknown argument `{flag}`"));
        }
        i += 1;
        let Some(value) = argv
            .get(i)
            .filter(|v| !v.is_empty() && !v.starts_with("--"))
        else {
            usage_exit(USAGE, &format!("flag `{flag}` needs a value"));
        };
        let parse_count = |what: &str, v: &str| -> usize {
            v.parse::<usize>()
                .unwrap_or_else(|_| usage_exit(USAGE, &format!("bad {what} value `{v}`")))
        };
        match flag.as_str() {
            "--model" => cli.model = value.clone(),
            "--listen" => cli.listen = Some(value.clone()),
            "--workers" => cli.config.workers = parse_count("--workers", value),
            "--batch" => {
                cli.config.max_batch_rows = parse_count("--batch", value).max(1);
            }
            "--queue" => cli.config.queue_capacity = parse_count("--queue", value).max(1),
            "--cache" => cli.config.cache_capacity = parse_count("--cache", value),
            _ => unreachable!("flag already screened"),
        }
        i += 1;
    }
    if cli.model.is_empty() {
        usage_exit(USAGE, "--model is required");
    }
    cli
}

/// Loads a bundle if the artifact is one, otherwise a bare surrogate
/// snapshot — mirroring what `qross-predict` accepts.
fn load_model(path: &str) -> Result<ServeModel, String> {
    match TrainedQross::load(path) {
        Ok(trained) => Ok(ServeModel::Bundle(Arc::new(trained))),
        Err(bundle_err) => {
            if let Ok(state) = SurrogateState::load_auto(path) {
                let surrogate = Surrogate::from_state(state)
                    .map_err(|e| format!("restoring surrogate failed: {e}"))?;
                return Ok(ServeModel::Surrogate(Arc::new(surrogate)));
            }
            Err(format!("loading model failed: {bundle_err}"))
        }
    }
}

fn main() {
    let cli = parse_cli();
    let model = load_model(&cli.model).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let kind = if model.trained().is_some() {
        "bundle"
    } else {
        "surrogate"
    };
    let feature_dim = model.feature_dim();
    let engine = ServeEngine::new(model, cli.config);
    eprintln!(
        "qross-serve: loaded {kind} from {} ({feature_dim} features); {engine:?}",
        cli.model
    );

    match cli.listen {
        None => {
            // StdinLock is !Send and the staging thread owns the reader,
            // so buffer the Send-able handle instead of locking.
            let stdin = std::io::BufReader::new(std::io::stdin());
            let stdout = std::io::stdout();
            if let Err(e) = serve_connection(&engine, stdin, stdout.lock()) {
                eprintln!("error: stdio session failed: {e}");
                std::process::exit(1);
            }
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
                eprintln!("error: cannot listen on {addr}: {e}");
                std::process::exit(1);
            });
            eprintln!("qross-serve: listening on {addr}");
            std::thread::scope(|scope| {
                for stream in listener.incoming() {
                    let stream = match stream {
                        Ok(stream) => stream,
                        Err(e) => {
                            eprintln!("warning: accept failed: {e}");
                            continue;
                        }
                    };
                    let peer = stream
                        .peer_addr()
                        .map(|p| p.to_string())
                        .unwrap_or_else(|_| "<unknown>".to_string());
                    let engine = &engine;
                    scope.spawn(move || {
                        eprintln!("qross-serve: {peer} connected");
                        let reader = match stream.try_clone() {
                            Ok(clone) => std::io::BufReader::new(clone),
                            Err(e) => {
                                eprintln!("warning: {peer}: clone failed: {e}");
                                return;
                            }
                        };
                        // If the client stops reading responses, the write
                        // side errors first — shut the socket down so the
                        // blocked reader exits too instead of leaking this
                        // thread until the client's next line.
                        let abort = {
                            let stream = stream.try_clone();
                            move || {
                                if let Ok(s) = &stream {
                                    let _ = s.shutdown(std::net::Shutdown::Both);
                                }
                            }
                        };
                        let writer = std::io::BufWriter::new(stream);
                        match serve_connection_aborting(engine, reader, writer, abort) {
                            Ok(()) => eprintln!("qross-serve: {peer} done"),
                            Err(e) => eprintln!("warning: {peer}: session failed: {e}"),
                        }
                    });
                }
            });
        }
    }
    let stats = engine.stats();
    eprintln!(
        "qross-serve: {} requests ({} rows, {} cache hits, {} batches, {} rejected)",
        stats.requests, stats.rows, stats.cache_hits, stats.batches, stats.rejected
    );
}
