//! # neural — from-scratch dense neural networks
//!
//! The QROSS surrogate is "a carefully designed neural network" (§1): a
//! feature vector concatenated with the relaxation parameter, pushed
//! through fully-connected layers, trained with BCE loss for the
//! probability-of-feasibility head and Huber loss for the energy-statistics
//! head (appendix G). There is no mature Rust deep-learning dependency in
//! the allowed set, so this crate implements the needed 5%:
//!
//! * [`layers`] — dense (affine) layers and activations with exact
//!   backpropagation;
//! * [`loss`] — MSE, Huber and binary cross-entropy losses;
//! * [`optimizer`] — SGD (with momentum) and Adam;
//! * [`network`] — [`Mlp`]: a sequential stack with a builder, forward /
//!   backward passes and weight (de)serialisation;
//! * [`trainer`] — mini-batch training loop with shuffling, validation
//!   tracking and NaN guards.
//!
//! Everything operates on [`mathkit::Matrix`] with rows = samples.
//!
//! # Examples
//!
//! Train a tiny network on XOR:
//!
//! ```
//! use mathkit::Matrix;
//! use neural::network::MlpBuilder;
//! use neural::trainer::{train, TrainConfig};
//! use neural::loss::Loss;
//!
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
//! let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
//! let mut net = MlpBuilder::new(2).dense(8).tanh().dense(1).sigmoid().build(7);
//! let cfg = TrainConfig { epochs: 2000, batch_size: 4, ..Default::default() };
//! let history = train(&mut net, &x, &y, &Loss::Mse, &cfg);
//! assert!(*history.train_loss.last().unwrap() < 0.05);
//! ```

pub mod layers;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod trainer;

pub use network::{Mlp, MlpBuilder};

/// Errors from network construction and persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeuralError {
    /// Input dimensionality did not match the first layer.
    ShapeMismatch {
        /// expected input width
        expected: usize,
        /// provided input width
        found: usize,
    },
    /// Weight deserialisation failed (corrupt or incompatible data).
    InvalidModel {
        /// explanation
        message: String,
    },
}

impl std::fmt::Display for NeuralError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NeuralError::ShapeMismatch { expected, found } => {
                write!(
                    f,
                    "input width {found} does not match network input {expected}"
                )
            }
            NeuralError::InvalidModel { message } => write!(f, "invalid model: {message}"),
        }
    }
}

impl std::error::Error for NeuralError {}
