//! Criterion bench for the Fig.-1 data path: one (instance, A) observation
//! and a whole collection profile at micro scale.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::experiments::{micro_encoding, micro_profile};
use qross::collect::observe;
use solvers::sa::{SaConfig, SimulatedAnnealer};

fn bench_observe(c: &mut Criterion) {
    let encoding = micro_encoding(7, 3);
    let solver = SimulatedAnnealer::new(SaConfig {
        sweeps: 32,
        ..Default::default()
    });
    c.bench_function("fig1_observe_one_point", |b| {
        b.iter(|| observe(&encoding, &solver, 1.0, 8, 5))
    });
}

fn bench_profile(c: &mut Criterion) {
    let encoding = micro_encoding(7, 3);
    c.bench_function("fig1_collect_profile", |b| {
        b.iter(|| micro_profile(&encoding, 9))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_observe, bench_profile
}
criterion_main!(benches);
