//! End-to-end pipeline integration: train a surrogate on real solver data
//! at micro scale and check the paper's qualitative claims hold.

use qross_repro::problems::tsp::heuristics;
use qross_repro::qross::collect::observe;
use qross_repro::qross::eval::{gap_curve, run_strategy};
use qross_repro::qross::pipeline::{Pipeline, PipelineConfig, A_DOMAIN};
use qross_repro::qross::strategy::{mfs, pbs, ComposedStrategy, TunerStrategy};
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};
use qross_repro::tuners::RandomSearch;

fn solver() -> SimulatedAnnealer {
    SimulatedAnnealer::new(SaConfig {
        sweeps: 64,
        ..Default::default()
    })
}

/// One shared pipeline run for the whole test binary — training is the
/// expensive step and is identical (deterministic) for every test.
fn trained() -> &'static qross_repro::qross::pipeline::TrainedQross {
    use std::sync::OnceLock;
    static TRAINED: OnceLock<qross_repro::qross::pipeline::TrainedQross> = OnceLock::new();
    TRAINED.get_or_init(|| {
        Pipeline::new(PipelineConfig::micro())
            .try_run(&solver())
            .expect("micro pipeline trains")
    })
}

/// The paper's claim for MFS: the first, surrogate-only proposal is
/// already a *good* parameter. Measured operationally: the solution found
/// at the MFS-proposed `A` must (a) be feasible and (b) come close to the
/// best solution obtainable from a dense 8-point `A` grid costing 8× the
/// solver budget.
#[test]
fn mfs_proposal_is_competitive() {
    let trained = trained();
    let s = solver();
    let batch = 24;
    let mut competitive = 0;
    let total = trained.test_encodings.len();
    for (i, enc) in trained.test_encodings.iter().enumerate() {
        let features = trained.featurizer.extract(enc.qubo_instance());
        let m = mfs::propose(&trained.surrogate, &features, A_DOMAIN, batch).expect("MFS proposes");
        // Proposals must not be stuck at the search-domain edges (the
        // extrapolation failure mode guarded by the trained-support clamp).
        assert!(
            m.x > A_DOMAIN.0 * 1.01 && m.x < A_DOMAIN.1 * 0.99,
            "edge proposal {}",
            m.x
        );
        let at_mfs = observe(enc, &s, m.x, batch, 11 + i as u64);
        // Dense grid reference: the best fitness reachable with 8 calls.
        let mut grid_best = f64::INFINITY;
        for k in 0..8 {
            let a = 0.2 * (20.0f64 / 0.2).powf(k as f64 / 7.0) / 4.0; // 0.05 … 5
            let obs = observe(enc, &s, a, batch, 900 + (i * 10 + k) as u64);
            if let Some(f) = obs.best_fitness {
                grid_best = grid_best.min(f);
            }
        }
        if let Some(f) = at_mfs.best_fitness {
            if f <= grid_best * 1.1 + 1e-9 {
                competitive += 1;
            }
        }
    }
    assert!(
        competitive * 2 > total,
        "only {competitive}/{total} MFS proposals were competitive with an 8-call grid"
    );
}

/// PBS proposals must order correctly (higher target Pf → larger A) and
/// produce measured feasibility in the right neighbourhood.
#[test]
fn pbs_targets_order_and_hit() {
    let trained = trained();
    let s = solver();
    let enc = &trained.test_encodings[0];
    let features = trained.featurizer.extract(enc.qubo_instance());
    let a20 = pbs::propose(&trained.surrogate, &features, A_DOMAIN, 0.2).unwrap();
    let a80 = pbs::propose(&trained.surrogate, &features, A_DOMAIN, 0.8).unwrap();
    assert!(
        a80 > a20,
        "PBS ordering violated: A(0.8)={a80} <= A(0.2)={a20}"
    );
    let pf80 = observe(enc, &s, a80, 48, 13).pf;
    let pf20 = observe(enc, &s, a20, 48, 13).pf;
    assert!(
        pf80 > pf20,
        "measured Pf ordering violated: {pf80} <= {pf20}"
    );
}

/// Fig.-3 shape at micro scale: the composed QROSS strategy's first-trial
/// gap (averaged over test instances) beats random search's first trial.
#[test]
fn qross_first_trial_beats_random() {
    let trained = trained();
    let s = solver();
    let batch = 12;
    let trials = 5;
    let mut qross_first = Vec::new();
    let mut random_first = Vec::new();
    for (idx, enc) in trained.test_encodings.iter().enumerate() {
        let inst = enc.fitness_instance();
        let (_, reference) = heuristics::reference_tour(inst, 6);
        let nn = inst.tour_length(&heuristics::nearest_neighbor(inst, 0));
        let fallback = nn.max(reference) * 1.5;
        let features = trained.featurizer.extract(enc.qubo_instance());

        let mut qross =
            ComposedStrategy::new(&trained.surrogate, features, A_DOMAIN, batch, idx as u64);
        let run = run_strategy(enc, &s, &mut qross, trials, batch, 100 + idx as u64);
        qross_first.push(gap_curve(&run, reference, fallback)[0]);

        let mut random = TunerStrategy::new(
            RandomSearch::new(A_DOMAIN.0, A_DOMAIN.1, idx as u64),
            fallback,
        );
        let run = run_strategy(enc, &s, &mut random, trials, batch, 100 + idx as u64);
        random_first.push(gap_curve(&run, reference, fallback)[0]);
    }
    let qross_mean: f64 = qross_first.iter().sum::<f64>() / qross_first.len() as f64;
    let random_mean: f64 = random_first.iter().sum::<f64>() / random_first.len() as f64;
    assert!(
        qross_mean < random_mean,
        "QROSS first-trial mean gap {qross_mean:.4} !< random {random_mean:.4}"
    );
}

/// Gap curves never increase (best-so-far semantics) for any strategy.
#[test]
fn gap_curves_monotone_for_all_strategies() {
    let trained = trained();
    let s = solver();
    let enc = &trained.test_encodings[1];
    let inst = enc.fitness_instance();
    let (_, reference) = heuristics::reference_tour(inst, 6);
    let fallback = reference * 3.0;
    let features = trained.featurizer.extract(enc.qubo_instance());
    let mut strategy = ComposedStrategy::new(&trained.surrogate, features, A_DOMAIN, 12, 5);
    let run = run_strategy(enc, &s, &mut strategy, 8, 12, 55);
    let curve = gap_curve(&run, reference, fallback);
    for w in curve.windows(2) {
        assert!(w[1] <= w[0] + 1e-12, "curve rose: {curve:?}");
    }
}

/// Surrogate persistence integrates with the strategies: a reloaded
/// surrogate proposes the same parameters.
#[test]
fn persisted_surrogate_reproduces_proposals() {
    let trained = trained();
    let enc = &trained.test_encodings[0];
    let features = trained.featurizer.extract(enc.qubo_instance());
    let a_before = mfs::propose(&trained.surrogate, &features, A_DOMAIN, 12)
        .unwrap()
        .x;
    let json = trained.surrogate.to_json().expect("serialises");
    let reloaded = qross_repro::qross::Surrogate::from_json(&json).unwrap();
    let a_after = mfs::propose(&reloaded, &features, A_DOMAIN, 12).unwrap().x;
    assert!((a_before - a_after).abs() < 1e-12);
}
