//! Regenerates paper Fig. 3: normalised optimality gap vs number of
//! trials for QROSS / TPE / BO / Random on the synthetic test set
//! (Digital Annealer).

use bench::experiments::fig3;
use bench::{render_comparison, run_experiment};

fn main() {
    run_experiment("fig3", fig3, |result| {
        println!(
            "Fig. 3 — optimality gap vs trials ({} instances, solver {})",
            result.instances, result.solver
        );
        render_comparison(result);
    });
}
