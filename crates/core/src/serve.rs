//! Concurrent batched serving engine — the serve-many half of the
//! train-once / serve-many split, as an embeddable subsystem.
//!
//! QROSS's value proposition is amortising one trained surrogate over many
//! unseen instances (paper §4: the offline strategies propose penalty
//! parameters from a single cross-instance model). [`ServeEngine`] turns a
//! trained model into a long-lived service component:
//!
//! * **Lock-free hot path** — the immutable model ([`ServeModel`], usually
//!   an `Arc<TrainedQross>`) is shared across worker threads; inference
//!   runs [`neural::network::Mlp::infer`], which takes `&self` and writes
//!   no caches, so prediction itself acquires no lock. The only locks are
//!   around the *queue* and the *cache*, both held for pointer shuffling,
//!   never across a forward pass.
//! * **Micro-batching** — concurrent requests queue as jobs; a worker
//!   drains several jobs at once, stacks their feature rows into one
//!   matrix and answers them with a **single forward pass per head**
//!   ([`crate::Surrogate::predict_many`]). Because every matrix row is
//!   accumulated independently in the same operation order as a 1-row
//!   forward, batching is **bit-invisible**: responses are exactly the
//!   f64s a sequential per-request `predict` would produce, whatever the
//!   batch boundaries happen to be.
//! * **Bounded everything** — the job queue rejects with
//!   [`QrossError::Overloaded`] once `queue_capacity` prediction rows are
//!   pending (never unbounded growth, never OOM), and the prediction
//!   cache is a fixed-capacity LRU keyed on the exact *bit patterns* of
//!   `(features, A)` (two queries hit the same entry iff they are
//!   bit-identical, so a cache hit can never change an answer).
//!
//! The NDJSON wire protocol (stdin/stdout and TCP) lives in the `bench`
//! crate (`bench::protocol`, the `qross-serve` binary); this module is the
//! transport-agnostic core.
//!
//! # Examples
//!
//! ```no_run
//! use std::sync::Arc;
//! use qross::pipeline::TrainedQross;
//! use qross::serve::{ServeConfig, ServeEngine, ServeModel};
//!
//! let trained = TrainedQross::load("results/model-tsp.qross")?;
//! let engine = ServeEngine::new(
//!     ServeModel::Bundle(Arc::new(trained)),
//!     ServeConfig::default(),
//! );
//! let features = vec![0.0; engine.feature_dim()];
//! let p = engine.predict(&features, 1.0)?;
//! println!("Pf = {}", p.pf);
//! # Ok::<(), qross::QrossError>(())
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::pipeline::TrainedQross;
use crate::surrogate::{Surrogate, SurrogatePrediction};
use crate::QrossError;

/// The immutable model a [`ServeEngine`] serves.
///
/// Both variants are shared via `Arc`: the engine's worker threads and any
/// number of protocol front-ends read the same allocation, and nothing in
/// the serving path ever needs `&mut` access to it.
#[derive(Debug, Clone)]
pub enum ServeModel {
    /// A full `.qross` bundle — surrogate plus featurizer plus pipeline
    /// config. Required for instance-level requests (featurise a TSP
    /// upload, build proposal strategies).
    Bundle(Arc<TrainedQross>),
    /// A bare surrogate (e.g. an MVC/QAP snapshot). Serves raw
    /// feature-vector queries only.
    Surrogate(Arc<Surrogate>),
}

impl ServeModel {
    /// The surrogate predictions are served from.
    pub fn surrogate(&self) -> &Surrogate {
        match self {
            ServeModel::Bundle(t) => &t.surrogate,
            ServeModel::Surrogate(s) => s,
        }
    }

    /// The full bundle, when this model has one.
    pub fn trained(&self) -> Option<&Arc<TrainedQross>> {
        match self {
            ServeModel::Bundle(t) => Some(t),
            ServeModel::Surrogate(_) => None,
        }
    }

    /// Feature width every request must supply (the surrogate's input
    /// width minus the relaxation-parameter column).
    pub fn feature_dim(&self) -> usize {
        self.surrogate().scalers().input_dim() - 1
    }
}

/// Serving-engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// worker threads: `0` = one per core, `n` = exactly `n`
    pub workers: usize,
    /// soft cap on prediction rows stacked into one forward pass — a
    /// worker stops draining the queue once a batch reaches this many
    /// rows (a single over-large job still runs whole)
    pub max_batch_rows: usize,
    /// bound on *pending* prediction rows across all queued jobs; beyond
    /// it, [`ServeEngine::submit`] rejects with [`QrossError::Overloaded`]
    pub queue_capacity: usize,
    /// LRU prediction-cache capacity in entries; `0` disables caching
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            max_batch_rows: 64,
            queue_capacity: 4096,
            cache_capacity: 4096,
        }
    }
}

/// Monotonic serving counters (a snapshot of [`ServeEngine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// requests accepted (including fully-cached fast-path responses)
    pub requests: usize,
    /// prediction rows answered
    pub rows: usize,
    /// rows answered from the cache
    pub cache_hits: usize,
    /// forward-pass batches executed by workers
    pub batches: usize,
    /// requests rejected with [`QrossError::Overloaded`]
    pub rejected: usize,
}

#[derive(Debug, Default)]
struct StatCounters {
    requests: AtomicU64,
    rows: AtomicU64,
    cache_hits: AtomicU64,
    batches: AtomicU64,
    rejected: AtomicU64,
}

impl StatCounters {
    fn snapshot(&self) -> ServeStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed) as usize;
        ServeStats {
            requests: get(&self.requests),
            rows: get(&self.rows),
            cache_hits: get(&self.cache_hits),
            batches: get(&self.batches),
            rejected: get(&self.rejected),
        }
    }
}

// ---------------------------------------------------------------------------
// LRU prediction cache
// ---------------------------------------------------------------------------

/// Cache key: the exact IEEE-754 bit patterns of the feature vector
/// followed by the relaxation parameter. Bit-pattern keying makes the
/// cache safe for a bit-exactness contract — `0.1 + 0.2` and `0.3` are
/// *different* keys, and NaN payloads (which compare unequal as f64) still
/// key consistently.
type CacheKey = Box<[u64]>;

fn cache_key(features: &[f64], a: f64) -> CacheKey {
    features
        .iter()
        .map(|v| v.to_bits())
        .chain(std::iter::once(a.to_bits()))
        .collect()
}

const NIL: usize = usize::MAX;

struct CacheEntry {
    key: CacheKey,
    value: SurrogatePrediction,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map: O(1) get/insert via a slab-backed doubly linked
/// recency list. Capacity 0 disables it (get misses, insert drops).
struct LruCache {
    capacity: usize,
    map: HashMap<CacheKey, usize>,
    slab: Vec<CacheEntry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }

    /// Unlinks `idx` from the recency list (leaves slab slot intact).
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Links `idx` at the most-recently-used end.
    fn link_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slab[h].prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: &[u64]) -> Option<SurrogatePrediction> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.link_front(idx);
        }
        Some(self.slab[idx].value)
    }

    fn insert(&mut self, key: CacheKey, value: SurrogatePrediction) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            // Concurrent workers may compute the same key; the values are
            // bit-identical by the batching contract, so just refresh.
            self.slab[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.link_front(idx);
            }
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::take(&mut self.slab[victim].key);
            self.map.remove(&old_key);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = CacheEntry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(CacheEntry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.link_front(idx);
    }
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

/// One queued request: a feature vector evaluated at one or more `A`
/// values. `results[k]` is pre-filled for cache hits; workers compute the
/// `None` slots.
struct Job {
    features: Arc<Vec<f64>>,
    a_values: Vec<f64>,
    results: Vec<Option<SurrogatePrediction>>,
    tx: mpsc::Sender<Result<Vec<SurrogatePrediction>, QrossError>>,
}

impl Job {
    fn pending_rows(&self) -> usize {
        self.results.iter().filter(|r| r.is_none()).count()
    }

    fn finish(self) {
        let out: Vec<SurrogatePrediction> = self
            .results
            .into_iter()
            .map(|r| r.expect("all slots computed"))
            .collect();
        // A dropped receiver just means the client went away; ignore.
        let _ = self.tx.send(Ok(out));
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    pending_rows: usize,
    shutdown: bool,
}

struct Shared {
    model: ServeModel,
    config: ServeConfig,
    queue: Mutex<Queue>,
    work_ready: Condvar,
    cache: Mutex<LruCache>,
    stats: StatCounters,
}

/// Locks a mutex, recovering from poisoning: a panicking thread must not
/// take the whole serving engine down with it (the protected state is
/// only ever mutated in small, invariant-preserving steps).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    /// Validates and enqueues one request; returns the response channel.
    ///
    /// Fully-cached requests are answered inline without touching the
    /// queue (the fast path a warm serving process mostly runs).
    fn submit(
        self: &Arc<Self>,
        features: Vec<f64>,
        a_values: Vec<f64>,
    ) -> Result<PendingPrediction, QrossError> {
        let expect = self.model.feature_dim();
        if features.len() != expect {
            return Err(QrossError::BadRequest {
                message: format!("expected {expect} features, got {}", features.len()),
            });
        }
        if let Some(bad) = features.iter().find(|v| !v.is_finite()) {
            return Err(QrossError::BadRequest {
                message: format!("non-finite feature value {bad}"),
            });
        }
        if let Some(&bad) = a_values.iter().find(|a| !a.is_finite() || **a <= 0.0) {
            return Err(QrossError::BadRequest {
                message: format!("relaxation parameter must be finite and positive, got {bad}"),
            });
        }
        let (tx, rx) = mpsc::channel();
        // Accepted-work counters are bumped only once a request is
        // actually admitted (inline or enqueued): a rejected request must
        // show up in `rejected`, never in `requests`/`rows`.
        let total_rows = a_values.len() as u64;
        let accept = |hits: u64| {
            self.stats.requests.fetch_add(1, Ordering::Relaxed);
            self.stats.rows.fetch_add(total_rows, Ordering::Relaxed);
            if hits > 0 {
                self.stats.cache_hits.fetch_add(hits, Ordering::Relaxed);
            }
        };
        if a_values.is_empty() {
            accept(0);
            let _ = tx.send(Ok(Vec::new()));
            return Ok(PendingPrediction { rx });
        }

        // Cache probe under one short lock.
        let mut results: Vec<Option<SurrogatePrediction>> = vec![None; a_values.len()];
        let mut hits = 0u64;
        if self.config.cache_capacity > 0 {
            let mut cache = lock(&self.cache);
            for (slot, &a) in a_values.iter().enumerate() {
                if let Some(hit) = cache.get(&cache_key(&features, a)) {
                    results[slot] = Some(hit);
                    hits += 1;
                }
            }
        }

        let job = Job {
            features: Arc::new(features),
            a_values,
            results,
            tx,
        };
        let pending = job.pending_rows();
        if pending == 0 {
            accept(hits);
            job.finish();
            return Ok(PendingPrediction { rx });
        }
        if pending > self.config.queue_capacity {
            // Could never fit even in an empty queue: this is a malformed
            // request (grid larger than the engine's bound), not transient
            // load — retrying would loop forever on Overloaded.
            return Err(QrossError::BadRequest {
                message: format!(
                    "{pending} uncached rows exceed the queue capacity {} — split the grid",
                    self.config.queue_capacity
                ),
            });
        }
        {
            let mut q = lock(&self.queue);
            if q.pending_rows + pending > self.config.queue_capacity {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(QrossError::Overloaded {
                    capacity: self.config.queue_capacity,
                });
            }
            q.pending_rows += pending;
            q.jobs.push_back(job);
        }
        accept(hits);
        self.work_ready.notify_one();
        Ok(PendingPrediction { rx })
    }

    /// Worker body: drain a batch of jobs, answer them with one forward
    /// pass per head, repeat until shutdown *and* the queue is empty
    /// (queued work is always drained, never dropped).
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let batch: Vec<Job> = {
                let mut q = lock(&self.queue);
                loop {
                    if !q.jobs.is_empty() {
                        break;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = match self.work_ready.wait(q) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                let mut batch = Vec::new();
                let mut rows = 0usize;
                while let Some(job) = q.jobs.front() {
                    let pending = job.pending_rows();
                    if !batch.is_empty() && rows + pending > self.config.max_batch_rows {
                        break;
                    }
                    rows += pending;
                    q.pending_rows -= pending;
                    batch.push(q.jobs.pop_front().expect("front checked"));
                    if rows >= self.config.max_batch_rows {
                        break;
                    }
                }
                batch
            };
            self.process_batch(batch);
        }
    }

    /// One stacked forward pass over every un-cached row of `batch`, then
    /// scatter, cache, and respond.
    fn process_batch(self: &Arc<Self>, mut batch: Vec<Job>) {
        // (job index, slot index) for every row that needs computing, in
        // deterministic job/slot order.
        let mut index: Vec<(usize, usize)> = Vec::new();
        for (j, job) in batch.iter().enumerate() {
            for (slot, r) in job.results.iter().enumerate() {
                if r.is_none() {
                    index.push((j, slot));
                }
            }
        }
        if !index.is_empty() {
            let queries: Vec<(&[f64], f64)> = index
                .iter()
                .map(|&(j, slot)| (batch[j].features.as_slice(), batch[j].a_values[slot]))
                .collect();
            let predictions = self.model.surrogate().predict_many(&queries);
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            if self.config.cache_capacity > 0 {
                let mut cache = lock(&self.cache);
                for (&(j, slot), &p) in index.iter().zip(&predictions) {
                    cache.insert(cache_key(&batch[j].features, batch[j].a_values[slot]), p);
                }
            }
            for (&(j, slot), &p) in index.iter().zip(&predictions) {
                batch[j].results[slot] = Some(p);
            }
        }
        for job in batch {
            job.finish();
        }
    }
}

/// A response handle returned by [`ServeEngine::submit`].
#[derive(Debug)]
pub struct PendingPrediction {
    rx: mpsc::Receiver<Result<Vec<SurrogatePrediction>, QrossError>>,
}

impl PendingPrediction {
    /// Blocks until the engine answers.
    ///
    /// # Errors
    ///
    /// Propagates the engine's error for this request, or
    /// [`QrossError::Serve`] if the worker holding it died.
    pub fn wait(self) -> Result<Vec<SurrogatePrediction>, QrossError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(QrossError::Serve {
                message: "worker disconnected before answering".to_string(),
            })
        })
    }
}

/// The concurrent batched serving engine. See the module docs.
///
/// Dropping the engine shuts it down gracefully: queued jobs are drained
/// and answered, then the workers join.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServeEngine({} workers, feature_dim {})",
            self.workers.len(),
            self.feature_dim()
        )
    }
}

impl ServeEngine {
    /// Starts the engine: spawns the worker pool and begins serving.
    pub fn new(model: ServeModel, config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            model,
            config,
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                pending_rows: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            stats: StatCounters::default(),
        });
        let workers = (0..resolve_workers(config.workers))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();
        ServeEngine { shared, workers }
    }

    /// The model being served.
    pub fn model(&self) -> &ServeModel {
        &self.shared.model
    }

    /// Feature width every request must supply.
    pub fn feature_dim(&self) -> usize {
        self.shared.model.feature_dim()
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Enqueues one request (a feature vector at one or more `A` values)
    /// and returns a handle to wait on. This is the non-blocking entry
    /// point protocol front-ends use to keep many requests in flight —
    /// which is what gives workers batches to stack.
    ///
    /// # Errors
    ///
    /// * [`QrossError::BadRequest`] — wrong feature width, non-finite
    ///   features, or a non-finite/non-positive `A`.
    /// * [`QrossError::Overloaded`] — the queue is at capacity; the
    ///   request is rejected immediately (backpressure, not buffering).
    pub fn submit(
        &self,
        features: Vec<f64>,
        a_values: Vec<f64>,
    ) -> Result<PendingPrediction, QrossError> {
        self.shared.submit(features, a_values)
    }

    /// Blocking single prediction — `submit` + `wait`.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`].
    pub fn predict(&self, features: &[f64], a: f64) -> Result<SurrogatePrediction, QrossError> {
        let mut out = self.submit(features.to_vec(), vec![a])?.wait()?;
        Ok(out.remove(0))
    }

    /// Blocking grid prediction — `submit` + `wait`.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`].
    pub fn predict_grid(
        &self,
        features: &[f64],
        a_values: &[f64],
    ) -> Result<Vec<SurrogatePrediction>, QrossError> {
        self.submit(features.to_vec(), a_values.to_vec())?.wait()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Scalers;
    use crate::surrogate::SurrogateState;
    use mathkit::stats::ZScore;
    use neural::layers::LayerSpec;
    use neural::network::MlpState;

    /// Deterministic rational-weight surrogate (no training, no libm in
    /// the weights): 2 features + ln A -> 3 inputs.
    fn tiny_surrogate() -> Surrogate {
        let val = |k: usize| (((k * 29 + 7) % 32) as f64 - 16.0) / 8.0;
        let dense = |input: usize, output: usize, salt: usize| LayerSpec::Dense {
            input,
            output,
            weights: (0..input * output).map(|k| val(k + salt)).collect(),
            bias: (0..output).map(|k| val(k + salt + 61)).collect(),
        };
        let net = |salt: usize, out: usize| MlpState {
            input_dim: 3,
            layers: vec![dense(3, 6, salt), LayerSpec::Relu, dense(6, out, salt + 17)],
        };
        let z = |m: f64, s: f64| ZScore { mean: m, std: s };
        Surrogate::from_state(SurrogateState {
            pf_net: net(0, 1),
            e_net: net(131, 2),
            scalers: Scalers {
                features: vec![z(0.0, 1.0), z(0.5, 2.0)],
                log_a: z(0.0, 1.0),
                e_avg: z(4.0, 2.0),
                e_std: z(1.0, 0.5),
            },
        })
        .expect("consistent state")
    }

    fn engine(config: ServeConfig) -> ServeEngine {
        ServeEngine::new(ServeModel::Surrogate(Arc::new(tiny_surrogate())), config)
    }

    #[test]
    fn serves_bit_identical_to_direct_predict() {
        let sur = tiny_surrogate();
        let eng = engine(ServeConfig {
            workers: 2,
            ..Default::default()
        });
        for k in 0..20 {
            let f = [k as f64 / 10.0, -(k as f64) / 7.0];
            let a = 0.25 + k as f64 * 0.3;
            let served = eng.predict(&f, a).expect("serve");
            let direct = sur.predict(&f, a);
            assert_eq!(served.pf.to_bits(), direct.pf.to_bits());
            assert_eq!(served.e_avg.to_bits(), direct.e_avg.to_bits());
            assert_eq!(served.e_std.to_bits(), direct.e_std.to_bits());
        }
    }

    #[test]
    fn grid_requests_match_predict_grid() {
        let sur = tiny_surrogate();
        let eng = engine(ServeConfig::default());
        let f = [0.3, 1.1];
        let grid = [0.1, 0.5, 1.0, 2.0, 8.0];
        let served = eng.predict_grid(&f, &grid).expect("serve");
        let direct = sur.predict_grid(&f, &grid);
        assert_eq!(served, direct);
        assert!(eng.predict_grid(&f, &[]).expect("empty").is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        let eng = engine(ServeConfig::default());
        // wrong width
        assert!(matches!(
            eng.predict(&[1.0], 1.0),
            Err(QrossError::BadRequest { .. })
        ));
        // non-finite feature
        assert!(matches!(
            eng.predict(&[f64::NAN, 0.0], 1.0),
            Err(QrossError::BadRequest { .. })
        ));
        // non-positive A
        assert!(matches!(
            eng.predict(&[0.0, 0.0], 0.0),
            Err(QrossError::BadRequest { .. })
        ));
        // non-finite A
        assert!(matches!(
            eng.predict(&[0.0, 0.0], f64::INFINITY),
            Err(QrossError::BadRequest { .. })
        ));
        // sane requests still served afterwards
        assert!(eng.predict(&[0.0, 0.0], 1.0).is_ok());
    }

    #[test]
    fn cache_hits_are_bit_identical_and_counted() {
        let eng = engine(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        let f = [0.7, -0.2];
        let first = eng.predict(&f, 1.5).expect("first");
        let before = eng.stats();
        let second = eng.predict(&f, 1.5).expect("second");
        let after = eng.stats();
        assert_eq!(first, second);
        assert!(
            after.cache_hits > before.cache_hits,
            "repeat query did not hit the cache: {after:?}"
        );
    }

    #[test]
    fn cache_disabled_still_serves() {
        let eng = engine(ServeConfig {
            cache_capacity: 0,
            ..Default::default()
        });
        let f = [0.1, 0.2];
        let a = eng.predict(&f, 1.0).expect("one");
        let b = eng.predict(&f, 1.0).expect("two");
        assert_eq!(a, b);
        assert_eq!(eng.stats().cache_hits, 0);
    }

    #[test]
    fn backpressure_rejects_when_queue_full() {
        // No workers running: build the shared state directly so the
        // queue can only fill.
        let shared = Arc::new(Shared {
            model: ServeModel::Surrogate(Arc::new(tiny_surrogate())),
            config: ServeConfig {
                workers: 1,
                max_batch_rows: 8,
                queue_capacity: 3,
                cache_capacity: 0,
            },
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                pending_rows: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            cache: Mutex::new(LruCache::new(0)),
            stats: StatCounters::default(),
        });
        assert!(shared.submit(vec![0.0, 0.0], vec![1.0, 2.0]).is_ok());
        assert!(shared.submit(vec![0.0, 0.0], vec![1.0]).is_ok());
        // 3 rows pending == capacity: the next row must bounce.
        let err = shared.submit(vec![0.0, 0.0], vec![1.0]).unwrap_err();
        assert!(matches!(err, QrossError::Overloaded { capacity: 3 }));
        // A single request larger than the queue could never be admitted:
        // that is a client error, not transient load (retrying an
        // Overloaded would loop forever).
        let err = shared
            .submit(vec![0.0, 0.0], vec![1.0, 2.0, 3.0, 4.0])
            .unwrap_err();
        assert!(matches!(err, QrossError::BadRequest { .. }));
        // Rejections never count as accepted work.
        let stats = shared.stats.snapshot();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.rows, 3);
        // Rejection is not sticky: drain one job and submit again.
        {
            let mut q = lock(&shared.queue);
            let job = q.jobs.pop_front().expect("queued job");
            q.pending_rows -= job.pending_rows();
        }
        assert!(shared.submit(vec![0.0, 0.0], vec![1.0]).is_ok());
    }

    #[test]
    fn concurrent_hammering_is_bit_identical() {
        let sur = tiny_surrogate();
        let eng = engine(ServeConfig {
            workers: 4,
            max_batch_rows: 16,
            ..Default::default()
        });
        let eng = &eng;
        let sur = &sur;
        std::thread::scope(|scope| {
            for t in 0..8usize {
                scope.spawn(move || {
                    for k in 0..120usize {
                        // Overlapping key space across threads exercises
                        // both fresh computes and cache hits.
                        let i = (t * 31 + k) % 40;
                        let f = [i as f64 / 13.0, (i as f64) / 5.0 - 1.0];
                        let a = 0.2 + (i % 7) as f64;
                        let served = eng.predict(&f, a).expect("serve");
                        let direct = sur.predict(&f, a);
                        assert_eq!(served.pf.to_bits(), direct.pf.to_bits());
                        assert_eq!(served.e_avg.to_bits(), direct.e_avg.to_bits());
                        assert_eq!(served.e_std.to_bits(), direct.e_std.to_bits());
                    }
                });
            }
        });
        let stats = eng.stats();
        assert_eq!(stats.requests, 8 * 120);
        assert!(stats.cache_hits > 0, "no cache hits under repetition");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        let p = |x: f64| SurrogatePrediction {
            pf: x,
            e_avg: x,
            e_std: x,
        };
        cache.insert(cache_key(&[1.0], 1.0), p(1.0));
        cache.insert(cache_key(&[2.0], 1.0), p(2.0));
        // Touch key 1 so key 2 is the LRU victim.
        assert_eq!(cache.get(&cache_key(&[1.0], 1.0)), Some(p(1.0)));
        cache.insert(cache_key(&[3.0], 1.0), p(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&cache_key(&[2.0], 1.0)), None);
        assert_eq!(cache.get(&cache_key(&[1.0], 1.0)), Some(p(1.0)));
        assert_eq!(cache.get(&cache_key(&[3.0], 1.0)), Some(p(3.0)));
        // Re-inserting an existing key refreshes, never grows.
        cache.insert(cache_key(&[3.0], 1.0), p(3.5));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&cache_key(&[3.0], 1.0)), Some(p(3.5)));
    }

    #[test]
    fn queued_work_is_drained_on_drop() {
        // Submit a burst, drop the engine immediately: every pending
        // response must still arrive (graceful shutdown, no lost jobs).
        let eng = engine(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        let pending: Vec<PendingPrediction> = (0..32)
            .map(|k| {
                eng.submit(vec![k as f64, 0.0], vec![1.0, 2.0])
                    .expect("submit")
            })
            .collect();
        drop(eng);
        for p in pending {
            let out = p.wait().expect("answered during shutdown");
            assert_eq!(out.len(), 2);
        }
    }
}
