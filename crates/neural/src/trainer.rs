//! Mini-batch training loop.
//!
//! Deterministic given the config seed: shuffling uses a seeded RNG, and
//! the loop aborts (returning the history so far) if the loss ever turns
//! non-finite — the NaN guard the dataset pipeline relies on.

use mathkit::rng::derive_rng;
use mathkit::Matrix;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::loss::Loss;
use crate::network::Mlp;
use crate::optimizer::{Optimizer, OptimizerConfig};

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// number of passes over the data
    pub epochs: usize,
    /// mini-batch size (clamped to the dataset size)
    pub batch_size: usize,
    /// optimiser
    pub optimizer: OptimizerConfig,
    /// shuffling / initialisation seed
    pub seed: u64,
    /// stop early when the training loss drops below this value
    pub target_loss: Option<f64>,
    /// run training forward passes through the reassociated fast-math
    /// matmul tier (`mathkit::kernel::matmul_fastmath`). Training-only:
    /// `Mlp::infer` — and therefore everything a served model answers —
    /// stays on the bit-exact serve tier regardless. Off by default so
    /// existing training runs reproduce historical loss curves exactly.
    pub fast_math: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            batch_size: 32,
            optimizer: OptimizerConfig::adam(1e-2),
            seed: 0,
            target_loss: None,
            fast_math: false,
        }
    }
}

/// Per-epoch loss history returned by [`train`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainHistory {
    /// mean training loss per epoch
    pub train_loss: Vec<f64>,
    /// validation loss per epoch (empty when no validation set given)
    pub val_loss: Vec<f64>,
    /// whether training stopped because the loss became non-finite
    pub diverged: bool,
}

impl TrainHistory {
    /// Training loss of the first epoch, or `None` when no epoch ran
    /// (`epochs == 0`) — safer than `train_loss.first().unwrap()`.
    pub fn initial_train_loss(&self) -> Option<f64> {
        self.train_loss.first().copied()
    }

    /// Training loss of the last epoch, or `None` when no epoch ran.
    pub fn final_train_loss(&self) -> Option<f64> {
        self.train_loss.last().copied()
    }
}

/// Trains `net` on `(x, y)`.
///
/// # Panics
///
/// Panics if `x` and `y` have different row counts or are empty.
pub fn train(
    net: &mut Mlp,
    x: &Matrix,
    y: &Matrix,
    loss: &Loss,
    config: &TrainConfig,
) -> TrainHistory {
    train_with_validation(net, x, y, None, loss, config)
}

/// Trains `net`, additionally tracking loss on a held-out set.
///
/// # Panics
///
/// Panics if shapes are inconsistent or the training set is empty.
pub fn train_with_validation(
    net: &mut Mlp,
    x: &Matrix,
    y: &Matrix,
    validation: Option<(&Matrix, &Matrix)>,
    loss: &Loss,
    config: &TrainConfig,
) -> TrainHistory {
    assert_eq!(x.rows(), y.rows(), "x and y row counts differ");
    assert!(x.rows() > 0, "training set is empty");
    let n = x.rows();
    let batch = config.batch_size.clamp(1, n);
    net.set_fast_math(config.fast_math);
    let mut opt = Optimizer::new(config.optimizer);
    let mut rng = derive_rng(config.seed, 0x7124);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = TrainHistory::default();

    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0.0;
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            let yb = y.select_rows(chunk);
            net.zero_grad();
            let pred = net.forward(&xb);
            let l = loss.value(&pred, &yb);
            if !l.is_finite() {
                history.diverged = true;
                return history;
            }
            let g = loss.grad(&pred, &yb);
            net.backward(&g);
            opt.step(net);
            epoch_loss += l;
            batches += 1.0;
        }
        history.train_loss.push(epoch_loss / batches);
        if let Some((vx, vy)) = validation {
            let pred = net.forward(vx);
            history.val_loss.push(loss.value(&pred, vy));
        }
        if let Some(target) = config.target_loss {
            if *history.train_loss.last().expect("pushed above") < target {
                break;
            }
        }
    }
    history
}

/// Fine-tunes a copy of an already-trained network — the continual-
/// learning entry point.
///
/// Unlike building a fresh net and calling [`train`], this **resumes from
/// the trained weights**: `base` is snapshotted ([`Mlp::to_state`]) and the
/// copy continues gradient descent from exactly where the previous
/// training run stopped. `base` itself is untouched, so a serving process
/// can keep answering requests on it while the returned copy trains — the
/// property the online hot-swap path relies on.
///
/// Deterministic given the config seed, like [`train`]: the same base
/// state, data and config produce a bit-identical tuned network.
///
/// # Errors
///
/// Returns [`NeuralError::InvalidModel`] if `base`'s snapshot does not
/// rebuild (cannot happen for a network constructed through the public
/// API, but a typed error beats a panic on one that was hand-assembled).
///
/// # Panics
///
/// Panics if shapes are inconsistent or the training set is empty (as
/// [`train_with_validation`]).
pub fn fine_tune(
    base: &Mlp,
    x: &Matrix,
    y: &Matrix,
    validation: Option<(&Matrix, &Matrix)>,
    loss: &Loss,
    config: &TrainConfig,
) -> Result<(Mlp, TrainHistory), crate::NeuralError> {
    let mut net = Mlp::from_state(&base.to_state())?;
    let history = train_with_validation(&mut net, x, y, validation, loss, config);
    Ok((net, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MlpBuilder;

    /// y = 2 x0 − x1 + 0.5, learnable exactly by a linear net.
    fn linear_data(n: usize) -> (Matrix, Matrix) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.73).cos();
            xs.extend_from_slice(&[a, b]);
            ys.push(2.0 * a - b + 0.5);
        }
        (Matrix::from_vec(n, 2, xs), Matrix::from_vec(n, 1, ys))
    }

    #[test]
    fn learns_linear_function() {
        let (x, y) = linear_data(64);
        let mut net = MlpBuilder::new(2).dense(1).build(5);
        let cfg = TrainConfig {
            epochs: 400,
            batch_size: 16,
            ..Default::default()
        };
        let h = train(&mut net, &x, &y, &Loss::Mse, &cfg);
        assert!(!h.diverged);
        assert!(
            *h.train_loss.last().unwrap() < 1e-4,
            "{:?}",
            h.train_loss.last()
        );
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = linear_data(64);
        let mut net = MlpBuilder::new(2).dense(8).tanh().dense(1).build(2);
        let cfg = TrainConfig {
            epochs: 50,
            ..Default::default()
        };
        let h = train(&mut net, &x, &y, &Loss::Mse, &cfg);
        assert!(h.train_loss.first().unwrap() > h.train_loss.last().unwrap());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linear_data(32);
        let run = |seed| {
            let mut net = MlpBuilder::new(2).dense(4).relu().dense(1).build(seed);
            let cfg = TrainConfig {
                epochs: 20,
                seed,
                ..Default::default()
            };
            train(&mut net, &x, &y, &Loss::Mse, &cfg).train_loss
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn validation_tracked() {
        let (x, y) = linear_data(48);
        let (vx, vy) = linear_data(16);
        let mut net = MlpBuilder::new(2).dense(1).build(3);
        let cfg = TrainConfig {
            epochs: 30,
            ..Default::default()
        };
        let h = train_with_validation(&mut net, &x, &y, Some((&vx, &vy)), &Loss::Mse, &cfg);
        assert_eq!(h.val_loss.len(), 30);
        assert!(h.val_loss.last().unwrap() < h.val_loss.first().unwrap());
    }

    #[test]
    fn early_stopping_on_target() {
        let (x, y) = linear_data(32);
        let mut net = MlpBuilder::new(2).dense(1).build(5);
        let cfg = TrainConfig {
            epochs: 10_000,
            target_loss: Some(1e-3),
            ..Default::default()
        };
        let h = train(&mut net, &x, &y, &Loss::Mse, &cfg);
        assert!(h.train_loss.len() < 10_000, "early stop engaged");
    }

    #[test]
    fn divergence_guard() {
        let (x, y) = linear_data(16);
        let mut net = MlpBuilder::new(2).dense(1).build(5);
        // Absurd learning rate forces divergence quickly.
        let cfg = TrainConfig {
            epochs: 200,
            optimizer: OptimizerConfig::sgd(1e6),
            ..Default::default()
        };
        let h = train(&mut net, &x, &y, &Loss::Mse, &cfg);
        assert!(h.diverged);
    }

    #[test]
    fn batch_size_larger_than_data_ok() {
        let (x, y) = linear_data(8);
        let mut net = MlpBuilder::new(2).dense(1).build(5);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 1000,
            ..Default::default()
        };
        let h = train(&mut net, &x, &y, &Loss::Mse, &cfg);
        assert_eq!(h.train_loss.len(), 5);
    }

    #[test]
    fn zero_epochs_yields_empty_history() {
        let (x, y) = linear_data(8);
        let mut net = MlpBuilder::new(2).dense(1).build(5);
        let cfg = TrainConfig {
            epochs: 0,
            ..Default::default()
        };
        let h = train(&mut net, &x, &y, &Loss::Mse, &cfg);
        assert!(h.train_loss.is_empty());
        assert!(!h.diverged);
        assert_eq!(h.initial_train_loss(), None);
        assert_eq!(h.final_train_loss(), None);
    }

    #[test]
    fn fine_tune_resumes_from_trained_weights() {
        let (x, y) = linear_data(64);
        let mut net = MlpBuilder::new(2).dense(4).relu().dense(1).build(8);
        let cfg = TrainConfig {
            epochs: 60,
            ..Default::default()
        };
        let h = train(&mut net, &x, &y, &Loss::Mse, &cfg);
        let partial = *h.train_loss.last().unwrap();
        // Fine-tuning must pick up where training stopped: its first epoch
        // loss is near the base's last, far below a fresh net's first.
        let (tuned, th) = fine_tune(&net, &x, &y, None, &Loss::Mse, &cfg).unwrap();
        let resumed_first = *th.train_loss.first().unwrap();
        assert!(
            resumed_first < h.train_loss[0] / 2.0,
            "fine-tune restarted from scratch: {resumed_first} vs fresh {}",
            h.train_loss[0]
        );
        assert!(*th.train_loss.last().unwrap() <= partial * 1.5);
        // The base network is untouched (serving can continue on it).
        let before = net.to_state();
        assert_eq!(before, net.to_state());
        assert_ne!(tuned.to_state(), before, "weights did not move");
        // Determinism: same base + data + seed, same tuned network.
        let (tuned2, _) = fine_tune(&net, &x, &y, None, &Loss::Mse, &cfg).unwrap();
        assert_eq!(tuned.to_state(), tuned2.to_state());
    }

    #[test]
    fn fast_math_training_converges_and_is_deterministic() {
        let (x, y) = linear_data(64);
        let run = || {
            let mut net = MlpBuilder::new(2).dense(8).tanh().dense(1).build(6);
            let cfg = TrainConfig {
                epochs: 120,
                fast_math: true,
                ..Default::default()
            };
            let h = train(&mut net, &x, &y, &Loss::Mse, &cfg);
            assert!(!h.diverged);
            (net.to_json(), h.train_loss)
        };
        let (net_a, loss_a) = run();
        assert!(*loss_a.last().unwrap() < loss_a[0], "loss did not decrease");
        // The fast-math tier is reassociated, not nondeterministic: the
        // same run reproduces bit-identical weights and loss curve.
        let (net_b, loss_b) = run();
        assert_eq!(net_a, net_b);
        assert_eq!(loss_a, loss_b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_set_panics() {
        let mut net = MlpBuilder::new(2).dense(1).build(5);
        let cfg = TrainConfig::default();
        let _ = train(
            &mut net,
            &Matrix::zeros(0, 2),
            &Matrix::zeros(0, 1),
            &Loss::Mse,
            &cfg,
        );
    }
}
