//! # bench — the experiment harness regenerating every table and figure
//!
//! One binary per paper artefact (see DESIGN.md §4 for the index):
//!
//! | binary   | paper artefact | content |
//! |----------|----------------|---------|
//! | `fig1`   | Fig. 1         | Pf and min-energy vs `A` for DA and SA |
//! | `fig3`   | Fig. 3         | gap vs trials, 4 methods, synthetic test set |
//! | `fig4`   | Fig. 4         | gap vs trials, 4 methods, out-of-distribution set |
//! | `fig5`   | Fig. 5         | cross-solver ablation (train DA, test Qbsolv) |
//! | `fig6`   | Fig. 6         | MVC penalty sweep, analog-noise QA-sim vs SA |
//! | `table1` | Table 1        | gap at trials #3/#20, 2 solvers × 2 datasets × 4 methods |
//!
//! Every binary accepts `--scale quick|paper` (default `quick`) and
//! `--seed N`, prints a text rendition of the artefact, and writes JSON to
//! `results/`.

pub mod experiments;

use serde::Serialize;

/// Experiment scale: `quick` preserves the paper's qualitative shape at
/// laptop cost; `paper` uses the publication settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// minutes-scale reproduction (default)
    Quick,
    /// the paper's full settings
    Paper,
}

impl Scale {
    /// Parses `quick` / `paper` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// experiment scale
    pub scale: Scale,
    /// root seed
    pub seed: u64,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Quick,
            seed: 2021,
        }
    }
}

impl Cli {
    /// Parses `--scale` and `--seed` from `std::env::args`, exiting with a
    /// usage message on malformed input.
    pub fn from_args() -> Cli {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    let v = args.get(i).map(String::as_str).unwrap_or("");
                    match Scale::parse(v) {
                        Some(s) => cli.scale = s,
                        None => usage_exit(&format!("bad --scale value `{v}`")),
                    }
                }
                "--seed" => {
                    i += 1;
                    let v = args.get(i).map(String::as_str).unwrap_or("");
                    match v.parse::<u64>() {
                        Ok(s) => cli.seed = s,
                        Err(_) => usage_exit(&format!("bad --seed value `{v}`")),
                    }
                }
                "--help" | "-h" => usage_exit(""),
                other => usage_exit(&format!("unknown argument `{other}`")),
            }
            i += 1;
        }
        cli
    }
}

fn usage_exit(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!("usage: <experiment> [--scale quick|paper] [--seed N]");
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

/// Writes a JSON artefact under `results/`, creating the directory on
/// demand. Returns the path written.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("result serialises");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Renders a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn row_renders_fixed_width() {
        let r = row(&["a".to_string(), "bb".to_string()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
