//! Replica-lane batching must be invisible in collected datasets.
//!
//! `solvers::set_replica_lanes` is a pure performance knob: SA and DA
//! advance `lanes` replicas in lockstep over one shared CSR traversal,
//! but every lane owns its RNG stream, so per-replica trajectories — and
//! therefore every dataset byte downstream — are bit-identical at any
//! lane width. CI replays a small collection at width 1 vs the batched
//! default and diffs the serialised bytes.
//!
//! The lane width is a thread-local read once on the collecting thread,
//! so the replay runs with `workers = 1` (inline execution); solver-
//! internal fan-out inherits the width read before the spawn.

use problems::MvcInstance;
use qross::collect::CollectConfig;
use qross::pipeline::collect_dataset;
use solvers::da::DaConfig;
use solvers::sa::SaConfig;
use solvers::{DigitalAnnealer, SimulatedAnnealer, Solver};

fn collect_bytes<S: Solver>(solver: &S, lanes: usize) -> String {
    let problems: Vec<MvcInstance> = (0..3)
        .map(|i| MvcInstance::random_gnp(&format!("g{i}"), 14, 0.4, 90 + i))
        .collect();
    let config = CollectConfig {
        sweep_points: 4,
        batch: 5,
        ..Default::default()
    };
    solvers::set_replica_lanes(lanes);
    let dataset = collect_dataset(
        &problems,
        |p| vec![p.num_vertices() as f64, p.edges().len() as f64],
        2,
        &config,
        solver,
        7,
        1, // workers = 1: keep collection on this thread (see module docs)
    );
    solvers::set_replica_lanes(0); // restore the default width
    serde_json::to_string(dataset.rows()).expect("dataset rows serialise")
}

#[test]
fn sa_collection_bytes_invariant_to_lane_width() {
    let solver = SimulatedAnnealer::new(SaConfig {
        sweeps: 24,
        ..Default::default()
    });
    let sequential = collect_bytes(&solver, 1);
    for lanes in [3, solvers::DEFAULT_REPLICA_LANES] {
        assert_eq!(
            sequential,
            collect_bytes(&solver, lanes),
            "SA dataset bytes changed at lane width {lanes}"
        );
    }
}

#[test]
fn da_collection_bytes_invariant_to_lane_width() {
    let solver = DigitalAnnealer::new(DaConfig {
        steps: 60,
        ..Default::default()
    });
    let sequential = collect_bytes(&solver, 1);
    for lanes in [3, solvers::DEFAULT_REPLICA_LANES] {
        assert_eq!(
            sequential,
            collect_bytes(&solver, lanes),
            "DA dataset bytes changed at lane width {lanes}"
        );
    }
}
