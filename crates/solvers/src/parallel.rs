//! Replica- and task-level parallelism for batch sampling and pipeline
//! fan-out.
//!
//! All solvers produce a batch of `B` independent replicas (the paper uses
//! `B = 128` solutions per call). Replicas share nothing but the read-only
//! CSR model, so they parallelise embarrassingly across threads with
//! `std::thread::scope`. The same machinery also fans out coarser units of
//! work — one training instance's whole A-profile, one `(strategy,
//! instance)` evaluation cell — via [`parallel_map_with_workers`], which
//! accepts an explicit worker count.
//!
//! # Determinism contract
//!
//! Every entry point guarantees **bit-identical output regardless of
//! worker count** (including the sequential fallback): the closure must
//! derive all randomness from the task *index* (seed-derived RNG streams),
//! never from shared mutable state, and results are written into their
//! index slot. [`parallel_map_with`] additionally hands each worker thread
//! a long-lived scratch value so per-task allocations (solver states,
//! RNGs, buffers) are paid once per *worker*, not once per *task* — the
//! closure must therefore fully reset the scratch from the index before
//! use.
//!
//! # Nesting
//!
//! Coarse fan-out encloses fine fan-out: a pipeline worker collecting one
//! instance's profile calls solvers whose batches would themselves fan
//! out. To avoid multiplicative thread explosion, worker threads mark
//! themselves as a *sequential region* — any nested `parallel_map_*` call
//! made from inside a worker runs inline on that worker. An explicit
//! `workers == 1` likewise marks the calling thread sequential for the
//! duration of the map, so a one-worker run really is single-threaded end
//! to end (the baseline the `pipeline_scaling` bench measures against).
//! Because of the determinism contract this only changes scheduling,
//! never results.

use std::cell::Cell;

thread_local! {
    static SEQUENTIAL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is inside a sequential region (a worker of
/// an enclosing parallel map, or an explicit one-worker map).
pub fn in_sequential_region() -> bool {
    SEQUENTIAL_REGION.with(|s| s.get())
}

/// Runs `f` with the current thread marked as a sequential region, so any
/// nested `parallel_map_*` call runs inline. Restores the previous state
/// afterwards.
fn run_in_sequential_region<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            SEQUENTIAL_REGION.with(|s| s.set(prev));
        }
    }
    let _guard = Restore(SEQUENTIAL_REGION.with(|s| s.replace(true)));
    f()
}

/// Worker-count value meaning "one worker per available core".
pub const AUTO_WORKERS: usize = 0;

/// Runs `f(replica_index)` for `count` replicas across the available
/// cores and returns the results in replica order.
///
/// Falls back to a sequential loop when `count <= 1` or only one core is
/// available. `f` must be deterministic per index (seed-derived RNG) so the
/// parallel and sequential paths produce identical output.
///
/// # Examples
///
/// ```
/// use solvers::parallel::parallel_map_indexed;
/// let xs = parallel_map_indexed(8, |i| i * i);
/// assert_eq!(xs, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    parallel_map_with(count, || (), move |(), i| f(i))
}

/// Chunked variant of [`parallel_map_indexed`] with per-worker scratch
/// reuse.
///
/// Each worker thread calls `init()` once, then runs `f(&mut scratch, i)`
/// for every replica index in its contiguous chunk. The scratch lets
/// solvers keep one state/buffer set alive across a whole chunk instead of
/// reallocating per replica. `f` must reset the scratch from the index —
/// outputs stay bit-identical to the sequential path only if no state
/// leaks between indices.
///
/// # Examples
///
/// ```
/// use solvers::parallel::parallel_map_with;
/// // Reuse one scratch buffer per worker.
/// let xs = parallel_map_with(
///     4,
///     || Vec::with_capacity(16),
///     |buf, i| {
///         buf.clear();
///         buf.extend(0..=i);
///         buf.iter().sum::<usize>()
///     },
/// );
/// assert_eq!(xs, vec![0, 1, 3, 6]);
/// ```
pub fn parallel_map_with<T, S, I, F>(count: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Send + Sync,
    F: Fn(&mut S, usize) -> T + Send + Sync,
{
    parallel_map_with_workers(count, AUTO_WORKERS, init, f)
}

/// [`parallel_map_with`] with an explicit worker count.
///
/// `workers == 0` ([`AUTO_WORKERS`]) uses one worker per available core;
/// any other value spawns exactly `min(workers, count)` workers, even on a
/// machine with fewer cores (oversubscription is the caller's choice — the
/// chunk assignment depends only on `(count, workers)`, so results and
/// their order are identical on any machine). Nested calls made from
/// worker threads run inline (see the module docs), and `workers == 1`
/// runs the whole map — including nested fan-out — on the calling thread.
pub fn parallel_map_with_workers<T, S, I, F>(count: usize, workers: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Send + Sync,
    F: Fn(&mut S, usize) -> T + Send + Sync,
{
    let nested = in_sequential_region();
    let threads = if nested {
        1
    } else if workers == AUTO_WORKERS {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
    .min(count.max(1));

    if threads <= 1 || count <= 1 {
        let run = || {
            let mut scratch = init();
            (0..count).map(|i| f(&mut scratch, i)).collect()
        };
        // An explicit worker bound (or an enclosing worker) serialises
        // nested fan-out too; the auto path leaves nested calls free to
        // use the cores this level did not.
        return if nested || workers == 1 {
            run_in_sequential_region(run)
        } else {
            run()
        };
    }

    let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let chunk = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                // Worker threads are sequential regions: nested parallel
                // maps (e.g. replica fan-out inside a solver call) run
                // inline instead of multiplying threads.
                SEQUENTIAL_REGION.with(|s| s.set(true));
                let base = t * chunk;
                let mut scratch = init();
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(&mut scratch, base + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|x| x.expect("replica result missing"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let xs = parallel_map_indexed(100, |i| i as u64 * 3);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn runs_every_index_exactly_once() {
        let counter = AtomicUsize::new(0);
        let xs = parallel_map_indexed(64, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(xs.len(), 64);
    }

    #[test]
    fn zero_and_one_replicas() {
        let none: Vec<usize> = parallel_map_indexed(0, |i| i);
        assert!(none.is_empty());
        let one = parallel_map_indexed(1, |i| i + 10);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn matches_sequential_reference() {
        let par = parallel_map_indexed(37, |i| (i as f64).sin());
        let seq: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn scratch_initialised_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let xs = parallel_map_with(
            128,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |scratch, i| {
                *scratch += 1;
                i
            },
        );
        assert_eq!(xs, (0..128).collect::<Vec<_>>());
        // One scratch per worker, workers capped by cores and replica count.
        assert!(inits.load(Ordering::SeqCst) <= threads.min(128));
    }

    #[test]
    fn explicit_workers_match_auto_and_sequential() {
        let reference: Vec<u64> = (0..53).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = parallel_map_with_workers(
                53,
                workers,
                || (),
                |(), i| (i as u64).wrapping_mul(0x9E37),
            );
            assert_eq!(got, reference, "workers = {workers}");
        }
        let auto = parallel_map_with(53, || (), |(), i| (i as u64).wrapping_mul(0x9E37));
        assert_eq!(auto, reference);
    }

    #[test]
    fn explicit_workers_spawn_even_on_one_core() {
        // With an explicit worker count > 1 the chunked path must engage
        // regardless of available cores: 8 workers over 64 tasks means at
        // most 8 scratch initialisations and full coverage.
        let inits = AtomicUsize::new(0);
        let xs = parallel_map_with_workers(
            64,
            8,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |scratch, i| {
                *scratch += 1;
                i
            },
        );
        assert_eq!(xs, (0..64).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_maps_run_inline_inside_workers() {
        // Each outer worker marks itself sequential, so the nested map
        // must not spawn: its scratch is initialised exactly once per
        // outer task.
        let nested_inits = AtomicUsize::new(0);
        let xs = parallel_map_with_workers(
            4,
            2,
            || (),
            |(), i| {
                assert!(in_sequential_region());
                let inner = parallel_map_with_workers(
                    16,
                    8,
                    || {
                        nested_inits.fetch_add(1, Ordering::SeqCst);
                    },
                    |(), j| i * 100 + j,
                );
                inner.iter().sum::<usize>()
            },
        );
        let want: Vec<usize> = (0..4)
            .map(|i| 16 * i * 100 + (0..16).sum::<usize>())
            .collect();
        assert_eq!(xs, want);
        // One nested init per outer task (inline), not 8 per task.
        assert_eq!(nested_inits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn one_worker_marks_sequential_region() {
        assert!(!in_sequential_region());
        parallel_map_with_workers(3, 1, || (), |(), _| assert!(in_sequential_region()));
        // Restored afterwards.
        assert!(!in_sequential_region());
    }

    #[test]
    fn scratch_reuse_matches_fresh_state_when_reset() {
        // A closure that resets its scratch per index must match the
        // stateless path bit-for-bit.
        let with_scratch = parallel_map_with(50, Vec::new, |buf: &mut Vec<u64>, i| {
            buf.clear();
            buf.extend((0..i as u64).map(|k| k * k));
            buf.iter().sum::<u64>()
        });
        let stateless: Vec<u64> = (0..50)
            .map(|i| (0..i as u64).map(|k| k * k).sum())
            .collect();
        assert_eq!(with_scratch, stateless);
    }
}
