//! Thread-count invariance of the parallel collection & evaluation engine:
//! the same inputs must produce **byte-identical** datasets, surrogates
//! and strategy runs at 1, 2 and 8 workers (workers beyond the machine's
//! core count still exercise the chunked path — chunk assignment depends
//! only on `(task count, workers)`).

use qross_repro::problems::tsp::generator::{generate_instance, GeneratorConfig};
use qross_repro::problems::TspEncoding;
use qross_repro::qross::collect::CollectConfig;
use qross_repro::qross::eval::{run_strategy_grid, StrategyRun};
use qross_repro::qross::pipeline::{collect_dataset, Pipeline, PipelineConfig};
use qross_repro::qross::strategy::{ProposalStrategy, TunerStrategy};
use qross_repro::solvers::sa::{SaConfig, SimulatedAnnealer};
use qross_repro::tuners::RandomSearch;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn encodings(count: usize) -> Vec<TspEncoding> {
    let cfg = GeneratorConfig {
        min_cities: 8,
        max_cities: 9,
        ..Default::default()
    };
    (0..count)
        .map(|k| TspEncoding::preprocessed(generate_instance(&cfg, 400 + k as u64, 0)))
        .collect()
}

fn solver() -> SimulatedAnnealer {
    SimulatedAnnealer::new(SaConfig {
        sweeps: 48,
        ..Default::default()
    })
}

fn featurize(enc: &TspEncoding) -> Vec<f64> {
    vec![enc.num_cities() as f64]
}

#[test]
fn collection_is_worker_count_invariant() {
    let problems = encodings(6);
    let s = solver();
    let cfg = CollectConfig {
        batch: 12,
        sweep_points: 6,
        ..Default::default()
    };
    let reference = collect_dataset(&problems, featurize, 1, &cfg, &s, 21, 1);
    assert!(!reference.is_empty());
    for workers in WORKER_COUNTS {
        let ds = collect_dataset(&problems, featurize, 1, &cfg, &s, 21, workers);
        assert_eq!(ds, reference, "dataset diverged at {workers} workers");
    }
    // Auto (one worker per core) matches too.
    assert_eq!(
        collect_dataset(&problems, featurize, 1, &cfg, &s, 21, 0),
        reference
    );
}

#[test]
fn eval_grid_is_worker_count_invariant() {
    let problems = encodings(3);
    let s = solver();
    let make = |strat: usize, _idx: usize, cell_seed: u64| -> Box<dyn ProposalStrategy> {
        Box::new(TunerStrategy::new(
            RandomSearch::new(0.05, 20.0, cell_seed.rotate_left(strat as u32)),
            1e6,
        ))
    };
    let run = |workers: usize| -> Vec<Vec<StrategyRun>> {
        run_strategy_grid(&problems, &s, 2, make, 5, 10, 33, workers)
    };
    let reference = run(1);
    assert_eq!(reference.len(), 2);
    assert!(reference.iter().all(|row| row.len() == 3));
    assert!(reference.iter().flatten().all(|r| r.trials.len() == 5));
    for workers in WORKER_COUNTS {
        assert_eq!(
            run(workers),
            reference,
            "grid diverged at {workers} workers"
        );
    }
    assert_eq!(run(0), reference);
}

/// The full pipeline (collection + training) is invariant in the worker
/// knob: surrogates trained at different worker counts serialise to the
/// same JSON.
#[test]
fn trained_surrogate_is_worker_count_invariant() {
    let mut cfg = PipelineConfig::micro();
    cfg.train_instances = 6;
    cfg.test_instances = 2;
    cfg.surrogate.epochs = 40;
    let s = solver();
    let json_at = |workers: usize| {
        let mut c = cfg;
        c.workers = workers;
        Pipeline::new(c)
            .try_run(&s)
            .expect("micro pipeline trains")
            .surrogate
            .to_json()
            .expect("serialises")
    };
    let reference = json_at(1);
    for workers in [2, 8, 0] {
        assert_eq!(
            json_at(workers),
            reference,
            "surrogate diverged at {workers} workers"
        );
    }
}
