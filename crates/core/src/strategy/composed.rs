//! The composed benchmark strategy (paper §5, "Strategy"):
//!
//! 1. trial 1 — **MFS** proposes the first candidate;
//! 2. trials 2–3 — **PBS** at `Pf = 80%` and `20%`;
//! 3. trials 4+ — **OFS** refines online.
//!
//! "The trials in the first two steps can be used for curve fitting in the
//! third step" — every observation (including the offline ones) feeds the
//! OFS history.

use crate::collect::SolverObservation;
use crate::strategy::{mfs, ofs::OnlineFitting, pbs, ProposalStrategy};
use crate::surrogate::Surrogate;

/// QROSS's composed proposal strategy for one instance.
pub struct ComposedStrategy<'s> {
    surrogate: &'s Surrogate,
    features: Vec<f64>,
    domain: (f64, f64),
    batch: usize,
    pbs_targets: Vec<f64>,
    ofs: OnlineFitting,
    /// fallback ladder position when an offline proposal fails
    planned: Vec<f64>,
}

impl<'s> ComposedStrategy<'s> {
    /// Creates the strategy.
    ///
    /// `batch` is the solver batch size `B` entering the MFS integral;
    /// `domain` bounds the relaxation parameter (the experiments use the
    /// normalised-instance equivalent of the paper's `[1, 100]`).
    ///
    /// # Panics
    ///
    /// Panics on an invalid domain or zero batch.
    pub fn new(
        surrogate: &'s Surrogate,
        features: Vec<f64>,
        domain: (f64, f64),
        batch: usize,
        seed: u64,
    ) -> Self {
        assert!(domain.0 > 0.0 && domain.0 < domain.1, "invalid A domain");
        assert!(batch > 0, "batch must be positive");
        let mut planned = Vec::new();
        // Plan the offline proposals eagerly: MFS, then PBS at 80%/20%.
        if let Ok(m) = mfs::propose(surrogate, &features, domain, batch) {
            planned.push(m.x);
        }
        for &p in &[0.8, 0.2] {
            if let Ok(a) = pbs::propose(surrogate, &features, domain, p) {
                planned.push(a);
            }
        }
        // Degenerate surrogate (all proposals failed): geometric centre.
        if planned.is_empty() {
            planned.push((domain.0 * domain.1).sqrt());
        }
        ComposedStrategy {
            surrogate,
            features,
            domain,
            batch,
            pbs_targets: vec![0.8, 0.2],
            ofs: OnlineFitting::new(domain, seed),
            planned,
        }
    }

    /// The planned offline proposals (MFS first, then PBS ladder).
    pub fn planned_offline(&self) -> &[f64] {
        &self.planned
    }

    /// The surrogate driving the offline phase.
    pub fn surrogate(&self) -> &Surrogate {
        self.surrogate
    }

    /// The PBS targets used for trials 2–3.
    pub fn pbs_targets(&self) -> &[f64] {
        &self.pbs_targets
    }

    /// Re-plans the offline candidates (used by tests and by callers that
    /// mutate the feature vector).
    pub fn replan(&mut self) {
        let mut planned = Vec::new();
        if let Ok(m) = mfs::propose(self.surrogate, &self.features, self.domain, self.batch) {
            planned.push(m.x);
        }
        for &p in &self.pbs_targets.clone() {
            if let Ok(a) = pbs::propose(self.surrogate, &self.features, self.domain, p) {
                planned.push(a);
            }
        }
        if planned.is_empty() {
            planned.push((self.domain.0 * self.domain.1).sqrt());
        }
        self.planned = planned;
    }
}

impl ProposalStrategy for ComposedStrategy<'_> {
    fn name(&self) -> &str {
        "qross"
    }

    fn propose(&mut self, trial: usize) -> f64 {
        if trial < self.planned.len() {
            self.planned[trial].clamp(self.domain.0, self.domain.1)
        } else {
            self.ofs
                .next_candidate()
                .clamp(self.domain.0, self.domain.1)
        }
    }

    fn observe(&mut self, a: f64, outcome: &SolverObservation) {
        // Offline trials feed the online fit (§5: "The trials in the first
        // two steps can be used for curve fitting in the third step").
        self.ofs.observe(a, outcome.pf.clamp(0.0, 1.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetRow, SurrogateDataset};
    use crate::surrogate::SurrogateConfig;
    use mathkit::special::sigmoid;

    /// A surrogate trained on a world where Pf = σ(3(ln A − f)) and the
    /// energy dip sits on the slope: minimum near ln A = f.
    fn trained_surrogate() -> Surrogate {
        let mut ds = SurrogateDataset::new(1);
        for g in 0..10 {
            let f = -0.5 + g as f64 * 0.1;
            for k in 0..17 {
                let ln_a = -3.0 + 6.0 * k as f64 / 16.0;
                let pf = sigmoid(3.0 * (ln_a - f));
                // Energy: rises with A (penalty dominance) but feasible
                // minima only exist on the slope; Eavg dips near midpoint.
                let e_avg = 10.0 + 2.0 * (ln_a - f) + 0.5 * (ln_a - f).powi(2);
                ds.push(DatasetRow {
                    features: vec![f],
                    a: ln_a.exp(),
                    pf,
                    e_avg,
                    e_std: 1.0,
                });
            }
        }
        let cfg = SurrogateConfig {
            hidden: 24,
            epochs: 300,
            learning_rate: 5e-3,
            batch_size: 32,
            val_fraction: 0.0,
            seed: 9,
        };
        Surrogate::train(&ds, &cfg).unwrap().0
    }

    fn world_pf(a: f64, f: f64) -> f64 {
        sigmoid(3.0 * (a.ln() - f))
    }

    #[test]
    fn offline_plan_has_three_proposals() {
        let sur = trained_surrogate();
        let domain = ((-3.0f64).exp(), (3.0f64).exp());
        let strat = ComposedStrategy::new(&sur, vec![0.0], domain, 32, 1);
        assert_eq!(strat.planned_offline().len(), 3);
    }

    #[test]
    fn first_proposal_sits_on_slope() {
        // The paper's hypothesis: optimal parameters live where
        // 0 < Pf < 1. The MFS proposal must respect that.
        let sur = trained_surrogate();
        let domain = ((-3.0f64).exp(), (3.0f64).exp());
        let f = 0.0;
        let mut strat = ComposedStrategy::new(&sur, vec![f], domain, 32, 2);
        let a0 = strat.propose(0);
        let pf = world_pf(a0, f);
        assert!(
            pf > 0.01 && pf < 0.999,
            "MFS proposal A={a0} off the slope (true Pf {pf})"
        );
    }

    #[test]
    fn pbs_proposals_bracket_the_slope() {
        let sur = trained_surrogate();
        let domain = ((-3.0f64).exp(), (3.0f64).exp());
        let f = 0.0;
        let mut strat = ComposedStrategy::new(&sur, vec![f], domain, 32, 3);
        let a_hi = strat.propose(1); // PBS 80%
        let a_lo = strat.propose(2); // PBS 20%
        assert!(
            a_hi > a_lo,
            "80% target should need larger A: {a_hi} vs {a_lo}"
        );
        let pf_hi = world_pf(a_hi, f);
        let pf_lo = world_pf(a_lo, f);
        assert!((pf_hi - 0.8).abs() < 0.3, "PBS 80%: true Pf {pf_hi}");
        assert!((pf_lo - 0.2).abs() < 0.3, "PBS 20%: true Pf {pf_lo}");
    }

    #[test]
    fn later_trials_use_ofs_with_fed_history() {
        let sur = trained_surrogate();
        let domain = ((-3.0f64).exp(), (3.0f64).exp());
        let f = 0.0;
        let mut strat = ComposedStrategy::new(&sur, vec![f], domain, 32, 4);
        // Simulate the harness loop for the three offline trials.
        for t in 0..3 {
            let a = strat.propose(t);
            let outcome = SolverObservation {
                a,
                pf: world_pf(a, f),
                e_avg: 10.0,
                e_std: 1.0,
                best_fitness: Some(10.0),
                min_energy: 9.0,
            };
            strat.observe(a, &outcome);
        }
        // OFS proposals should stay within the domain and near the slope.
        for t in 3..10 {
            let a = strat.propose(t);
            assert!((domain.0..=domain.1).contains(&a));
            let outcome = SolverObservation {
                a,
                pf: world_pf(a, f),
                e_avg: 10.0,
                e_std: 1.0,
                best_fitness: Some(10.0),
                min_energy: 9.0,
            };
            strat.observe(a, &outcome);
        }
        // After 10 observations the sigmoid fit should localise the
        // midpoint (ln A = 0 → A = 1).
        let hist = strat.ofs.history();
        assert_eq!(hist.len(), 10);
    }

    #[test]
    fn proposals_respect_domain_clamp() {
        let sur = trained_surrogate();
        // Narrow domain far from where MFS would want to go.
        let domain = (0.9, 1.1);
        let mut strat = ComposedStrategy::new(&sur, vec![0.0], domain, 32, 5);
        for t in 0..6 {
            let a = strat.propose(t);
            assert!((0.9..=1.1).contains(&a), "trial {t}: A={a}");
            strat.observe(
                a,
                &SolverObservation {
                    a,
                    pf: 0.5,
                    e_avg: 1.0,
                    e_std: 0.1,
                    best_fitness: None,
                    min_energy: 0.0,
                },
            );
        }
    }
}
